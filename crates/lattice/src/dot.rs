//! Graphviz DOT rendering of lattices (used to regenerate Fig 5.11 /
//! Fig 6.4-style lattice pictures).

use crate::lattice::{Lattice, BOTTOM, TOP};

/// Renders the lattice's Hasse diagram as Graphviz DOT, higher locations
/// on top.
pub fn lattice_to_dot(lattice: &Lattice, title: &str) -> String {
    let mut s = format!("digraph \"{title}\" {{\n  rankdir=TB;\n  node [shape=ellipse];\n");
    s.push_str("  \"_TOP\" [label=\"⊤\", shape=plaintext];\n");
    s.push_str("  \"_BOTTOM\" [label=\"⊥\", shape=plaintext];\n");
    for (id, name) in lattice.named() {
        let style = if lattice.is_shared(id) {
            ", peripheries=2"
        } else {
            ""
        };
        s.push_str(&format!("  \"{name}\" [label=\"{name}\"{style}];\n"));
    }
    // Explicit cover edges (drawn from higher to lower).
    for id in lattice.ids() {
        if id == TOP || id == BOTTOM {
            continue;
        }
        let above = lattice.directly_above(id);
        if above.iter().all(|&p| p == TOP) {
            s.push_str(&format!("  \"_TOP\" -> \"{}\";\n", lattice.name(id)));
        }
        for &hi in above {
            if hi != TOP {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    lattice.name(hi),
                    lattice.name(id)
                ));
            }
        }
        if lattice.directly_below(id).iter().all(|&c| c == BOTTOM) {
            s.push_str(&format!("  \"{}\" -> \"_BOTTOM\";\n", lattice.name(id)));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_hasse_edges() {
        let l = Lattice::from_decl(&[("A".into(), "B".into())], &[], &[]).expect("ok");
        let dot = lattice_to_dot(&l, "t");
        assert!(dot.contains("\"B\" -> \"A\""), "{dot}");
        assert!(dot.contains("\"_TOP\" -> \"B\""), "{dot}");
        assert!(dot.contains("\"A\" -> \"_BOTTOM\""), "{dot}");
    }
}
