//! Composite location types (§3.4): lexicographic ordering (Eq. 3.1) and
//! the greatest-lower-bound algorithm of Fig 3.2.

use crate::lattice::{Lattice, LocId, BOTTOM, TOP};
use std::cmp::Ordering;
use std::fmt;

/// The space an element of a composite location lives in: the current
/// method's lattice, or the field lattice of a class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Space {
    /// The current method's hierarchy.
    Method,
    /// The field hierarchy of the named class.
    Field(String),
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Method => write!(f, "<method>"),
            Space::Field(c) => write!(f, "{c}"),
        }
    }
}

/// One element of a composite location: a named location in a space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Elem {
    /// The lattice this element belongs to.
    pub space: Space,
    /// The location name within that lattice (may be `_TOP`/`_BOTTOM`).
    pub name: String,
}

impl Elem {
    /// A method-lattice element.
    pub fn method(name: impl Into<String>) -> Self {
        Elem {
            space: Space::Method,
            name: name.into(),
        }
    }

    /// A field-lattice element of `class`.
    pub fn field(class: impl Into<String>, name: impl Into<String>) -> Self {
        Elem {
            space: Space::Field(class.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.space {
            Space::Method => write!(f, "{}", self.name),
            Space::Field(c) => write!(f, "{c}.{}", self.name),
        }
    }
}

/// A composite location type: ⊤, ⊥, or a sequence of elements beginning
/// with a method location, optionally lowered by `delta` applications.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CompositeLoc {
    /// The global top: constants and fresh inputs.
    Top,
    /// The global bottom: anything may flow here.
    Bottom,
    /// A concrete path, with `delta` counting `delta(...)` wrappers
    /// (§4.1.7) — each wrapper lowers the location infinitesimally.
    Path {
        /// Elements, method element first.
        elems: Vec<Elem>,
        /// Number of delta applications.
        delta: usize,
    },
}

impl CompositeLoc {
    /// A non-delta path from elements.
    pub fn path(elems: Vec<Elem>) -> Self {
        CompositeLoc::Path { elems, delta: 0 }
    }

    /// A single method-lattice element.
    pub fn method(name: impl Into<String>) -> Self {
        CompositeLoc::path(vec![Elem::method(name)])
    }

    /// The elements if this is a path.
    pub fn elems(&self) -> &[Elem] {
        match self {
            CompositeLoc::Path { elems, .. } => elems,
            _ => &[],
        }
    }

    /// Appends a field element (the `⊕` operator of §4.1.2), clearing any
    /// delta since the result denotes a different memory location.
    pub fn extend_field(&self, class: &str, name: &str) -> CompositeLoc {
        match self {
            CompositeLoc::Top => CompositeLoc::Top,
            CompositeLoc::Bottom => CompositeLoc::Bottom,
            CompositeLoc::Path { elems, .. } => {
                let mut e = elems.clone();
                e.push(Elem::field(class, name));
                CompositeLoc::path(e)
            }
        }
    }

    /// Wraps the location in one more `delta` (lowers it infinitesimally).
    pub fn delta(&self) -> CompositeLoc {
        match self {
            CompositeLoc::Path { elems, delta } => CompositeLoc::Path {
                elems: elems.clone(),
                delta: delta + 1,
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for CompositeLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositeLoc::Top => write!(f, "TOP"),
            CompositeLoc::Bottom => write!(f, "BOTTOM"),
            CompositeLoc::Path { elems, delta } => {
                for _ in 0..*delta {
                    write!(f, "delta(")?;
                }
                write!(f, "<")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ">")?;
                for _ in 0..*delta {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// Supplies the lattices that composite-location comparison needs: the
/// current method's lattice and field lattices per class.
pub trait LatticeCtx {
    /// The current method's location lattice.
    fn method_lattice(&self) -> &Lattice;
    /// The field lattice of `class`, if the class declares one.
    fn field_lattice(&self, class: &str) -> Option<&Lattice>;

    /// Resolves an element to its lattice and id.
    fn resolve(&self, elem: &Elem) -> Option<(&Lattice, LocId)> {
        let lat = match &elem.space {
            Space::Method => self.method_lattice(),
            Space::Field(c) => self.field_lattice(c)?,
        };
        let id = lat.get(&elem.name)?;
        Some((lat, id))
    }
}

/// A simple [`LatticeCtx`] backed by explicit lattices; useful in tests and
/// in the inference engine.
pub struct SimpleCtx<'a> {
    /// The method lattice.
    pub method: &'a Lattice,
    /// `(class name, lattice)` pairs.
    pub fields: &'a [(String, Lattice)],
}

impl LatticeCtx for SimpleCtx<'_> {
    fn method_lattice(&self) -> &Lattice {
        self.method
    }

    fn field_lattice(&self, class: &str) -> Option<&Lattice> {
        self.fields.iter().find(|(n, _)| n == class).map(|(_, l)| l)
    }
}

/// Compares two composite locations per the lexicographic rule of Eq. 3.1.
///
/// `Some(Less)` means `a ⊏ b` (values may flow from `b` to `a`); `None`
/// means the locations are incomparable (e.g. field elements from different
/// classes).
pub fn compare(ctx: &dyn LatticeCtx, a: &CompositeLoc, b: &CompositeLoc) -> Option<Ordering> {
    use CompositeLoc::*;
    match (a, b) {
        (Top, Top) | (Bottom, Bottom) => Some(Ordering::Equal),
        (Top, _) => Some(Ordering::Greater),
        (_, Top) => Some(Ordering::Less),
        (Bottom, _) => Some(Ordering::Less),
        (_, Bottom) => Some(Ordering::Greater),
        (
            Path {
                elems: ea,
                delta: da,
            },
            Path {
                elems: eb,
                delta: db,
            },
        ) => {
            let n = ea.len().min(eb.len());
            for i in 0..n {
                let (xa, xb) = (&ea[i], &eb[i]);
                // Positional ⊤/⊥ are space-agnostic: the bottom value of
                // Fig 3.2 compares below any class's elements.
                let (a_bot, b_bot) = (xa.name == "_BOTTOM", xb.name == "_BOTTOM");
                let (a_top, b_top) = (xa.name == "_TOP", xb.name == "_TOP");
                if xa.space != xb.space {
                    return match (a_bot, b_bot, a_top, b_top) {
                        (true, true, _, _) => continue,
                        (true, false, _, _) => Some(Ordering::Less),
                        (false, true, _, _) => Some(Ordering::Greater),
                        (_, _, true, true) => continue,
                        (_, _, true, false) => Some(Ordering::Greater),
                        (_, _, false, true) => Some(Ordering::Less),
                        _ => None,
                    };
                }
                let (lat, ia) = ctx.resolve(xa)?;
                let ib = lat.get(&xb.name)?;
                if ia == ib {
                    continue;
                }
                return lat.compare(ia, ib);
            }
            // Common prefix exhausted: longer path is lower (§3.4.1 —
            // values that may flow to a reference may flow to its fields).
            match ea.len().cmp(&eb.len()) {
                Ordering::Less => Some(Ordering::Greater),
                Ordering::Greater => Some(Ordering::Less),
                // Same elements: more deltas = lower.
                Ordering::Equal => Some(db.cmp(da)),
            }
        }
    }
}

/// Reflexive flow check: may a value at `src` flow down into `dst`
/// (`dst ⊑ src`)?
pub fn may_flow(ctx: &dyn LatticeCtx, src: &CompositeLoc, dst: &CompositeLoc) -> bool {
    matches!(
        compare(ctx, dst, src),
        Some(Ordering::Less) | Some(Ordering::Equal)
    )
}

/// Greatest lower bound of two composite locations — the `⊓` operator,
/// implementing the recursive algorithm of Fig 3.2.
pub fn glb(ctx: &dyn LatticeCtx, a: &CompositeLoc, b: &CompositeLoc) -> CompositeLoc {
    use CompositeLoc::*;
    // Comparable pairs meet at the lower one (also handles deltas).
    match compare(ctx, a, b) {
        Some(Ordering::Less) | Some(Ordering::Equal) => return a.clone(),
        Some(Ordering::Greater) => return b.clone(),
        None => {}
    }
    let (Path { elems: ea, .. }, Path { elems: eb, .. }) = (a, b) else {
        // Top/Bottom combinations are always comparable, so both must be
        // paths here.
        return Bottom;
    };
    glb_path(ctx, ea, eb)
}

fn glb_path(ctx: &dyn LatticeCtx, ea: &[Elem], eb: &[Elem]) -> CompositeLoc {
    let (Some(xa), Some(xb)) = (ea.first(), eb.first()) else {
        // One path exhausted with a common prefix: the longer path is
        // the lower bound.
        let longer = if ea.is_empty() { eb } else { ea };
        return CompositeLoc::path(longer.to_vec());
    };
    if xa.space != xb.space {
        // Field elements from different classes: GLB is ⊥ (Fig 3.2).
        return CompositeLoc::Bottom;
    }
    let Some((lat, ia)) = ctx.resolve(xa) else {
        return CompositeLoc::Bottom;
    };
    let Some(ib) = lat.get(&xb.name) else {
        return CompositeLoc::Bottom;
    };
    let g1 = lat.glb(ia, ib);
    if g1 != ia && g1 != ib {
        // Case 1: strictly lower first element decides; the remaining
        // elements are free, and the greatest choice is the bare prefix.
        if g1 == BOTTOM {
            return CompositeLoc::Bottom;
        }
        return CompositeLoc::path(vec![Elem {
            space: xa.space.clone(),
            name: lat.name(g1).to_string(),
        }]);
    }
    if g1 == ia && g1 != ib {
        // Case 2: a's first element is the meet — result is a.
        return CompositeLoc::path(ea.to_vec());
    }
    if g1 != ia && g1 == ib {
        // Case 3: symmetric.
        return CompositeLoc::path(eb.to_vec());
    }
    // Case 4: identical first elements — recurse on the tails.
    let rest = glb_path(ctx, &ea[1..], &eb[1..]);
    match rest {
        CompositeLoc::Path { mut elems, delta } => {
            elems.insert(
                0,
                Elem {
                    space: xa.space.clone(),
                    name: lat.name(g1).to_string(),
                },
            );
            CompositeLoc::Path { elems, delta }
        }
        CompositeLoc::Bottom => {
            // Tail meet is ⊥: pin the prefix and close with the tail
            // lattice's ⊥ so the result stays below both inputs.
            let tail_space = ea
                .get(1)
                .map(|e| e.space.clone())
                .unwrap_or_else(|| eb[1].space.clone());
            CompositeLoc::path(vec![
                Elem {
                    space: xa.space.clone(),
                    name: lat.name(g1).to_string(),
                },
                Elem {
                    space: tail_space,
                    name: "_BOTTOM".to_string(),
                },
            ])
        }
        CompositeLoc::Top => CompositeLoc::path(vec![Elem {
            space: xa.space.clone(),
            name: lat.name(g1).to_string(),
        }]),
    }
}

/// Whether the location's final element is a shared location (§4.1.8).
pub fn is_shared(ctx: &dyn LatticeCtx, loc: &CompositeLoc) -> bool {
    match loc {
        CompositeLoc::Path { elems, .. } => elems
            .last()
            .and_then(|e| ctx.resolve(e))
            .map(|(lat, id)| lat.is_shared(id))
            .unwrap_or(false),
        _ => false,
    }
}

/// Convenience: the composite for a lattice's top/bottom id.
pub fn from_loc_id(lat: &Lattice, space: Space, id: LocId) -> CompositeLoc {
    if id == TOP {
        CompositeLoc::Top
    } else if id == BOTTOM {
        CompositeLoc::Bottom
    } else {
        CompositeLoc::path(vec![Elem {
            space,
            name: lat.name(id).to_string(),
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 2.1 setting: method lattice STR<WDOBJ<IN (for
    /// windDirection) plus the WDSensor field lattice DIR<TMP<BIN.
    fn fixture() -> (Lattice, Vec<(String, Lattice)>) {
        let method = Lattice::from_decl(
            &[
                ("STR".into(), "WDOBJ".into()),
                ("WDOBJ".into(), "IN".into()),
            ],
            &[],
            &[],
        )
        .expect("method lattice");
        let wd = Lattice::from_decl(
            &[("DIR".into(), "TMP".into()), ("TMP".into(), "BIN".into())],
            &[],
            &[],
        )
        .expect("field lattice");
        (method, vec![("WDSensor".to_string(), wd)])
    }

    fn loc(parts: &[&str]) -> CompositeLoc {
        // first part method, remaining are WDSensor fields
        let mut elems = vec![Elem::method(parts[0])];
        for p in &parts[1..] {
            elems.push(Elem::field("WDSensor", *p));
        }
        CompositeLoc::path(elems)
    }

    #[test]
    fn first_element_decides() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        assert_eq!(
            compare(&ctx, &loc(&["STR"]), &loc(&["IN"])),
            Some(Ordering::Less)
        );
        assert_eq!(
            compare(&ctx, &loc(&["STR", "DIR"]), &loc(&["IN", "BIN"])),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn equal_prefix_recurses() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        // ⟨WDOBJ,TMP⟩ between ⟨WDOBJ,DIR⟩ and ⟨WDOBJ,BIN⟩ (§2.2.3).
        assert_eq!(
            compare(&ctx, &loc(&["WDOBJ", "TMP"]), &loc(&["WDOBJ", "BIN"])),
            Some(Ordering::Less)
        );
        assert_eq!(
            compare(&ctx, &loc(&["WDOBJ", "TMP"]), &loc(&["WDOBJ", "DIR"])),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn longer_path_is_lower() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        assert_eq!(
            compare(&ctx, &loc(&["WDOBJ", "TMP"]), &loc(&["WDOBJ"])),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn top_and_bottom_compare() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        assert!(may_flow(&ctx, &CompositeLoc::Top, &loc(&["STR"])));
        assert!(may_flow(&ctx, &loc(&["STR"]), &CompositeLoc::Bottom));
        assert!(!may_flow(&ctx, &CompositeLoc::Bottom, &loc(&["STR"])));
    }

    #[test]
    fn delta_orders_below_base() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let base = loc(&["WDOBJ", "TMP"]);
        let d = base.delta();
        assert_eq!(compare(&ctx, &d, &base), Some(Ordering::Less));
        assert_eq!(compare(&ctx, &d.delta(), &d), Some(Ordering::Less));
        // delta(⟨WDOBJ,TMP⟩) still above ⟨WDOBJ,DIR⟩.
        assert_eq!(
            compare(&ctx, &d, &loc(&["WDOBJ", "DIR"])),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn glb_comparable_pairs() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let lo = loc(&["WDOBJ", "DIR"]);
        let hi = loc(&["WDOBJ", "BIN"]);
        assert_eq!(glb(&ctx, &lo, &hi), lo);
        assert_eq!(glb(&ctx, &CompositeLoc::Top, &hi), hi);
    }

    #[test]
    fn glb_case1_strictly_lower_first() {
        // Method lattice with a diamond: M < A, M < B.
        let m = Lattice::from_decl(
            &[("M".into(), "A".into()), ("M".into(), "B".into())],
            &[],
            &[],
        )
        .expect("ok");
        let f: Vec<(String, Lattice)> = Vec::new();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let a = CompositeLoc::method("A");
        let b = CompositeLoc::method("B");
        let g = glb(&ctx, &a, &b);
        assert_eq!(g, CompositeLoc::method("M"));
        assert!(may_flow(&ctx, &a, &g));
        assert!(may_flow(&ctx, &b, &g));
    }

    #[test]
    fn glb_case4_recurses_into_fields() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        // Same method element, incomparable? DIR<TMP<BIN is a chain so all
        // comparable — force case 4 by equal method elem + chain fields.
        let a = loc(&["WDOBJ", "TMP"]);
        let b = loc(&["WDOBJ", "DIR"]);
        assert_eq!(glb(&ctx, &a, &b), b);
    }

    #[test]
    fn glb_different_field_classes_pins_prefix() {
        let m = Lattice::from_decl(&[], &[], &["O".into()]).expect("ok");
        let a_lat = Lattice::from_decl(&[], &[], &["F".into()]).expect("ok");
        let b_lat = Lattice::from_decl(&[], &[], &["G".into()]).expect("ok");
        let fields = vec![("A".to_string(), a_lat), ("B".to_string(), b_lat)];
        let ctx = SimpleCtx {
            method: &m,
            fields: &fields,
        };
        let a = CompositeLoc::path(vec![Elem::method("O"), Elem::field("A", "F")]);
        let b = CompositeLoc::path(vec![Elem::method("O"), Elem::field("B", "G")]);
        let g = glb(&ctx, &a, &b);
        // Result must be a lower bound of both.
        assert!(may_flow(&ctx, &a, &g), "{g}");
        assert!(may_flow(&ctx, &b, &g), "{g}");
    }

    #[test]
    fn is_shared_consults_last_element() {
        let m = Lattice::from_decl(&[("A".into(), "B".into())], &["I".into()], &[]).expect("ok");
        let f: Vec<(String, Lattice)> = Vec::new();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        assert!(is_shared(&ctx, &CompositeLoc::method("I")));
        assert!(!is_shared(&ctx, &CompositeLoc::method("A")));
    }

    #[test]
    fn glb_is_commutative_on_fixture() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let locs = [
            loc(&["STR"]),
            loc(&["WDOBJ"]),
            loc(&["IN"]),
            loc(&["WDOBJ", "DIR"]),
            loc(&["WDOBJ", "TMP"]),
            loc(&["WDOBJ", "BIN"]),
            CompositeLoc::Top,
            CompositeLoc::Bottom,
        ];
        for a in &locs {
            for b in &locs {
                assert_eq!(glb(&ctx, a, b), glb(&ctx, b, a), "a={a} b={b}");
            }
        }
    }
}
