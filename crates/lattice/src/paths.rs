//! Lattice complexity metrics (§6.3.1 / Table 6.1): the number of
//! locations, and the number of distinct information paths from ⊤ to ⊥,
//! which the paper uses as a McCabe-style complexity measure.

use crate::lattice::{Lattice, LocId, BOTTOM, TOP};
use std::collections::HashMap;

/// Counts the distinct ⊤→⊥ paths in the lattice's explicit cover graph.
///
/// Named nodes without an explicit parent hang directly under ⊤; nodes
/// without an explicit child sit directly over ⊥. Counts saturate at
/// [`u128::MAX`].
pub fn count_paths(lattice: &Lattice) -> u128 {
    let mut memo: HashMap<LocId, u128> = HashMap::new();
    paths_from(lattice, TOP, &mut memo)
}

fn paths_from(l: &Lattice, node: LocId, memo: &mut HashMap<LocId, u128>) -> u128 {
    if node == BOTTOM {
        return 1;
    }
    if let Some(&v) = memo.get(&node) {
        return v;
    }
    let children: Vec<LocId> = if node == TOP {
        // ⊤ covers every named node with no explicit parent (other than
        // possibly ⊥-pointing edges).
        l.ids()
            .filter(|&x| x != TOP && x != BOTTOM)
            .filter(|&x| l.directly_above(x).iter().all(|&p| p == TOP))
            .collect()
    } else {
        l.directly_below(node)
            .iter()
            .copied()
            .filter(|&x| x != BOTTOM)
            .collect()
    };
    let total: u128 = if children.is_empty() {
        // Falls through to ⊥.
        1
    } else {
        children
            .into_iter()
            .map(|c| paths_from(l, c, memo))
            .fold(0u128, |acc, v| acc.saturating_add(v))
    };
    memo.insert(node, total);
    total
}

/// Classification threshold between "simple" and "complex" lattices
/// (Table 6.1 uses more than 5 location types).
pub const COMPLEX_THRESHOLD: usize = 5;

/// Whether a lattice counts as complex (> 5 named locations).
pub fn is_complex(lattice: &Lattice) -> bool {
    lattice.named_len() > COMPLEX_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_one_path() {
        let l = Lattice::from_decl(
            &[("A".into(), "B".into()), ("B".into(), "C".into())],
            &[],
            &[],
        )
        .expect("ok");
        assert_eq!(count_paths(&l), 1);
    }

    #[test]
    fn diamond_has_two_paths() {
        // M < A, M < B, A < T0, B < T0  → TOP-T0-A-M-BOT and TOP-T0-B-M-BOT
        let l = Lattice::from_decl(
            &[
                ("M".into(), "A".into()),
                ("M".into(), "B".into()),
                ("A".into(), "T0".into()),
                ("B".into(), "T0".into()),
            ],
            &[],
            &[],
        )
        .expect("ok");
        assert_eq!(count_paths(&l), 2);
    }

    #[test]
    fn two_isolated_nodes_have_two_paths() {
        let l = Lattice::from_decl(&[], &[], &["A".into(), "B".into()]).expect("ok");
        assert_eq!(count_paths(&l), 2);
    }

    #[test]
    fn empty_lattice_has_one_path() {
        let l = Lattice::new();
        assert_eq!(count_paths(&l), 1);
    }

    #[test]
    fn complexity_threshold() {
        let l = Lattice::from_decl(
            &[],
            &[],
            &["A".into(), "B".into(), "C".into(), "D".into(), "E".into()],
        )
        .expect("ok");
        assert!(!is_complex(&l));
        let l2 = Lattice::from_decl(
            &[],
            &[],
            &(0..6).map(|i| format!("N{i}")).collect::<Vec<_>>(),
        )
        .expect("ok");
        assert!(is_complex(&l2));
    }
}
