//! Dedekind–MacNeille completion (§2.4.3, §5.2.6).
//!
//! Hierarchy graphs produced by inference are partial orders but not
//! necessarily lattices: GLB/LUB need not exist. The Dedekind–MacNeille
//! completion is the smallest complete lattice containing a partial order.
//! Following Nourine–Raynaud, we realize it as the closure system generated
//! by the principal down-sets under intersection: the normal ideals
//! `{Aˡ : A ⊆ P}` ordered by inclusion.

use crate::fingerprint::Fnv64;
use crate::fnv::FnvHashMap;
use crate::hierarchy::HierarchyGraph;
use crate::lattice::{Lattice, LatticeError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on completion size, guarding against the (theoretical)
/// exponential blow-up of pathological orders.
const MAX_ELEMENTS: usize = 200_000;

/// The result of a completion: the lattice plus the mapping from each
/// original node to its lattice location name (identity for originals) and
/// the list of synthesized names.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The completed lattice.
    pub lattice: Lattice,
    /// Names synthesized for non-principal cuts (`LOC0`, `LOC1`, ...).
    pub synthesized: Vec<String>,
}

/// Computes the Dedekind–MacNeille completion of an acyclic hierarchy
/// graph.
///
/// # Errors
///
/// Returns [`LatticeError::Cycle`] when the graph is cyclic, and treats a
/// blow-up past an internal size cap as a cycle-class failure.
pub fn dedekind_macneille(g: &HierarchyGraph) -> Result<Completion, LatticeError> {
    if let Some(cycle) = g.find_cycle() {
        return Err(LatticeError::Cycle {
            at: cycle.into_iter().next().unwrap_or_default(),
        });
    }

    let nodes: Vec<String> = g.nodes().map(|s| s.to_string()).collect();

    // Principal down-sets: down(x) = {y : y reachable from x}, including x.
    let mut down: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for x in &nodes {
        let mut set = BTreeSet::new();
        let mut stack = vec![x.clone()];
        while let Some(v) = stack.pop() {
            if !set.insert(v.clone()) {
                continue;
            }
            for b in g.below(&v) {
                stack.push(b.to_string());
            }
        }
        down.insert(x.clone(), set);
    }

    // Closure of the generators under pairwise intersection. Closing each
    // discovered set against every generator suffices, because any
    // intersection of intersections is an intersection of generators.
    let generators: Vec<BTreeSet<String>> = down.values().cloned().collect();
    let full: BTreeSet<String> = nodes.iter().cloned().collect();
    let mut family: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    family.insert(full.clone());
    let mut worklist: Vec<BTreeSet<String>> = Vec::new();
    for gset in &generators {
        if family.insert(gset.clone()) {
            worklist.push(gset.clone());
        }
    }
    while let Some(s) = worklist.pop() {
        for gset in &generators {
            let inter: BTreeSet<String> = s.intersection(gset).cloned().collect();
            if family.insert(inter.clone()) {
                if family.len() > MAX_ELEMENTS {
                    return Err(LatticeError::Cycle {
                        at: "<completion blow-up>".to_string(),
                    });
                }
                worklist.push(inter);
            }
        }
    }
    // The bottom of the completion is the empty set (mapped to ⊥).
    family.insert(BTreeSet::new());

    // Name every closed set: principal sets keep the generating node's
    // name, others get fresh `LOCn` names.
    let principal_of: BTreeMap<&BTreeSet<String>, &String> =
        down.iter().map(|(k, v)| (v, k)).collect();
    let mut sets: Vec<&BTreeSet<String>> = family.iter().collect();
    sets.sort_by_key(|s| (s.len(), *s));
    let mut names: BTreeMap<&BTreeSet<String>, String> = BTreeMap::new();
    let mut synthesized = Vec::new();
    let mut counter = 0usize;
    for s in &sets {
        if s.is_empty() {
            continue; // maps to ⊥
        }
        let name = if let Some(n) = principal_of.get(*s) {
            (*n).clone()
        } else {
            // Fresh LOCn name avoiding collisions with original node names.
            loop {
                let candidate = format!("LOC{counter}");
                counter += 1;
                if !g.has_node(&candidate) {
                    break candidate;
                }
            }
        };
        if !principal_of.contains_key(*s) {
            synthesized.push(name.clone());
        }
        names.insert(*s, name);
    }

    // Build the lattice with cover edges (the Hasse diagram): T covers S
    // when S ⊂ T with nothing strictly between.
    let mut lattice = Lattice::new();
    for s in &sets {
        if let Some(n) = names.get(*s) {
            lattice.ensure(n);
        }
    }
    for (i, s) in sets.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        // Proper supersets of s in the family.
        let supersets: Vec<&BTreeSet<String>> = sets
            .iter()
            .skip(i + 1)
            .filter(|t| t.len() > s.len() && s.is_subset(t))
            .copied()
            .collect();
        // Covers of s: supersets with no family member strictly between.
        let minimal: Vec<&BTreeSet<String>> = supersets
            .iter()
            .filter(|t| {
                !supersets
                    .iter()
                    .any(|u| u.len() < t.len() && u.is_subset(t))
            })
            .copied()
            .collect();
        let lo = lattice.ensure(&names[*s]);
        for t in minimal {
            let hi = lattice.ensure(&names[t]);
            lattice.add_order(lo, hi).map_err(|_| LatticeError::Cycle {
                at: names[*s].clone(),
            })?;
        }
    }
    lattice.recompute();

    // Carry shared flags over.
    for s in g.shared_nodes() {
        if let Some(id) = lattice.get(s) {
            lattice.set_shared(id, true);
        }
    }

    Ok(Completion {
        lattice,
        synthesized,
    })
}

/// Dense Dedekind–MacNeille completion: the same closure-system
/// construction as [`dedekind_macneille`], computed over interned node
/// indices with FNV-keyed closed-set deduplication instead of
/// `BTreeSet<BTreeSet<String>>`.
///
/// Nodes are indexed in their `BTreeSet` (sorted-name) order, so an
/// ascending index sequence compares exactly like the corresponding
/// `BTreeSet<String>`: the `(len, set)` sort, the `LOCn` naming counter,
/// and the `ensure`/`add_order` call sequence are all reproduced, making
/// the resulting lattice byte-identical to the string-based completion
/// (pinned by the `dense_matches_legacy_*` tests below).
///
/// # Errors
///
/// Identical to [`dedekind_macneille`]: rejects cyclic graphs, and treats
/// a closure blow-up past the size cap as a cycle-class failure (the
/// closure family is order-independent, so the cap fires on exactly the
/// same inputs).
pub fn dedekind_macneille_dense(g: &HierarchyGraph) -> Result<Completion, LatticeError> {
    if let Some(cycle) = g.find_cycle() {
        return Err(LatticeError::Cycle {
            at: cycle.into_iter().next().unwrap_or_default(),
        });
    }

    // Index nodes in sorted-name order; index order == name order.
    let nodes: Vec<String> = g.nodes().map(|s| s.to_string()).collect();
    let n = nodes.len();
    let index: FnvHashMap<&str, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i as u32))
        .collect();
    let succ: Vec<Vec<u32>> = nodes
        .iter()
        .map(|x| g.below(x).map(|b| index[b]).collect())
        .collect();

    // Principal down-sets as ascending index vectors.
    let mut down: Vec<Vec<u32>> = Vec::with_capacity(n);
    for x in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![x as u32];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut seen[v as usize], true) {
                continue;
            }
            stack.extend(succ[v as usize].iter().copied());
        }
        down.push(
            (0..n as u32)
                .filter(|i| seen[*i as usize])
                .collect::<Vec<u32>>(),
        );
    }

    // Closure of the generators under pairwise intersection, deduplicated
    // through an FNV-keyed family table (hash of the index vector, with
    // full-vector confirmation on collision).
    let hash_set = |s: &[u32]| -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(s.len());
        for v in s {
            h.write_u64(*v as u64);
        }
        h.finish()
    };
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut table: FnvHashMap<u64, Vec<usize>> = FnvHashMap::default();
    let insert = |sets: &mut Vec<Vec<u32>>,
                  table: &mut FnvHashMap<u64, Vec<usize>>,
                  s: Vec<u32>|
     -> Option<usize> {
        let h = hash_set(&s);
        let bucket = table.entry(h).or_default();
        if bucket.iter().any(|&i| sets[i] == s) {
            return None;
        }
        let id = sets.len();
        bucket.push(id);
        sets.push(s);
        Some(id)
    };
    let full: Vec<u32> = (0..n as u32).collect();
    insert(&mut sets, &mut table, full);
    let mut worklist: Vec<usize> = Vec::new();
    for gset in &down {
        if let Some(id) = insert(&mut sets, &mut table, gset.clone()) {
            worklist.push(id);
        }
    }
    while let Some(si) = worklist.pop() {
        for gset in &down {
            // Sorted-vector intersection.
            let s = &sets[si];
            let mut inter = Vec::with_capacity(s.len().min(gset.len()));
            let (mut i, mut j) = (0, 0);
            while i < s.len() && j < gset.len() {
                match s[i].cmp(&gset[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        inter.push(s[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            if let Some(id) = insert(&mut sets, &mut table, inter) {
                if sets.len() > MAX_ELEMENTS {
                    return Err(LatticeError::Cycle {
                        at: "<completion blow-up>".to_string(),
                    });
                }
                worklist.push(id);
            }
        }
    }
    insert(&mut sets, &mut table, Vec::new());

    // Same `(len, set)` order as the legacy sort: ascending index vectors
    // compare like the sorted-name `BTreeSet`s they encode.
    sets.sort_by(|a, b| (a.len(), a.as_slice()).cmp(&(b.len(), b.as_slice())));

    // Down-sets are distinct on acyclic inputs, so principal naming is
    // unambiguous.
    let mut principal_of: FnvHashMap<u64, Vec<(usize, u32)>> = FnvHashMap::default();
    for (x, d) in down.iter().enumerate() {
        principal_of
            .entry(hash_set(d))
            .or_default()
            .push((d.len(), x as u32));
    }
    let principal = |s: &[u32]| -> Option<u32> {
        principal_of
            .get(&hash_set(s))?
            .iter()
            .find(|(len, x)| *len == s.len() && down[*x as usize] == s)
            .map(|(_, x)| *x)
    };

    let mut names: Vec<String> = Vec::with_capacity(sets.len());
    let mut synthesized = Vec::new();
    let mut counter = 0usize;
    for s in &sets {
        if s.is_empty() {
            names.push(String::new()); // maps to ⊥
            continue;
        }
        let name = if let Some(x) = principal(s) {
            nodes[x as usize].clone()
        } else {
            let fresh = loop {
                let candidate = format!("LOC{counter}");
                counter += 1;
                if !g.has_node(&candidate) {
                    break candidate;
                }
            };
            synthesized.push(fresh.clone());
            fresh
        };
        names.push(name);
    }

    // Hasse diagram, in the identical ensure/add_order sequence.
    let mut lattice = Lattice::new();
    for name in &names {
        if !name.is_empty() {
            lattice.ensure(name);
        }
    }
    let is_subset = |s: &[u32], t: &[u32]| -> bool {
        let mut j = 0;
        for v in s {
            while j < t.len() && t[j] < *v {
                j += 1;
            }
            if j >= t.len() || t[j] != *v {
                return false;
            }
            j += 1;
        }
        true
    };
    for (i, s) in sets.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let supersets: Vec<usize> = (i + 1..sets.len())
            .filter(|&t| sets[t].len() > s.len() && is_subset(s, &sets[t]))
            .collect();
        let minimal: Vec<usize> = supersets
            .iter()
            .filter(|&&t| {
                !supersets
                    .iter()
                    .any(|&u| sets[u].len() < sets[t].len() && is_subset(&sets[u], &sets[t]))
            })
            .copied()
            .collect();
        let lo = lattice.ensure(&names[i]);
        for t in minimal {
            let hi = lattice.ensure(&names[t]);
            lattice.add_order(lo, hi).map_err(|_| LatticeError::Cycle {
                at: names[i].clone(),
            })?;
        }
    }
    lattice.recompute();

    for s in g.shared_nodes() {
        if let Some(id) = lattice.get(s) {
            lattice.set_shared(id, true);
        }
    }

    Ok(Completion {
        lattice,
        synthesized,
    })
}

/// A memoized Dedekind–MacNeille completion, keyed on an FNV-64 hash of
/// the hierarchy graph's canonical encoding (nodes, edges, and shared
/// flags in sorted order) with full-key confirmation on collision — the
/// same shape as `intern.rs`'s GLB cache.
///
/// Hierarchy graphs repeat heavily across an inference run (structurally
/// identical methods and classes produce identical graphs, and naive mode
/// completes every hierarchy as-is), so a cache hit replaces the whole
/// closure computation with a clone of the finished [`Completion`].
///
/// The cache is `Sync`: lattice generation fans completions out across
/// worker threads. Entries live in a lock-striped [`ShardedMemo`] (16
/// stripes selected by the canonical key's hash), so concurrent workers
/// only serialize when their hierarchies land in the same stripe — the
/// single-mutex layout this replaces made 8 workers queue behind one
/// lock on corpora where nearly every completion is a cache hit.
#[derive(Default)]
pub struct CompletionCache {
    entries: crate::shard::ShardedMemo<Completion>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CompletionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completes `g`, reusing a previously computed completion when an
    /// identical hierarchy graph has been seen.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`dedekind_macneille`]; errors are not
    /// cached.
    pub fn complete(&self, g: &HierarchyGraph) -> Result<Completion, LatticeError> {
        let key = canonical_key(g);
        {
            // Completion is a pure function of the graph, so the tracked
            // fact can never go stale; recording it documents the read for
            // the dependency-tracked revalidation layer.
            let mut h = Fnv64::new();
            h.write_str(&key);
            sjava_syntax::track::record_completion(h.finish());
        }
        if let Some(c) = self.entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(c);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let completion = dedekind_macneille_dense(g)?;
        self.entries.insert(key, completion.clone());
        Ok(completion)
    }

    /// `(hits, misses)` counters for diagnostics and benchmarks.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A canonical, injective string encoding of a hierarchy graph (node,
/// edge, and shared-flag sections separated by control characters that
/// cannot appear in node names). Two graphs share a key iff they are
/// equal, so the key is usable for any hierarchy-indexed memo table.
pub fn canonical_key(g: &HierarchyGraph) -> String {
    let mut key = String::new();
    for n in g.nodes() {
        key.push_str(n);
        key.push('\u{1}');
    }
    key.push('\u{2}');
    for (a, b) in g.edges() {
        key.push_str(a);
        key.push('\u{1}');
        key.push_str(b);
        key.push('\u{1}');
    }
    key.push('\u{2}');
    for s in g.shared_nodes() {
        key.push_str(s);
        key.push('\u{1}');
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_completes_to_itself() {
        let mut g = HierarchyGraph::new();
        g.add_edge("A", "B");
        g.add_edge("B", "C");
        let c = dedekind_macneille(&g).expect("acyclic");
        assert!(c.synthesized.is_empty(), "chain needs no new nodes");
        let a = c.lattice.get("A").expect("A");
        let ccc = c.lattice.get("C").expect("C");
        assert!(c.lattice.lt(ccc, a));
    }

    #[test]
    fn incomparable_pair_gains_no_nodes() {
        // Two isolated nodes: completion adds only top/bottom cuts, which
        // map onto ⊤/⊥ plus one synthesized top-cut for the full set.
        let mut g = HierarchyGraph::new();
        g.add_node("A");
        g.add_node("B");
        let c = dedekind_macneille(&g).expect("acyclic");
        // The full set {A,B} is not principal → synthesized.
        assert_eq!(c.synthesized.len(), 1);
    }

    #[test]
    fn n_shape_gets_meet_node() {
        // a -> x, a -> y, b -> y : the pair {x,y} has two maximal lower
        // bound candidates... actually test GLB well-definedness: after
        // completion glb(a, b) is a single element.
        let mut g = HierarchyGraph::new();
        g.add_edge("a", "x");
        g.add_edge("a", "y");
        g.add_edge("b", "y");
        let c = dedekind_macneille(&g).expect("acyclic");
        let a = c.lattice.get("a").expect("a");
        let b = c.lattice.get("b").expect("b");
        let y = c.lattice.get("y").expect("y");
        // glb(a,b) = down(a) ∩ down(b) = {y}.
        assert_eq!(c.lattice.glb(a, b), y);
    }

    #[test]
    fn merge_point_example_fig_5_12() {
        // Fields a,b,c,d flow into f and g: b,c -> f and b,c,d -> g with a
        // -> f too. The cut for {sources of f} ∩ {sources of g} style
        // meets must exist; here we check the classic 2x2 bipartite case
        // which famously requires a synthesized middle element.
        let mut g = HierarchyGraph::new();
        g.add_edge("b", "f");
        g.add_edge("b", "g");
        g.add_edge("c", "f");
        g.add_edge("c", "g");
        let c = dedekind_macneille(&g).expect("acyclic");
        let b = c.lattice.get("b").expect("b");
        let cc = c.lattice.get("c").expect("c");
        let f = c.lattice.get("f").expect("f");
        let gg = c.lattice.get("g").expect("g");
        let meet = c.lattice.glb(b, cc);
        // The meet of b and c must be a synthesized element strictly above
        // both f and g.
        assert_ne!(meet, f);
        assert_ne!(meet, gg);
        assert!(c.lattice.lt(f, meet));
        assert!(c.lattice.lt(gg, meet));
    }

    #[test]
    fn cyclic_input_is_rejected() {
        let mut g = HierarchyGraph::new();
        g.add_edge("A", "B");
        g.add_edge("B", "A");
        assert!(dedekind_macneille(&g).is_err());
        assert!(dedekind_macneille_dense(&g).is_err());
        assert!(CompletionCache::new().complete(&g).is_err());
    }

    fn sample_graphs() -> Vec<HierarchyGraph> {
        let mut out = Vec::new();
        let mut g = HierarchyGraph::new();
        g.add_edge("a", "x");
        g.add_edge("a", "y");
        g.add_edge("b", "y");
        g.add_edge("b", "z");
        g.set_shared("y");
        out.push(g);
        let mut g = HierarchyGraph::new();
        g.add_edge("b", "f");
        g.add_edge("b", "g");
        g.add_edge("c", "f");
        g.add_edge("c", "g");
        out.push(g);
        let mut g = HierarchyGraph::new();
        g.add_node("only");
        out.push(g);
        out.push(HierarchyGraph::new());
        let mut g = HierarchyGraph::new();
        for i in 0..6 {
            for j in 0..6 {
                if i < j && (i + j) % 3 != 0 {
                    g.add_edge(format!("n{i}"), format!("n{j}"));
                }
            }
        }
        out.push(g);
        out
    }

    #[test]
    fn dense_matches_legacy_on_samples() {
        for g in sample_graphs() {
            let legacy = dedekind_macneille(&g).expect("legacy");
            let dense = dedekind_macneille_dense(&g).expect("dense");
            assert_eq!(
                legacy.lattice.fingerprint(),
                dense.lattice.fingerprint(),
                "lattice mismatch on {g}"
            );
            assert_eq!(legacy.synthesized, dense.synthesized, "names on {g}");
        }
    }

    #[test]
    fn cache_hits_return_identical_completions() {
        let cache = CompletionCache::new();
        for g in sample_graphs() {
            let first = cache.complete(&g).expect("first");
            let again = cache.complete(&g).expect("again");
            assert_eq!(first.lattice.fingerprint(), again.lattice.fingerprint());
            assert_eq!(first.synthesized, again.synthesized);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, sample_graphs().len());
        assert_eq!(hits, sample_graphs().len());
    }

    #[test]
    fn cache_distinguishes_shared_flags() {
        // Same nodes and edges, different shared flags: must not collide.
        let cache = CompletionCache::new();
        let mut g1 = HierarchyGraph::new();
        g1.add_edge("a", "b");
        let mut g2 = HierarchyGraph::new();
        g2.add_edge("a", "b");
        g2.set_shared("b");
        let c1 = cache.complete(&g1).expect("plain");
        let c2 = cache.complete(&g2).expect("shared");
        let b1 = c1.lattice.get("b").expect("b");
        let b2 = c2.lattice.get("b").expect("b");
        assert!(!c1.lattice.is_shared(b1));
        assert!(c2.lattice.is_shared(b2));
    }

    #[test]
    fn completion_is_a_lattice_glb_total() {
        // Random-ish small order; check every pair has a well-defined GLB
        // (the `glb` fallback to ⊥ would still be *a* bound — instead we
        // check uniqueness via lub/glb consistency: glb(a,b) must be ≥ any
        // common lower bound).
        let mut g = HierarchyGraph::new();
        g.add_edge("p", "x");
        g.add_edge("q", "x");
        g.add_edge("p", "y");
        g.add_edge("q", "y");
        g.add_edge("x", "z");
        let c = dedekind_macneille(&g).expect("acyclic");
        let l = &c.lattice;
        for a in l.ids() {
            for b in l.ids() {
                let m = l.glb(a, b);
                for w in l.ids() {
                    if l.leq(w, a) && l.leq(w, b) {
                        assert!(
                            l.leq(w, m),
                            "glb({},{}) = {} not above common bound {}",
                            l.name(a),
                            l.name(b),
                            l.name(m),
                            l.name(w)
                        );
                    }
                }
            }
        }
    }
}
