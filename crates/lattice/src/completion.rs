//! Dedekind–MacNeille completion (§2.4.3, §5.2.6).
//!
//! Hierarchy graphs produced by inference are partial orders but not
//! necessarily lattices: GLB/LUB need not exist. The Dedekind–MacNeille
//! completion is the smallest complete lattice containing a partial order.
//! Following Nourine–Raynaud, we realize it as the closure system generated
//! by the principal down-sets under intersection: the normal ideals
//! `{Aˡ : A ⊆ P}` ordered by inclusion.

use crate::hierarchy::HierarchyGraph;
use crate::lattice::{Lattice, LatticeError};
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on completion size, guarding against the (theoretical)
/// exponential blow-up of pathological orders.
const MAX_ELEMENTS: usize = 200_000;

/// The result of a completion: the lattice plus the mapping from each
/// original node to its lattice location name (identity for originals) and
/// the list of synthesized names.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The completed lattice.
    pub lattice: Lattice,
    /// Names synthesized for non-principal cuts (`LOC0`, `LOC1`, ...).
    pub synthesized: Vec<String>,
}

/// Computes the Dedekind–MacNeille completion of an acyclic hierarchy
/// graph.
///
/// # Errors
///
/// Returns [`LatticeError::Cycle`] when the graph is cyclic, and treats a
/// blow-up past an internal size cap as a cycle-class failure.
pub fn dedekind_macneille(g: &HierarchyGraph) -> Result<Completion, LatticeError> {
    if let Some(cycle) = g.find_cycle() {
        return Err(LatticeError::Cycle {
            at: cycle.into_iter().next().unwrap_or_default(),
        });
    }

    let nodes: Vec<String> = g.nodes().map(|s| s.to_string()).collect();

    // Principal down-sets: down(x) = {y : y reachable from x}, including x.
    let mut down: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for x in &nodes {
        let mut set = BTreeSet::new();
        let mut stack = vec![x.clone()];
        while let Some(v) = stack.pop() {
            if !set.insert(v.clone()) {
                continue;
            }
            for b in g.below(&v) {
                stack.push(b.to_string());
            }
        }
        down.insert(x.clone(), set);
    }

    // Closure of the generators under pairwise intersection. Closing each
    // discovered set against every generator suffices, because any
    // intersection of intersections is an intersection of generators.
    let generators: Vec<BTreeSet<String>> = down.values().cloned().collect();
    let full: BTreeSet<String> = nodes.iter().cloned().collect();
    let mut family: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    family.insert(full.clone());
    let mut worklist: Vec<BTreeSet<String>> = Vec::new();
    for gset in &generators {
        if family.insert(gset.clone()) {
            worklist.push(gset.clone());
        }
    }
    while let Some(s) = worklist.pop() {
        for gset in &generators {
            let inter: BTreeSet<String> = s.intersection(gset).cloned().collect();
            if family.insert(inter.clone()) {
                if family.len() > MAX_ELEMENTS {
                    return Err(LatticeError::Cycle {
                        at: "<completion blow-up>".to_string(),
                    });
                }
                worklist.push(inter);
            }
        }
    }
    // The bottom of the completion is the empty set (mapped to ⊥).
    family.insert(BTreeSet::new());

    // Name every closed set: principal sets keep the generating node's
    // name, others get fresh `LOCn` names.
    let principal_of: BTreeMap<&BTreeSet<String>, &String> =
        down.iter().map(|(k, v)| (v, k)).collect();
    let mut sets: Vec<&BTreeSet<String>> = family.iter().collect();
    sets.sort_by_key(|s| (s.len(), *s));
    let mut names: BTreeMap<&BTreeSet<String>, String> = BTreeMap::new();
    let mut synthesized = Vec::new();
    let mut counter = 0usize;
    for s in &sets {
        if s.is_empty() {
            continue; // maps to ⊥
        }
        let name = if let Some(n) = principal_of.get(*s) {
            (*n).clone()
        } else {
            // Fresh LOCn name avoiding collisions with original node names.
            loop {
                let candidate = format!("LOC{counter}");
                counter += 1;
                if !g.has_node(&candidate) {
                    break candidate;
                }
            }
        };
        if !principal_of.contains_key(*s) {
            synthesized.push(name.clone());
        }
        names.insert(*s, name);
    }

    // Build the lattice with cover edges (the Hasse diagram): T covers S
    // when S ⊂ T with nothing strictly between.
    let mut lattice = Lattice::new();
    for s in &sets {
        if let Some(n) = names.get(*s) {
            lattice.ensure(n);
        }
    }
    for (i, s) in sets.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        // Proper supersets of s in the family.
        let supersets: Vec<&BTreeSet<String>> = sets
            .iter()
            .skip(i + 1)
            .filter(|t| t.len() > s.len() && s.is_subset(t))
            .copied()
            .collect();
        // Covers of s: supersets with no family member strictly between.
        let minimal: Vec<&BTreeSet<String>> = supersets
            .iter()
            .filter(|t| {
                !supersets
                    .iter()
                    .any(|u| u.len() < t.len() && u.is_subset(t))
            })
            .copied()
            .collect();
        let lo = lattice.ensure(&names[*s]);
        for t in minimal {
            let hi = lattice.ensure(&names[t]);
            lattice.add_order(lo, hi).map_err(|_| LatticeError::Cycle {
                at: names[*s].clone(),
            })?;
        }
    }
    lattice.recompute();

    // Carry shared flags over.
    for s in g.shared_nodes() {
        if let Some(id) = lattice.get(s) {
            lattice.set_shared(id, true);
        }
    }

    Ok(Completion {
        lattice,
        synthesized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_completes_to_itself() {
        let mut g = HierarchyGraph::new();
        g.add_edge("A", "B");
        g.add_edge("B", "C");
        let c = dedekind_macneille(&g).expect("acyclic");
        assert!(c.synthesized.is_empty(), "chain needs no new nodes");
        let a = c.lattice.get("A").expect("A");
        let ccc = c.lattice.get("C").expect("C");
        assert!(c.lattice.lt(ccc, a));
    }

    #[test]
    fn incomparable_pair_gains_no_nodes() {
        // Two isolated nodes: completion adds only top/bottom cuts, which
        // map onto ⊤/⊥ plus one synthesized top-cut for the full set.
        let mut g = HierarchyGraph::new();
        g.add_node("A");
        g.add_node("B");
        let c = dedekind_macneille(&g).expect("acyclic");
        // The full set {A,B} is not principal → synthesized.
        assert_eq!(c.synthesized.len(), 1);
    }

    #[test]
    fn n_shape_gets_meet_node() {
        // a -> x, a -> y, b -> y : the pair {x,y} has two maximal lower
        // bound candidates... actually test GLB well-definedness: after
        // completion glb(a, b) is a single element.
        let mut g = HierarchyGraph::new();
        g.add_edge("a", "x");
        g.add_edge("a", "y");
        g.add_edge("b", "y");
        let c = dedekind_macneille(&g).expect("acyclic");
        let a = c.lattice.get("a").expect("a");
        let b = c.lattice.get("b").expect("b");
        let y = c.lattice.get("y").expect("y");
        // glb(a,b) = down(a) ∩ down(b) = {y}.
        assert_eq!(c.lattice.glb(a, b), y);
    }

    #[test]
    fn merge_point_example_fig_5_12() {
        // Fields a,b,c,d flow into f and g: b,c -> f and b,c,d -> g with a
        // -> f too. The cut for {sources of f} ∩ {sources of g} style
        // meets must exist; here we check the classic 2x2 bipartite case
        // which famously requires a synthesized middle element.
        let mut g = HierarchyGraph::new();
        g.add_edge("b", "f");
        g.add_edge("b", "g");
        g.add_edge("c", "f");
        g.add_edge("c", "g");
        let c = dedekind_macneille(&g).expect("acyclic");
        let b = c.lattice.get("b").expect("b");
        let cc = c.lattice.get("c").expect("c");
        let f = c.lattice.get("f").expect("f");
        let gg = c.lattice.get("g").expect("g");
        let meet = c.lattice.glb(b, cc);
        // The meet of b and c must be a synthesized element strictly above
        // both f and g.
        assert_ne!(meet, f);
        assert_ne!(meet, gg);
        assert!(c.lattice.lt(f, meet));
        assert!(c.lattice.lt(gg, meet));
    }

    #[test]
    fn cyclic_input_is_rejected() {
        let mut g = HierarchyGraph::new();
        g.add_edge("A", "B");
        g.add_edge("B", "A");
        assert!(dedekind_macneille(&g).is_err());
    }

    #[test]
    fn completion_is_a_lattice_glb_total() {
        // Random-ish small order; check every pair has a well-defined GLB
        // (the `glb` fallback to ⊥ would still be *a* bound — instead we
        // check uniqueness via lub/glb consistency: glb(a,b) must be ≥ any
        // common lower bound).
        let mut g = HierarchyGraph::new();
        g.add_edge("p", "x");
        g.add_edge("q", "x");
        g.add_edge("p", "y");
        g.add_edge("q", "y");
        g.add_edge("x", "z");
        let c = dedekind_macneille(&g).expect("acyclic");
        let l = &c.lattice;
        for a in l.ids() {
            for b in l.ids() {
                let m = l.glb(a, b);
                for w in l.ids() {
                    if l.leq(w, a) && l.leq(w, b) {
                        assert!(
                            l.leq(w, m),
                            "glb({},{}) = {} not above common bound {}",
                            l.name(a),
                            l.name(b),
                            l.name(m),
                            l.name(w)
                        );
                    }
                }
            }
        }
    }
}
