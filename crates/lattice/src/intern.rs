//! Interned composite locations with memoized ordering queries.
//!
//! The flow checker compares the same handful of [`CompositeLoc`]s against
//! each other thousands of times per method (every assignment, branch and
//! call site re-derives locations from the same annotation environment).
//! Each raw [`compare`]/[`glb`] walks the element vectors and resolves
//! location names through hash lookups; a [`LocInterner`] maps each
//! composite location to a dense `u32` id once and caches the result of
//! every `(id, id)` ordering query, so repeated queries are a single hash
//! probe on a pair of integers. The underlying per-pair answers come from
//! the [`Lattice`] reachability bitsets (`reach_up`/`reach_down`), so a
//! cache miss is still cheap.
//!
//! A `LocInterner` memoizes against **one** [`LatticeCtx`] — the caches
//! are keyed only by location ids, so answers would go stale under a
//! different method lattice. Create one interner per checked method (the
//! checker does exactly that); this also keeps the type `!Sync`-free of
//! locking, since per-method state is thread-local to the worker checking
//! that method.

use crate::composite::{compare, glb, CompositeLoc, LatticeCtx};
use crate::lattice::Lattice;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Dense id of an interned [`CompositeLoc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocRef(pub u32);

/// An interning table over composite locations with memoized
/// [`compare`]/[`glb`] caches. See the module docs for the one-context
/// caveat.
#[derive(Debug, Default)]
pub struct LocInterner {
    ids: RefCell<HashMap<CompositeLoc, LocRef>>,
    locs: RefCell<Vec<CompositeLoc>>,
    cmp_cache: RefCell<HashMap<(LocRef, LocRef), Option<Ordering>>>,
    glb_cache: RefCell<HashMap<(LocRef, LocRef), LocRef>>,
}

impl LocInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a location, returning its dense id (stable for the
    /// lifetime of the interner).
    pub fn intern(&self, loc: &CompositeLoc) -> LocRef {
        if let Some(&r) = self.ids.borrow().get(loc) {
            return r;
        }
        let mut locs = self.locs.borrow_mut();
        let r = LocRef(locs.len() as u32);
        locs.push(loc.clone());
        self.ids.borrow_mut().insert(loc.clone(), r);
        r
    }

    /// The location behind an id.
    pub fn resolve(&self, r: LocRef) -> CompositeLoc {
        self.locs.borrow()[r.0 as usize].clone()
    }

    /// Number of distinct interned locations.
    pub fn len(&self) -> usize {
        self.locs.borrow().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.locs.borrow().is_empty()
    }

    /// Memoized [`compare`]: identical to the raw walk, one hash probe on
    /// a repeat query.
    pub fn compare(
        &self,
        ctx: &dyn LatticeCtx,
        a: &CompositeLoc,
        b: &CompositeLoc,
    ) -> Option<Ordering> {
        // Equality needs no lattice walk and no cache probe; it is also
        // the single most common query the flow checker issues (`pc` vs
        // the location it was just lowered to).
        if a == b {
            return Some(Ordering::Equal);
        }
        let (ra, rb) = (self.intern(a), self.intern(b));
        if let Some(&hit) = self.cmp_cache.borrow().get(&(ra, rb)) {
            return hit;
        }
        let res = compare(ctx, a, b);
        let mut cache = self.cmp_cache.borrow_mut();
        cache.insert((ra, rb), res);
        cache.insert((rb, ra), res.map(Ordering::reverse));
        res
    }

    /// Memoized [`glb`]; the result is interned too, so chained meets
    /// (`pc` lowering through nested branches) reuse earlier answers.
    pub fn glb(&self, ctx: &dyn LatticeCtx, a: &CompositeLoc, b: &CompositeLoc) -> CompositeLoc {
        if a == b {
            return a.clone();
        }
        let (ra, rb) = (self.intern(a), self.intern(b));
        let key = if ra <= rb { (ra, rb) } else { (rb, ra) };
        if let Some(&hit) = self.glb_cache.borrow().get(&key) {
            return self.resolve(hit);
        }
        let res = glb(ctx, a, b);
        let rres = self.intern(&res);
        self.glb_cache.borrow_mut().insert(key, rres);
        res
    }

    /// Memoized reflexive flow check `dst ⊑ src`.
    pub fn may_flow(&self, ctx: &dyn LatticeCtx, src: &CompositeLoc, dst: &CompositeLoc) -> bool {
        matches!(
            self.compare(ctx, dst, src),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )
    }
}

/// Convenience for code that has a bare method [`Lattice`] and no field
/// lattices (inference hot paths).
pub struct MethodOnlyCtx<'a>(pub &'a Lattice);

impl LatticeCtx for MethodOnlyCtx<'_> {
    fn method_lattice(&self) -> &Lattice {
        self.0
    }

    fn field_lattice(&self, _class: &str) -> Option<&Lattice> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::{Elem, SimpleCtx};

    fn fixture() -> (Lattice, Vec<(String, Lattice)>) {
        let method = Lattice::from_decl(
            &[
                ("STR".into(), "WDOBJ".into()),
                ("WDOBJ".into(), "IN".into()),
            ],
            &[],
            &[],
        )
        .expect("method lattice");
        let wd = Lattice::from_decl(
            &[("DIR".into(), "TMP".into()), ("TMP".into(), "BIN".into())],
            &[],
            &[],
        )
        .expect("field lattice");
        (method, vec![("WDSensor".to_string(), wd)])
    }

    fn loc(parts: &[&str]) -> CompositeLoc {
        let mut elems = vec![Elem::method(parts[0])];
        for p in &parts[1..] {
            elems.push(Elem::field("WDSensor", *p));
        }
        CompositeLoc::path(elems)
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let interner = LocInterner::new();
        let a = loc(&["STR"]);
        let b = loc(&["IN"]);
        let ra = interner.intern(&a);
        assert_eq!(interner.intern(&b), LocRef(1));
        assert_eq!(interner.intern(&a), ra);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(ra), a);
    }

    #[test]
    fn cached_compare_matches_raw() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let locs = [
            loc(&["STR"]),
            loc(&["WDOBJ"]),
            loc(&["IN"]),
            loc(&["WDOBJ", "DIR"]),
            loc(&["WDOBJ", "TMP"]),
            loc(&["WDOBJ", "BIN"]),
            CompositeLoc::Top,
            CompositeLoc::Bottom,
            loc(&["WDOBJ", "TMP"]).delta(),
        ];
        for a in &locs {
            for b in &locs {
                // Query twice: the second hits the cache.
                assert_eq!(interner.compare(&ctx, a, b), compare(&ctx, a, b));
                assert_eq!(interner.compare(&ctx, a, b), compare(&ctx, a, b));
            }
        }
    }

    #[test]
    fn cached_glb_matches_raw() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let locs = [
            loc(&["STR"]),
            loc(&["WDOBJ"]),
            loc(&["IN"]),
            loc(&["WDOBJ", "DIR"]),
            loc(&["WDOBJ", "BIN"]),
            CompositeLoc::Top,
            CompositeLoc::Bottom,
        ];
        for a in &locs {
            for b in &locs {
                assert_eq!(interner.glb(&ctx, a, b), glb(&ctx, a, b), "a={a} b={b}");
                assert_eq!(interner.glb(&ctx, a, b), glb(&ctx, b, a), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn reverse_queries_come_from_cache() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let a = loc(&["STR"]);
        let b = loc(&["IN"]);
        assert_eq!(interner.compare(&ctx, &a, &b), Some(Ordering::Less));
        // The reversed pair was seeded by the first query.
        assert_eq!(interner.compare(&ctx, &b, &a), Some(Ordering::Greater));
    }
}
