//! Interned composite locations with memoized ordering queries.
//!
//! The flow checker compares the same handful of [`CompositeLoc`]s against
//! each other thousands of times per method (every assignment, branch and
//! call site re-derives locations from the same annotation environment).
//! Each raw [`compare`]/[`glb`] walks the element vectors and resolves
//! location names through hash lookups; a [`LocInterner`] maps each
//! composite location to a dense `u32` id once and caches the result of
//! every `(id, id)` ordering query, so repeated queries are a single hash
//! probe on a pair of integers. The underlying per-pair answers come from
//! the [`Lattice`] reachability bitsets (`reach_up`/`reach_down`), so a
//! cache miss is still cheap.
//!
//! A `LocInterner` memoizes against **one** [`LatticeCtx`] — the caches
//! are keyed only by location ids, so answers would go stale under a
//! different method lattice. Create one interner per checked method (the
//! checker does exactly that); this also keeps the type `!Sync`-free of
//! locking, since per-method state is thread-local to the worker checking
//! that method.

use crate::composite::{compare, glb, is_shared, CompositeLoc, LatticeCtx};
use crate::fnv::FnvHashMap;
use crate::lattice::Lattice;
use std::cell::RefCell;
use std::cmp::Ordering;

/// Dense id of an interned [`CompositeLoc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocRef(pub u32);

/// A square matrix over interned ids holding one byte per ordered pair,
/// with `0` meaning "not yet computed". A method interns a few dozen
/// locations at most, so the matrix stays tiny and every cache probe is a
/// bounds check and an indexed load — no hashing at all.
#[derive(Debug, Default)]
struct PairMatrix {
    stride: usize,
    cells: Vec<u8>,
}

impl PairMatrix {
    fn get(&self, a: LocRef, b: LocRef) -> u8 {
        let (a, b) = (a.0 as usize, b.0 as usize);
        if a < self.stride && b < self.stride {
            self.cells[a * self.stride + b]
        } else {
            0
        }
    }

    fn set(&mut self, a: LocRef, b: LocRef, v: u8) {
        let needed = (a.0.max(b.0) as usize) + 1;
        if needed > self.stride {
            let stride = needed.max(8).next_power_of_two();
            let mut cells = vec![0u8; stride * stride];
            for i in 0..self.stride {
                cells[i * stride..i * stride + self.stride]
                    .copy_from_slice(&self.cells[i * self.stride..(i + 1) * self.stride]);
            }
            self.stride = stride;
            self.cells = cells;
        }
        self.cells[a.0 as usize * self.stride + b.0 as usize] = v;
    }
}

/// Byte encoding of a memoized `Option<Ordering>` (`0` = absent).
fn enc_ord(res: Option<Ordering>) -> u8 {
    match res {
        None => 1,
        Some(Ordering::Less) => 2,
        Some(Ordering::Equal) => 3,
        Some(Ordering::Greater) => 4,
    }
}

fn dec_ord(v: u8) -> Option<Ordering> {
    match v {
        2 => Some(Ordering::Less),
        3 => Some(Ordering::Equal),
        4 => Some(Ordering::Greater),
        _ => None,
    }
}

/// Per-base list of `(class, field) → extended id` memo entries for
/// [`LocInterner::extend_field_id`].
type ExtEntries = Vec<((String, String), LocRef)>;

/// An interning table over composite locations with memoized
/// [`compare`]/[`glb`] caches. See the module docs for the one-context
/// caveat.
#[derive(Debug, Default)]
pub struct LocInterner {
    ids: RefCell<FnvHashMap<CompositeLoc, LocRef>>,
    locs: RefCell<Vec<CompositeLoc>>,
    cmp_cache: RefCell<PairMatrix>,
    glb_cache: RefCell<FnvHashMap<(u32, u32), LocRef>>,
    ext_cache: RefCell<FnvHashMap<LocRef, ExtEntries>>,
    /// Per-id memo of [`is_shared`]: `0` unknown, `1` no, `2` yes.
    shared_cache: RefCell<Vec<u8>>,
}

impl LocInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a location, returning its dense id (stable for the
    /// lifetime of the interner).
    pub fn intern(&self, loc: &CompositeLoc) -> LocRef {
        if let Some(&r) = self.ids.borrow().get(loc) {
            return r;
        }
        let mut locs = self.locs.borrow_mut();
        let r = LocRef(locs.len() as u32);
        locs.push(loc.clone());
        self.ids.borrow_mut().insert(loc.clone(), r);
        r
    }

    /// The location behind an id.
    pub fn resolve(&self, r: LocRef) -> CompositeLoc {
        self.locs.borrow()[r.0 as usize].clone()
    }

    /// Number of distinct interned locations.
    pub fn len(&self) -> usize {
        self.locs.borrow().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.locs.borrow().is_empty()
    }

    /// Memoized [`compare`]: identical to the raw walk, one hash probe on
    /// a repeat query.
    pub fn compare(
        &self,
        ctx: &dyn LatticeCtx,
        a: &CompositeLoc,
        b: &CompositeLoc,
    ) -> Option<Ordering> {
        // Equality needs no lattice walk and no cache probe; it is also
        // the single most common query the flow checker issues (`pc` vs
        // the location it was just lowered to).
        if a == b {
            return Some(Ordering::Equal);
        }
        let (ra, rb) = (self.intern(a), self.intern(b));
        let hit = self.cmp_cache.borrow().get(ra, rb);
        if hit != 0 {
            return dec_ord(hit);
        }
        let res = compare(ctx, a, b);
        let mut cache = self.cmp_cache.borrow_mut();
        cache.set(ra, rb, enc_ord(res));
        cache.set(rb, ra, enc_ord(res.map(Ordering::reverse)));
        res
    }

    /// Memoized [`glb`]; the result is interned too, so chained meets
    /// (`pc` lowering through nested branches) reuse earlier answers.
    pub fn glb(&self, ctx: &dyn LatticeCtx, a: &CompositeLoc, b: &CompositeLoc) -> CompositeLoc {
        if a == b {
            return a.clone();
        }
        let (ra, rb) = (self.intern(a), self.intern(b));
        let key = if ra <= rb { (ra.0, rb.0) } else { (rb.0, ra.0) };
        if let Some(&hit) = self.glb_cache.borrow().get(&key) {
            return self.resolve(hit);
        }
        let res = glb(ctx, a, b);
        let rres = self.intern(&res);
        self.glb_cache.borrow_mut().insert(key, rres);
        res
    }

    /// Memoized reflexive flow check `dst ⊑ src`.
    pub fn may_flow(&self, ctx: &dyn LatticeCtx, src: &CompositeLoc, dst: &CompositeLoc) -> bool {
        matches!(
            self.compare(ctx, dst, src),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )
    }

    /// Id-level [`compare`]: no location hashing at all — equality is an
    /// integer compare and repeat queries are a probe on a pair of `u32`s.
    /// Shares the same cache as the value-based [`LocInterner::compare`].
    pub fn compare_ids(&self, ctx: &dyn LatticeCtx, a: LocRef, b: LocRef) -> Option<Ordering> {
        if a == b {
            return Some(Ordering::Equal);
        }
        let hit = self.cmp_cache.borrow().get(a, b);
        if hit != 0 {
            return dec_ord(hit);
        }
        let res = {
            let locs = self.locs.borrow();
            compare(ctx, &locs[a.0 as usize], &locs[b.0 as usize])
        };
        let mut cache = self.cmp_cache.borrow_mut();
        cache.set(a, b, enc_ord(res));
        cache.set(b, a, enc_ord(res.map(Ordering::reverse)));
        res
    }

    /// Id-level [`glb`]; the result is interned and returned as an id.
    pub fn glb_ids(&self, ctx: &dyn LatticeCtx, a: LocRef, b: LocRef) -> LocRef {
        if a == b {
            return a;
        }
        let key = if a <= b { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&hit) = self.glb_cache.borrow().get(&key) {
            return hit;
        }
        let res = {
            let locs = self.locs.borrow();
            glb(ctx, &locs[a.0 as usize], &locs[b.0 as usize])
        };
        let r = self.intern(&res);
        self.glb_cache.borrow_mut().insert(key, r);
        r
    }

    /// Memoized [`is_shared`] by id.
    pub fn is_shared_id(&self, ctx: &dyn LatticeCtx, a: LocRef) -> bool {
        if let Some(&hit) = self.shared_cache.borrow().get(a.0 as usize) {
            if hit != 0 {
                return hit == 2;
            }
        }
        let res = {
            let locs = self.locs.borrow();
            is_shared(ctx, &locs[a.0 as usize])
        };
        let mut cache = self.shared_cache.borrow_mut();
        if cache.len() <= a.0 as usize {
            cache.resize(a.0 as usize + 1, 0);
        }
        cache[a.0 as usize] = if res { 2 } else { 1 };
        res
    }

    /// Memoized `⊕` (field extension) by id: `base ⊕ class.name`. Repeat
    /// extensions of the same base probe a short per-base list with plain
    /// string equality — no location hashing, no allocation.
    pub fn extend_field_id(&self, base: LocRef, class: &str, name: &str) -> LocRef {
        if let Some(list) = self.ext_cache.borrow().get(&base) {
            if let Some((_, r)) = list.iter().find(|((c, n), _)| c == class && n == name) {
                return *r;
            }
        }
        let loc = self.locs.borrow()[base.0 as usize].extend_field(class, name);
        let r = self.intern(&loc);
        self.ext_cache
            .borrow_mut()
            .entry(base)
            .or_default()
            .push(((class.to_string(), name.to_string()), r));
        r
    }
}

/// Convenience for code that has a bare method [`Lattice`] and no field
/// lattices (inference hot paths).
pub struct MethodOnlyCtx<'a>(pub &'a Lattice);

impl LatticeCtx for MethodOnlyCtx<'_> {
    fn method_lattice(&self) -> &Lattice {
        self.0
    }

    fn field_lattice(&self, _class: &str) -> Option<&Lattice> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::{Elem, SimpleCtx};

    fn fixture() -> (Lattice, Vec<(String, Lattice)>) {
        let method = Lattice::from_decl(
            &[
                ("STR".into(), "WDOBJ".into()),
                ("WDOBJ".into(), "IN".into()),
            ],
            &[],
            &[],
        )
        .expect("method lattice");
        let wd = Lattice::from_decl(
            &[("DIR".into(), "TMP".into()), ("TMP".into(), "BIN".into())],
            &[],
            &[],
        )
        .expect("field lattice");
        (method, vec![("WDSensor".to_string(), wd)])
    }

    fn loc(parts: &[&str]) -> CompositeLoc {
        let mut elems = vec![Elem::method(parts[0])];
        for p in &parts[1..] {
            elems.push(Elem::field("WDSensor", *p));
        }
        CompositeLoc::path(elems)
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let interner = LocInterner::new();
        let a = loc(&["STR"]);
        let b = loc(&["IN"]);
        let ra = interner.intern(&a);
        assert_eq!(interner.intern(&b), LocRef(1));
        assert_eq!(interner.intern(&a), ra);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(ra), a);
    }

    #[test]
    fn cached_compare_matches_raw() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let locs = [
            loc(&["STR"]),
            loc(&["WDOBJ"]),
            loc(&["IN"]),
            loc(&["WDOBJ", "DIR"]),
            loc(&["WDOBJ", "TMP"]),
            loc(&["WDOBJ", "BIN"]),
            CompositeLoc::Top,
            CompositeLoc::Bottom,
            loc(&["WDOBJ", "TMP"]).delta(),
        ];
        for a in &locs {
            for b in &locs {
                // Query twice: the second hits the cache.
                assert_eq!(interner.compare(&ctx, a, b), compare(&ctx, a, b));
                assert_eq!(interner.compare(&ctx, a, b), compare(&ctx, a, b));
            }
        }
    }

    #[test]
    fn cached_glb_matches_raw() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let locs = [
            loc(&["STR"]),
            loc(&["WDOBJ"]),
            loc(&["IN"]),
            loc(&["WDOBJ", "DIR"]),
            loc(&["WDOBJ", "BIN"]),
            CompositeLoc::Top,
            CompositeLoc::Bottom,
        ];
        for a in &locs {
            for b in &locs {
                assert_eq!(interner.glb(&ctx, a, b), glb(&ctx, a, b), "a={a} b={b}");
                assert_eq!(interner.glb(&ctx, a, b), glb(&ctx, b, a), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn reverse_queries_come_from_cache() {
        let (m, f) = fixture();
        let ctx = SimpleCtx {
            method: &m,
            fields: &f,
        };
        let interner = LocInterner::new();
        let a = loc(&["STR"]);
        let b = loc(&["IN"]);
        assert_eq!(interner.compare(&ctx, &a, &b), Some(Ordering::Less));
        // The reversed pair was seeded by the first query.
        assert_eq!(interner.compare(&ctx, &b, &a), Some(Ordering::Greater));
    }
}
