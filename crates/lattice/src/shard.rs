//! A lock-striped memo arena for parallel interning.
//!
//! The dense inference pipeline and the parallel front-end both funnel
//! repeated keys (canonical hierarchy encodings, composite-location
//! annotation strings, whole-conversion memo keys) through shared memo
//! tables. A single `Mutex<HashMap>` serializes every worker on one
//! cache line; [`ShardedMemo`] splits the table into [`SHARDS`]
//! independently-locked stripes selected by the key's FNV-64 hash, so
//! two workers only contend when their keys land in the same stripe
//! (probability 1/16 under a uniform hash).
//!
//! Determinism: the memo is a pure function table — a hit returns a
//! clone of exactly the value the miss path would have computed — so
//! interleaving, stripe count, and thread count cannot change any
//! observable result, only how often the computation is repeated.

use crate::fingerprint::Fnv64;
use crate::fnv::FnvHashMap;
use std::sync::Mutex;

/// Stripe count. A power of two so selection is a mask; 16 stripes keep
/// the expected contention between any two workers at 1/16 while the
/// whole arena stays small enough to sit in cache.
pub const SHARDS: usize = 16;

/// A lock-striped `key → value` memo. Values are cloned out on hit;
/// entries are never evicted (inference runs are bounded and the tables
/// are keyed on canonical strings that repeat heavily).
pub struct ShardedMemo<V> {
    stripes: Vec<Mutex<FnvHashMap<String, V>>>,
}

impl<V: Clone> Default for ShardedMemo<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> ShardedMemo<V> {
    /// An empty memo with [`SHARDS`] stripes.
    pub fn new() -> Self {
        Self {
            stripes: (0..SHARDS)
                .map(|_| Mutex::new(FnvHashMap::default()))
                .collect(),
        }
    }

    /// Stripe index for `key` (FNV-64 of the key bytes, masked).
    fn stripe(&self, key: &str) -> &Mutex<FnvHashMap<String, V>> {
        let mut h = Fnv64::new();
        h.write_str(key);
        &self.stripes[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns a clone of the memoized value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<V> {
        self.stripe(key)
            .lock()
            .expect("memo stripe poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts `value` under `key` unless an entry already exists (the
    /// first finisher wins; racing workers computed identical values, so
    /// which one lands is unobservable).
    pub fn insert(&self, key: String, value: V) {
        self.stripe(&key)
            .lock()
            .expect("memo stripe poisoned")
            .entry(key)
            .or_insert(value);
    }

    /// `get` or compute-and-insert: runs `make` outside any lock (so a
    /// slow computation never blocks other stripes — or even other keys
    /// of the same stripe), then publishes the result.
    ///
    /// # Errors
    ///
    /// Propagates `make`'s error; errors are never cached.
    pub fn get_or_try_insert<E>(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let v = make()?;
        self.insert(key.to_string(), v.clone());
        Ok(v)
    }

    /// Total entries across all stripes (diagnostics only).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe poisoned").len())
            .sum()
    }

    /// True when no stripe holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_returns_what_miss_computed() {
        let memo: ShardedMemo<String> = ShardedMemo::new();
        let computed = AtomicUsize::new(0);
        let make = || -> Result<String, ()> {
            computed.fetch_add(1, Ordering::Relaxed);
            Ok("value".to_string())
        };
        assert_eq!(memo.get_or_try_insert("k", make).unwrap(), "value");
        assert_eq!(memo.get_or_try_insert("k", make).unwrap(), "value");
        assert_eq!(computed.load(Ordering::Relaxed), 1, "second call hits");
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: ShardedMemo<u32> = ShardedMemo::new();
        assert!(memo
            .get_or_try_insert("k", || Err::<u32, _>("boom"))
            .is_err());
        assert!(memo.is_empty(), "failed computations leave no entry");
        assert_eq!(memo.get_or_try_insert("k", || Ok::<_, ()>(7)).unwrap(), 7);
    }

    #[test]
    fn keys_spread_across_stripes_and_stay_distinct() {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        for i in 0..200 {
            memo.insert(format!("key-{i}"), i);
        }
        assert_eq!(memo.len(), 200);
        for i in 0..200 {
            assert_eq!(memo.get(&format!("key-{i}")), Some(i));
        }
        // First insert wins; a racing duplicate is ignored.
        memo.insert("key-3".to_string(), 999);
        assert_eq!(memo.get("key-3"), Some(3));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let memo = &memo;
                s.spawn(move || {
                    for i in 0..100 {
                        let v = memo
                            .get_or_try_insert(&format!("key-{i}"), || Ok::<_, ()>(i))
                            .unwrap();
                        assert_eq!(v, i, "thread {t} saw a foreign value");
                    }
                });
            }
        });
        assert_eq!(memo.len(), 100);
    }
}
