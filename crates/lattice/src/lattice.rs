//! The location lattice `⟨L_SET, ⊑⟩` of §3.2.
//!
//! A [`Lattice`] holds a finite set of named location types plus the
//! implicit ⊤ and ⊥, with an ordering relation generated from `lower <
//! higher` pairs. The structure is required to be acyclic; shared locations
//! (§4.1.8) are flagged. The reflexive ordering `⊑` ("may flow down to") and
//! the strict ordering `⊏` are both exposed, along with GLB/LUB.

use std::collections::HashMap;
use std::fmt;

/// Index of a location inside one [`Lattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub u32);

/// The distinguished top location ⊤.
pub const TOP: LocId = LocId(0);
/// The distinguished bottom location ⊥.
pub const BOTTOM: LocId = LocId(1);

/// Error building or mutating a lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// An ordering entry creates a cycle.
    Cycle {
        /// A location on the cycle.
        at: String,
    },
    /// A named location was not declared.
    Unknown {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::Cycle { at } => write!(f, "ordering cycle through location `{at}`"),
            LatticeError::Unknown { name } => write!(f, "unknown location `{name}`"),
        }
    }
}

impl std::error::Error for LatticeError {}

/// A finite location lattice with ⊤/⊥ and precomputed reachability.
#[derive(Debug, Clone, PartialEq)]
pub struct Lattice {
    names: Vec<String>,
    by_name: HashMap<String, LocId>,
    /// `higher[x]` = direct successors of `x` in the "is lower than"
    /// relation, i.e. locations immediately above `x`.
    above: Vec<Vec<LocId>>,
    /// Inverse adjacency: locations immediately below.
    below: Vec<Vec<LocId>>,
    /// Transitive reachability: `reach_up[x]` contains `y` iff `x ⊑ y`.
    reach_up: Vec<Vec<u64>>,
    /// The transpose: `reach_down[x]` contains `y` iff `y ⊑ x`. Having
    /// both directions lets GLB/LUB intersect candidate sets word-wise
    /// instead of scanning all pairs.
    reach_down: Vec<Vec<u64>>,
    shared: Vec<bool>,
}

/// The single bitset membership test every ⊑ query routes through.
#[inline]
fn bit(row: &[u64], idx: usize) -> bool {
    row[idx / 64] & (1 << (idx % 64)) != 0
}

/// Sets one bit in a closure row.
#[inline]
fn set_bit(row: &mut [u64], idx: usize) {
    row[idx / 64] |= 1 << (idx % 64);
}

impl Lattice {
    /// Creates a lattice containing only ⊤ and ⊥.
    pub fn new() -> Self {
        let mut l = Lattice {
            names: vec!["_TOP".into(), "_BOTTOM".into()],
            by_name: HashMap::new(),
            above: vec![Vec::new(), Vec::new()],
            below: vec![Vec::new(), Vec::new()],
            reach_up: Vec::new(),
            reach_down: Vec::new(),
            shared: vec![false, false],
        };
        l.by_name.insert("_TOP".into(), TOP);
        l.by_name.insert("_BOTTOM".into(), BOTTOM);
        l.recompute();
        l
    }

    /// Builds a lattice from `lower < higher` pairs, shared names, and
    /// isolated names.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::Cycle`] if the pairs are cyclic.
    pub fn from_decl(
        orders: &[(String, String)],
        shared: &[String],
        isolated: &[String],
    ) -> Result<Self, LatticeError> {
        let mut l = Lattice::new();
        for (lo, hi) in orders {
            let lo = l.ensure(lo);
            let hi = l.ensure(hi);
            l.add_order(lo, hi)?;
        }
        for s in shared {
            let id = l.ensure(s);
            l.shared[id.0 as usize] = true;
        }
        for s in isolated {
            l.ensure(s);
        }
        l.recompute();
        Ok(l)
    }

    /// Number of locations including ⊤ and ⊥.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice has only ⊤ and ⊥.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 2
    }

    /// Number of developer-visible locations (excluding ⊤ and ⊥).
    pub fn named_len(&self) -> usize {
        self.names.len() - 2
    }

    /// Iterates over all location ids.
    pub fn ids(&self) -> impl Iterator<Item = LocId> {
        (0..self.names.len() as u32).map(LocId)
    }

    /// The name of a location.
    pub fn name(&self, id: LocId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up a location by name.
    pub fn get(&self, name: &str) -> Option<LocId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a location by name, erroring when missing.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::Unknown`] when the name is not declared.
    pub fn require(&self, name: &str) -> Result<LocId, LatticeError> {
        self.get(name).ok_or_else(|| LatticeError::Unknown {
            name: name.to_string(),
        })
    }

    /// Interns a location name, adding it if new. Call
    /// [`Lattice::recompute`] after a batch of mutations.
    pub fn ensure(&mut self, name: &str) -> LocId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = LocId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.above.push(Vec::new());
        self.below.push(Vec::new());
        self.shared.push(false);
        id
    }

    /// Adds an ordering entry `lo ⊏ hi`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::Cycle`] if this would order a location below
    /// itself.
    pub fn add_order(&mut self, lo: LocId, hi: LocId) -> Result<(), LatticeError> {
        if lo == hi {
            return Err(LatticeError::Cycle {
                at: self.name(lo).to_string(),
            });
        }
        // Reject cycles: hi must not already be (transitively) below lo.
        if self.reaches_up(hi, lo) {
            return Err(LatticeError::Cycle {
                at: self.name(lo).to_string(),
            });
        }
        if !self.above[lo.0 as usize].contains(&hi) {
            self.above[lo.0 as usize].push(hi);
            self.below[hi.0 as usize].push(lo);
        }
        self.recompute();
        Ok(())
    }

    /// Removes an explicit ordering edge `lo ⊏ hi` (used when splicing
    /// chain nodes along an existing edge, §5.3.5). The overall ordering
    /// may still hold transitively through other edges.
    pub fn remove_order(&mut self, lo: LocId, hi: LocId) {
        self.above[lo.0 as usize].retain(|&x| x != hi);
        self.below[hi.0 as usize].retain(|&x| x != lo);
        self.recompute();
    }

    /// Transitive reduction: removes every explicit edge whose ordering is
    /// already implied by another route, leaving the Hasse diagram. The
    /// ordering relation is unchanged.
    pub fn reduce(&mut self) {
        let edges: Vec<(LocId, LocId)> = self
            .ids()
            .flat_map(|lo| {
                self.above[lo.0 as usize]
                    .iter()
                    .map(move |&hi| (lo, hi))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (lo, hi) in edges {
            self.above[lo.0 as usize].retain(|&x| x != hi);
            self.below[hi.0 as usize].retain(|&x| x != lo);
            self.recompute();
            if !self.leq(lo, hi) {
                self.above[lo.0 as usize].push(hi);
                self.below[hi.0 as usize].push(lo);
                self.recompute();
            }
        }
    }

    /// Marks a location as shared (§4.1.8).
    pub fn set_shared(&mut self, id: LocId, shared: bool) {
        self.shared[id.0 as usize] = shared;
    }

    /// Whether a location is shared.
    pub fn is_shared(&self, id: LocId) -> bool {
        self.shared[id.0 as usize]
    }

    /// Recomputes the reachability closure. Must be called after direct
    /// mutation batches; `add_order`/`from_decl` call it automatically.
    pub fn recompute(&mut self) {
        let n = self.names.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        // Seed reflexivity and every element ⊑ ⊤, ⊥ ⊑ every element.
        for (i, row) in reach.iter_mut().enumerate() {
            set_bit(row, i);
            set_bit(row, TOP.0 as usize);
        }
        for i in 0..n {
            set_bit(&mut reach[BOTTOM.0 as usize], i);
        }
        // Propagate along `above` edges to a fixed point (graphs are small;
        // simple iteration is fine and easy to audit).
        let mut changed = true;
        while changed {
            changed = false;
            for x in 0..n {
                for &hi in &self.above[x] {
                    let (lo_row, hi_row) = if x < hi.0 as usize {
                        let (a, b) = reach.split_at_mut(hi.0 as usize);
                        (&mut a[x], &b[0])
                    } else {
                        let (a, b) = reach.split_at_mut(x);
                        (&mut b[0], &a[hi.0 as usize])
                    };
                    for w in 0..words {
                        let nv = lo_row[w] | hi_row[w];
                        if nv != lo_row[w] {
                            lo_row[w] = nv;
                            changed = true;
                        }
                    }
                }
            }
        }
        // Transpose into the downward closure so lower-bound queries are
        // also single word-indexed reads.
        let mut down = vec![vec![0u64; words]; n];
        for (x, row) in reach.iter().enumerate() {
            for (y, drow) in down.iter_mut().enumerate() {
                if bit(row, y) {
                    set_bit(drow, x);
                }
            }
        }
        self.reach_up = reach;
        self.reach_down = down;
    }

    /// Whether the closure matches the current node set (mutation batches
    /// may leave it stale until the next [`Lattice::recompute`]).
    fn closure_fresh(&self) -> bool {
        self.reach_up.len() == self.names.len()
    }

    fn reaches_up(&self, from: LocId, to: LocId) -> bool {
        if !self.closure_fresh() {
            // Closure stale (nodes added since last recompute): walk
            // directly.
            let mut stack = vec![from];
            let mut seen = vec![false; self.names.len()];
            while let Some(x) = stack.pop() {
                if x == to {
                    return true;
                }
                if std::mem::replace(&mut seen[x.0 as usize], true) {
                    continue;
                }
                stack.extend(self.above[x.0 as usize].iter().copied());
            }
            return false;
        }
        bit(&self.reach_up[from.0 as usize], to.0 as usize)
    }

    /// Reflexive ordering: `a ⊑ b` — values may flow from `b` down to `a`.
    pub fn leq(&self, a: LocId, b: LocId) -> bool {
        if a == BOTTOM || b == TOP {
            return true;
        }
        self.reaches_up(a, b)
    }

    /// Strict ordering `a ⊏ b`.
    pub fn lt(&self, a: LocId, b: LocId) -> bool {
        a != b && self.leq(a, b)
    }

    /// Compares two locations, returning `None` when incomparable.
    pub fn compare(&self, a: LocId, b: LocId) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering::*;
        if a == b {
            Some(Equal)
        } else if self.leq(a, b) {
            Some(Less)
        } else if self.leq(b, a) {
            Some(Greater)
        } else {
            None
        }
    }

    /// Greatest lower bound (the `⊓` meet operator).
    ///
    /// If the underlying partial order does not define a unique GLB for the
    /// pair (the manual annotations need not form a complete lattice) this
    /// conservatively returns ⊥, which is always a lower bound.
    pub fn glb(&self, a: LocId, b: LocId) -> LocId {
        if self.leq(a, b) {
            return a;
        }
        if self.leq(b, a) {
            return b;
        }
        // Common lower bounds: intersect the downward closures word-wise,
        // then keep the unique maximal one if it exists. A candidate `x`
        // is maximal when nothing else in the candidate set sits above it,
        // i.e. its upward closure meets the candidates only at `x` itself.
        if self.closure_fresh() {
            let da = &self.reach_down[a.0 as usize];
            let db = &self.reach_down[b.0 as usize];
            let cand: Vec<u64> = da.iter().zip(db).map(|(x, y)| x & y).collect();
            let mut maximal = None;
            for x in self.ids() {
                let xi = x.0 as usize;
                if !bit(&cand, xi) {
                    continue;
                }
                let above_in_cand =
                    self.reach_up[xi]
                        .iter()
                        .zip(&cand)
                        .enumerate()
                        .any(|(w, (up, c))| {
                            let mut hits = up & c;
                            if xi / 64 == w {
                                hits &= !(1 << (xi % 64)); // ignore x itself
                            }
                            hits != 0
                        });
                if !above_in_cand {
                    if maximal.is_some() {
                        return BOTTOM; // two maximal lower bounds: no unique GLB
                    }
                    maximal = Some(x);
                }
            }
            return maximal.unwrap_or(BOTTOM);
        }
        // Stale closure: fall back to the quadratic scan.
        let lower: Vec<LocId> = self
            .ids()
            .filter(|&x| self.leq(x, a) && self.leq(x, b))
            .collect();
        let maximal: Vec<LocId> = lower
            .iter()
            .copied()
            .filter(|&x| !lower.iter().any(|&y| y != x && self.lt(x, y)))
            .collect();
        if maximal.len() == 1 {
            maximal[0]
        } else {
            BOTTOM
        }
    }

    /// Least upper bound (join).
    ///
    /// Falls back to ⊤ when no unique LUB exists.
    pub fn lub(&self, a: LocId, b: LocId) -> LocId {
        if self.leq(a, b) {
            return b;
        }
        if self.leq(b, a) {
            return a;
        }
        // Mirror of `glb`: intersect upward closures, pick the unique
        // minimal element (nothing in the candidate set below it).
        if self.closure_fresh() {
            let ua = &self.reach_up[a.0 as usize];
            let ub = &self.reach_up[b.0 as usize];
            let cand: Vec<u64> = ua.iter().zip(ub).map(|(x, y)| x & y).collect();
            let mut minimal = None;
            for x in self.ids() {
                let xi = x.0 as usize;
                if !bit(&cand, xi) {
                    continue;
                }
                let below_in_cand =
                    self.reach_down[xi]
                        .iter()
                        .zip(&cand)
                        .enumerate()
                        .any(|(w, (down, c))| {
                            let mut hits = down & c;
                            if xi / 64 == w {
                                hits &= !(1 << (xi % 64));
                            }
                            hits != 0
                        });
                if !below_in_cand {
                    if minimal.is_some() {
                        return TOP;
                    }
                    minimal = Some(x);
                }
            }
            return minimal.unwrap_or(TOP);
        }
        let upper: Vec<LocId> = self
            .ids()
            .filter(|&x| self.leq(a, x) && self.leq(b, x))
            .collect();
        let minimal: Vec<LocId> = upper
            .iter()
            .copied()
            .filter(|&x| !upper.iter().any(|&y| y != x && self.lt(y, x)))
            .collect();
        if minimal.len() == 1 {
            minimal[0]
        } else {
            TOP
        }
    }

    /// Locations immediately above `id`.
    pub fn directly_above(&self, id: LocId) -> &[LocId] {
        &self.above[id.0 as usize]
    }

    /// Locations immediately below `id`.
    pub fn directly_below(&self, id: LocId) -> &[LocId] {
        &self.below[id.0 as usize]
    }

    /// Introduces a fresh *delta* location below `base` (§4.1.7): the new
    /// location is lower than `base` and higher than everything strictly
    /// below `base`.
    pub fn add_delta_below(&mut self, base: LocId) -> LocId {
        let fresh_name = {
            let mut i = 0usize;
            loop {
                let candidate = format!("{}_D{}", self.name(base), i);
                if self.get(&candidate).is_none() {
                    break candidate;
                }
                i += 1;
            }
        };
        let d = self.ensure(&fresh_name);
        let below_base: Vec<LocId> = self
            .ids()
            .filter(|&x| x != d && x != BOTTOM && self.lt(x, base))
            .collect();
        self.above[d.0 as usize].push(base);
        self.below[base.0 as usize].push(d);
        for lo in below_base {
            self.above[lo.0 as usize].push(d);
            self.below[d.0 as usize].push(lo);
        }
        self.recompute();
        d
    }

    /// The maximum distance (in edges) from ⊤ to any location — the lattice
    /// height, which bounds the self-stabilization period (Thm 4.5.3).
    pub fn height(&self) -> usize {
        // Longest explicit chain of named nodes (in node count), plus the
        // implicit ⊤→chain and chain→⊥ hops.
        let mut memo: HashMap<LocId, usize> = HashMap::new();
        fn depth(l: &Lattice, x: LocId, memo: &mut HashMap<LocId, usize>) -> usize {
            if let Some(&d) = memo.get(&x) {
                return d;
            }
            let d = 1 + l
                .directly_below(x)
                .iter()
                .filter(|&&y| y != BOTTOM)
                .map(|&y| depth(l, y, memo))
                .max()
                .unwrap_or(0);
            memo.insert(x, d);
            d
        }
        let longest = self
            .ids()
            .filter(|&x| x != TOP && x != BOTTOM)
            .map(|x| depth(self, x, &mut memo))
            .max()
            .unwrap_or(0);
        longest + 1
    }

    /// Every location `y` with `y ⊑ id`, in id order — the downward
    /// closure read straight out of the `reach_down` bitsets. Used by the
    /// property suite to cross-check the bitset closure against `leq`.
    pub fn downset(&self, id: LocId) -> Vec<LocId> {
        if !self.closure_fresh() {
            return self.ids().filter(|&y| self.leq(y, id)).collect();
        }
        let row = &self.reach_down[id.0 as usize];
        self.ids().filter(|y| bit(row, y.0 as usize)).collect()
    }

    /// A stable 64-bit content fingerprint of the lattice: names in id
    /// order, explicit ordering edges, and shared flags. Two lattices
    /// built from the same declarations (in the same order) fingerprint
    /// identically across processes; any ordering/shared/name change
    /// perturbs the digest.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv64::new();
        h.write_usize(self.names.len());
        for (i, name) in self.names.iter().enumerate() {
            h.write_str(name);
            h.write_u64(self.shared[i] as u64);
            h.write_usize(self.above[i].len());
            for hi in &self.above[i] {
                h.write_u64(hi.0 as u64);
            }
        }
        h.finish()
    }

    /// All declared names in insertion order (excluding ⊤/⊥).
    pub fn named(&self) -> impl Iterator<Item = (LocId, &str)> {
        self.names
            .iter()
            .enumerate()
            .skip(2)
            .map(|(i, n)| (LocId(i as u32), n.as_str()))
    }
}

impl Default for Lattice {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.ids() {
            for &hi in self.directly_above(id) {
                if hi == TOP {
                    continue;
                }
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                write!(f, "{}<{}", self.name(id), self.name(hi))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Lattice {
        // DIR < TMP < BIN
        Lattice::from_decl(
            &[("DIR".into(), "TMP".into()), ("TMP".into(), "BIN".into())],
            &[],
            &[],
        )
        .expect("acyclic")
    }

    #[test]
    fn ordering_is_transitive() {
        let l = chain();
        let dir = l.get("DIR").expect("DIR");
        let bin = l.get("BIN").expect("BIN");
        assert!(l.lt(dir, bin));
        assert!(!l.lt(bin, dir));
        assert!(l.leq(dir, dir));
    }

    #[test]
    fn top_and_bottom_bound_everything() {
        let l = chain();
        for id in l.ids() {
            assert!(l.leq(id, TOP));
            assert!(l.leq(BOTTOM, id));
        }
    }

    #[test]
    fn cycles_are_rejected() {
        let err = Lattice::from_decl(
            &[("A".into(), "B".into()), ("B".into(), "A".into())],
            &[],
            &[],
        );
        assert!(matches!(err, Err(LatticeError::Cycle { .. })));
    }

    #[test]
    fn glb_of_comparable_is_lower() {
        let l = chain();
        let dir = l.get("DIR").expect("d");
        let tmp = l.get("TMP").expect("t");
        assert_eq!(l.glb(dir, tmp), dir);
        assert_eq!(l.lub(dir, tmp), tmp);
    }

    #[test]
    fn glb_of_incomparable_without_meet_is_bottom() {
        // A and B unrelated.
        let l = Lattice::from_decl(&[], &[], &["A".into(), "B".into()]).expect("ok");
        let a = l.get("A").expect("a");
        let b = l.get("B").expect("b");
        assert_eq!(l.glb(a, b), BOTTOM);
        assert_eq!(l.lub(a, b), TOP);
    }

    #[test]
    fn glb_uses_unique_maximal_lower_bound() {
        // diamond: M < A, M < B  (A and B incomparable, M below both)
        let l = Lattice::from_decl(
            &[("M".into(), "A".into()), ("M".into(), "B".into())],
            &[],
            &[],
        )
        .expect("ok");
        let a = l.get("A").expect("a");
        let b = l.get("B").expect("b");
        let m = l.get("M").expect("m");
        assert_eq!(l.glb(a, b), m);
    }

    #[test]
    fn shared_flag_round_trips() {
        let l = Lattice::from_decl(&[("A".into(), "B".into())], &["IDX".into()], &[]).expect("ok");
        assert!(l.is_shared(l.get("IDX").expect("idx")));
        assert!(!l.is_shared(l.get("A").expect("a")));
    }

    #[test]
    fn delta_sits_between() {
        let mut l = chain();
        let tmp = l.get("TMP").expect("t");
        let dir = l.get("DIR").expect("d");
        let d = l.add_delta_below(tmp);
        assert!(l.lt(d, tmp));
        assert!(l.lt(dir, d));
        // And a second delta goes below the first.
        let d2 = l.add_delta_below(d);
        assert!(l.lt(d2, d));
        assert!(l.lt(dir, d2));
    }

    #[test]
    fn height_counts_longest_chain() {
        let l = chain();
        // TOP > BIN > TMP > DIR > BOTTOM
        assert_eq!(l.height(), 4);
    }
}
