//! Stable 64-bit content fingerprints.
//!
//! The incremental checking layer keys cached per-method analysis results
//! on content hashes, so the hash must be **stable**: identical input
//! bytes must fingerprint identically across processes, runs, and
//! platforms. `std::collections::hash_map::DefaultHasher` is randomly
//! seeded per process, so this module provides a plain FNV-1a 64-bit
//! hasher instead — deterministic, allocation-free, and fast enough for
//! whole-AST hashing.
//!
//! [`HashWriter`] adapts the hasher to [`std::fmt::Write`], so arbitrary
//! `Debug`/`Display` renderings can be folded into a fingerprint without
//! materializing the intermediate string.

use std::fmt;

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const PRIME: u64 = 0x100000001b3;

/// A deterministic FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` into the state.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a string (length-prefixed, so `("ab","c")` and `("a","bc")`
    /// hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Mixes two digests into one (order-sensitive).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

/// Hashes anything `Debug` through a streaming writer — no intermediate
/// `String` is built. Derived `Debug` output is deterministic for the
/// AST/annotation types the checker fingerprints (no `HashMap`s inside).
pub fn hash_debug<T: fmt::Debug + ?Sized>(value: &T) -> u64 {
    let mut w = HashWriter::new();
    // Writing into a hasher cannot fail.
    let _ = fmt::write(&mut w, format_args!("{value:?}"));
    w.finish()
}

/// A [`fmt::Write`] sink that folds everything written into an [`Fnv64`].
#[derive(Debug, Default)]
pub struct HashWriter(Fnv64);

impl HashWriter {
    /// A fresh sink.
    pub fn new() -> Self {
        HashWriter(Fnv64::new())
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

impl fmt::Write for HashWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        let mut h = Fnv64::new();
        h.write_str("hello");
        let a = h.finish();
        let mut h2 = Fnv64::new();
        h2.write_str("hello");
        assert_eq!(a, h2.finish());
        let mut h3 = Fnv64::new();
        h3.write_str("hellp");
        assert_ne!(a, h3.finish());
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_debug_matches_string_hash() {
        let v = vec![("x", 1u32), ("y", 2u32)];
        let direct = hash_debug(&v);
        let mut h = Fnv64::new();
        h.write(format!("{v:?}").as_bytes());
        assert_eq!(direct, h.finish());
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, 2), mix(2, 1));
    }
}
