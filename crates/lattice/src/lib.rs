//! # sjava-lattice
//!
//! Location lattices and composite locations for Self-Stabilizing Java
//! (PLDI 2012): the lattice machinery of chapter 3, the hierarchy graphs of
//! chapter 5, and the Dedekind–MacNeille completion used to turn inferred
//! partial orders into lattices.
//!
//! ```
//! use sjava_lattice::{Lattice, CompositeLoc, SimpleCtx, compare};
//! use std::cmp::Ordering;
//!
//! let method = Lattice::from_decl(
//!     &[("STR".into(), "WDOBJ".into()), ("WDOBJ".into(), "IN".into())],
//!     &[], &[],
//! ).expect("acyclic");
//! let fields: Vec<(String, Lattice)> = Vec::new();
//! let ctx = SimpleCtx { method: &method, fields: &fields };
//! let lo = CompositeLoc::method("STR");
//! let hi = CompositeLoc::method("IN");
//! assert_eq!(compare(&ctx, &lo, &hi), Some(Ordering::Less));
//! ```

#![warn(missing_docs)]

pub mod completion;
pub mod composite;
pub mod dot;
pub mod fingerprint;
pub mod fnv;
pub mod hierarchy;
pub mod intern;
pub mod lattice;
pub mod paths;
pub mod shard;

pub use completion::{
    canonical_key, dedekind_macneille, dedekind_macneille_dense, Completion, CompletionCache,
};
pub use composite::{
    compare, from_loc_id, glb, is_shared, may_flow, CompositeLoc, Elem, LatticeCtx, SimpleCtx,
    Space,
};
pub use dot::lattice_to_dot;
pub use fingerprint::{hash_debug, mix, Fnv64, HashWriter};
pub use fnv::{FnvBuildHasher, FnvHashMap};
pub use hierarchy::HierarchyGraph;
pub use intern::{LocInterner, LocRef};
pub use lattice::{Lattice, LatticeError, LocId, BOTTOM, TOP};
pub use paths::{count_paths, is_complex, COMPLEX_THRESHOLD};
pub use shard::ShardedMemo;
