//! Property-based tests for the lattice machinery: partial-order laws,
//! GLB/LUB bound properties, Dedekind–MacNeille completion invariants, and
//! composite-location ordering laws.

use proptest::prelude::*;
use sjava_lattice::{
    compare, count_paths, dedekind_macneille, glb, may_flow, CompositeLoc, Elem, HierarchyGraph,
    Lattice, LocInterner, SimpleCtx, BOTTOM, TOP,
};
use std::cmp::Ordering;

/// A random acyclic order over up to `n` named nodes: only edges from
/// lower-indexed to higher-indexed names, so cycles are impossible.
fn arb_order(n: usize) -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((0..n, 0..n), 0..n * 2).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(a, b)| a < b)
            .map(|(a, b)| (format!("N{a}"), format!("N{b}")))
            .collect()
    })
}

fn lattice_from(orders: &[(String, String)], n: usize) -> Lattice {
    let isolated: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
    Lattice::from_decl(orders, &[], &isolated).expect("index-ordered pairs are acyclic")
}

proptest! {
    #[test]
    fn leq_is_a_partial_order(orders in arb_order(7)) {
        let l = lattice_from(&orders, 7);
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            // reflexive
            prop_assert!(l.leq(a, a));
            for &b in &ids {
                // antisymmetric
                if l.leq(a, b) && l.leq(b, a) {
                    prop_assert_eq!(a, b);
                }
                for &c in &ids {
                    // transitive
                    if l.leq(a, b) && l.leq(b, c) {
                        prop_assert!(l.leq(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn glb_is_a_commutative_lower_bound(orders in arb_order(7)) {
        let l = lattice_from(&orders, 7);
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            for &b in &ids {
                let m = l.glb(a, b);
                prop_assert!(l.leq(m, a));
                prop_assert!(l.leq(m, b));
                prop_assert_eq!(m, l.glb(b, a));
                // idempotent on equal args
                prop_assert_eq!(l.glb(a, a), a);
            }
        }
    }

    #[test]
    fn lub_is_a_commutative_upper_bound(orders in arb_order(6)) {
        let l = lattice_from(&orders, 6);
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            for &b in &ids {
                let j = l.lub(a, b);
                prop_assert!(l.leq(a, j));
                prop_assert!(l.leq(b, j));
                prop_assert_eq!(j, l.lub(b, a));
            }
        }
    }

    #[test]
    fn top_and_bottom_bound_everything(orders in arb_order(8)) {
        let l = lattice_from(&orders, 8);
        for id in l.ids() {
            prop_assert!(l.leq(id, TOP));
            prop_assert!(l.leq(BOTTOM, id));
        }
    }

    #[test]
    fn completion_preserves_the_order_and_defines_meets(orders in arb_order(6)) {
        let mut h = HierarchyGraph::new();
        for i in 0..6 {
            h.add_node(format!("N{i}"));
        }
        // Hierarchy edges point from higher to lower: reuse the pairs as
        // (higher=second, lower=first) to keep acyclicity.
        for (lo, hi) in &orders {
            h.add_edge(hi.clone(), lo.clone());
        }
        let c = dedekind_macneille(&h).expect("acyclic by construction");
        let l = &c.lattice;
        // Original order embedded.
        for (lo, hi) in &orders {
            let lo = l.get(lo).expect("kept");
            let hi = l.get(hi).expect("kept");
            prop_assert!(l.leq(lo, hi), "completion must preserve the order");
        }
        // Every pair has a well-defined meet: glb is ≥ every common lower
        // bound (the defining property of a lattice meet).
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            for &b in &ids {
                let m = l.glb(a, b);
                for &w in &ids {
                    if l.leq(w, a) && l.leq(w, b) {
                        prop_assert!(l.leq(w, m),
                            "{} not ≤ glb({},{})={}", l.name(w), l.name(a), l.name(b), l.name(m));
                    }
                }
            }
        }
    }

    #[test]
    fn dense_completion_matches_legacy(orders in arb_order(7), shared in prop::collection::vec(0usize..7, 0..4)) {
        // The interned/FNV-keyed completion must be byte-identical to the
        // string-based one on arbitrary acyclic hierarchies, including
        // shared flags and synthesized LOCn naming.
        let mut h = HierarchyGraph::new();
        for i in 0..7 {
            h.add_node(format!("N{i}"));
        }
        for (lo, hi) in &orders {
            h.add_edge(hi.clone(), lo.clone());
        }
        for s in &shared {
            h.set_shared(&format!("N{s}"));
        }
        let legacy = dedekind_macneille(&h).expect("acyclic by construction");
        let dense = sjava_lattice::dedekind_macneille_dense(&h).expect("acyclic by construction");
        prop_assert_eq!(legacy.lattice.fingerprint(), dense.lattice.fingerprint());
        prop_assert_eq!(&legacy.synthesized, &dense.synthesized);
        // And the memoized path returns the same completion on repeat.
        let cache = sjava_lattice::CompletionCache::new();
        let c1 = cache.complete(&h).expect("first");
        let c2 = cache.complete(&h).expect("memoized");
        prop_assert_eq!(c1.lattice.fingerprint(), legacy.lattice.fingerprint());
        prop_assert_eq!(c2.lattice.fingerprint(), legacy.lattice.fingerprint());
    }

    #[test]
    fn glb_and_lub_are_associative_on_completions(orders in arb_order(5)) {
        // Associativity is NOT a law of the raw declared orders (they are
        // mere posets where glb/lub pick a canonical bound); it IS a law
        // of a true lattice, which the Dedekind–MacNeille completion
        // guarantees. The checker always meets/joins inside a completion.
        let mut h = HierarchyGraph::new();
        for i in 0..5 {
            h.add_node(format!("N{i}"));
        }
        for (lo, hi) in &orders {
            h.add_edge(hi.clone(), lo.clone());
        }
        let c = dedekind_macneille(&h).expect("acyclic by construction");
        let l = &c.lattice;
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            for &b in &ids {
                for &x in &ids {
                    prop_assert_eq!(
                        l.glb(l.glb(a, b), x),
                        l.glb(a, l.glb(b, x)),
                        "glb not associative at ({}, {}, {})",
                        l.name(a), l.name(b), l.name(x)
                    );
                    prop_assert_eq!(
                        l.lub(l.lub(a, b), x),
                        l.lub(a, l.lub(b, x)),
                        "lub not associative at ({}, {}, {})",
                        l.name(a), l.name(b), l.name(x)
                    );
                }
            }
        }
    }

    #[test]
    fn downset_agrees_with_leq(orders in arb_order(8)) {
        // `downset` reads the reach_down bitsets directly; `leq` probes
        // one bit. The two views of the transitive closure must agree,
        // and the downset must be duplicate-free.
        let l = lattice_from(&orders, 8);
        let ids: Vec<_> = l.ids().collect();
        for &a in &ids {
            let down = l.downset(a);
            let mut dedup = down.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), down.len(), "downset has duplicates");
            for &b in &ids {
                prop_assert_eq!(
                    down.contains(&b),
                    l.leq(b, a),
                    "downset({}) and leq disagree on {}",
                    l.name(a), l.name(b)
                );
            }
        }
    }

    #[test]
    fn reduce_preserves_the_ordering_relation(orders in arb_order(7)) {
        let l = lattice_from(&orders, 7);
        let mut r = l.clone();
        r.reduce();
        for a in l.ids() {
            for b in l.ids() {
                prop_assert_eq!(l.leq(a, b), r.leq(a, b));
            }
        }
    }

    #[test]
    fn path_count_is_positive_and_reduction_never_increases_it(orders in arb_order(7)) {
        let l = lattice_from(&orders, 7);
        let before = count_paths(&l);
        prop_assert!(before >= 1);
        let mut r = l.clone();
        r.reduce();
        prop_assert!(count_paths(&r) <= before);
    }

    #[test]
    fn delta_sits_strictly_between(orders in arb_order(6), pick in 0usize..6) {
        let mut l = lattice_from(&orders, 6);
        let base = l.get(&format!("N{pick}")).expect("exists");
        let below: Vec<_> = l.ids().filter(|&x| x != BOTTOM && l.lt(x, base)).collect();
        let d = l.add_delta_below(base);
        prop_assert!(l.lt(d, base));
        for x in below {
            prop_assert!(l.lt(x, d), "former strict-lower stays below the delta");
        }
    }
}

/// Composite locations over a fixed two-space setting.
fn arb_composite() -> impl Strategy<Value = CompositeLoc> {
    let elem_m = prop::sample::select(vec!["LO", "MID", "HI"]);
    let elem_f = prop::sample::select(vec!["FA", "FB", "FC"]);
    (elem_m, prop::option::of(elem_f), 0usize..3).prop_map(|(m, f, delta)| {
        let mut elems = vec![Elem::method(m)];
        if let Some(f) = f {
            elems.push(Elem::field("C", f));
        }
        let mut l = CompositeLoc::path(elems);
        for _ in 0..delta {
            l = l.delta();
        }
        l
    })
}

fn fixture() -> (Lattice, Vec<(String, Lattice)>) {
    let method = Lattice::from_decl(
        &[("LO".into(), "MID".into()), ("MID".into(), "HI".into())],
        &[],
        &[],
    )
    .expect("ok");
    let field = Lattice::from_decl(
        &[("FA".into(), "FB".into()), ("FB".into(), "FC".into())],
        &[],
        &[],
    )
    .expect("ok");
    (method, vec![("C".to_string(), field)])
}

proptest! {
    #[test]
    fn composite_compare_is_antisymmetric_and_transitive(
        a in arb_composite(), b in arb_composite(), c in arb_composite()
    ) {
        let (m, f) = fixture();
        let ctx = SimpleCtx { method: &m, fields: &f };
        // antisymmetry
        if compare(&ctx, &a, &b) == Some(Ordering::Less) {
            prop_assert_eq!(compare(&ctx, &b, &a), Some(Ordering::Greater));
        }
        if compare(&ctx, &a, &b) == Some(Ordering::Equal) {
            prop_assert_eq!(compare(&ctx, &b, &a), Some(Ordering::Equal));
        }
        // transitivity of ⊑
        let le = |x: &CompositeLoc, y: &CompositeLoc| {
            matches!(compare(&ctx, x, y), Some(Ordering::Less) | Some(Ordering::Equal))
        };
        if le(&a, &b) && le(&b, &c) {
            prop_assert!(le(&a, &c), "a={a} b={b} c={c}");
        }
    }

    #[test]
    fn composite_glb_is_a_commutative_lower_bound(
        a in arb_composite(), b in arb_composite()
    ) {
        let (m, f) = fixture();
        let ctx = SimpleCtx { method: &m, fields: &f };
        let g1 = glb(&ctx, &a, &b);
        let g2 = glb(&ctx, &b, &a);
        prop_assert_eq!(&g1, &g2, "a={} b={}", a, b);
        prop_assert!(may_flow(&ctx, &a, &g1), "glb({a},{b})={g1} must be ≤ a");
        prop_assert!(may_flow(&ctx, &b, &g1), "glb({a},{b})={g1} must be ≤ b");
    }

    #[test]
    fn top_flows_everywhere_and_bottom_receives(a in arb_composite()) {
        let (m, f) = fixture();
        let ctx = SimpleCtx { method: &m, fields: &f };
        prop_assert!(may_flow(&ctx, &CompositeLoc::Top, &a));
        prop_assert!(may_flow(&ctx, &a, &CompositeLoc::Bottom));
    }

    #[test]
    fn interner_ids_are_stable_and_caches_match_raw_walks(
        locs in prop::collection::vec(arb_composite(), 1..12)
    ) {
        let (m, f) = fixture();
        let ctx = SimpleCtx { method: &m, fields: &f };

        // Interning is idempotent and resolve round-trips, whatever the
        // insertion order.
        let forward = LocInterner::new();
        let mut reversed_input = locs.clone();
        reversed_input.reverse();
        let reversed = LocInterner::new();
        for l in &reversed_input {
            reversed.intern(l);
        }
        for l in &locs {
            let id = forward.intern(l);
            prop_assert_eq!(id, forward.intern(l), "re-interning changed the id");
            prop_assert_eq!(&forward.resolve(id), l, "resolve must round-trip");
            let rid = reversed.intern(l);
            prop_assert_eq!(&reversed.resolve(rid), l, "resolve must round-trip");
        }
        // Both orders intern the same distinct set.
        prop_assert_eq!(forward.len(), reversed.len());

        // Memoized compare/glb answers are insertion-order independent
        // and identical to the uncached walks — twice, so the second
        // round is served from the caches.
        for _ in 0..2 {
            for a in &locs {
                for b in &locs {
                    let raw = compare(&ctx, a, b);
                    prop_assert_eq!(forward.compare(&ctx, a, b), raw);
                    prop_assert_eq!(reversed.compare(&ctx, a, b), raw);
                    let meet = glb(&ctx, a, b);
                    prop_assert_eq!(&forward.glb(&ctx, a, b), &meet, "a={} b={}", a, b);
                    prop_assert_eq!(&reversed.glb(&ctx, a, b), &meet, "a={} b={}", a, b);
                }
            }
        }
    }
}
