//! Property tests for heap paths (Fig 4.5 operator laws) and eviction
//! analysis invariants on generated event loops.

use proptest::prelude::*;
use sjava_analysis::heappath::HeapPath;
use sjava_analysis::{callgraph, written};
use sjava_syntax::diag::Diagnostics;

fn arb_path() -> impl Strategy<Value = HeapPath> {
    prop::collection::vec(
        prop::sample::select(vec!["this", "a", "b", "f", "g", "h"]),
        1..5,
    )
    .prop_map(|v| HeapPath(v.into_iter().map(String::from).collect()))
}

proptest! {
    #[test]
    fn prefix_is_reflexive_and_monotone(p in arb_path(), f in "[a-z]{1,3}") {
        prop_assert!(p.has_prefix(&p));
        let q = p.append(&f);
        prop_assert!(q.has_prefix(&p));
        prop_assert!(!p.has_prefix(&q));
    }

    #[test]
    fn prefix_is_transitive(p in arb_path(), q in arb_path(), r in arb_path()) {
        if r.has_prefix(&q) && q.has_prefix(&p) {
            prop_assert!(r.has_prefix(&p));
        }
    }

    #[test]
    fn splice_drops_callee_root(caller in arb_path(), callee in arb_path()) {
        let s = caller.splice(&callee);
        prop_assert_eq!(s.len(), caller.len() + callee.len() - 1);
        prop_assert!(s.has_prefix(&caller));
    }

    #[test]
    fn same_root_is_an_equivalence_on_roots(a in arb_path(), b in arb_path()) {
        prop_assert_eq!(a.same_root(&b), a.root_name() == b.root_name());
    }
}

/// Generated event loops over `n` fields: fields `0..k` are overwritten
/// unconditionally every iteration, fields `k..n` only *conditionally* —
/// then a random subset is read. §4.2.1's conditions say a read is fine
/// when the location is loop-invariant (never written) or overwritten
/// every iteration; it is stale exactly when a conditionally-written
/// field is read.
fn arb_loop() -> impl Strategy<Value = (String, bool)> {
    (1usize..6, 0usize..6, prop::collection::vec(0usize..6, 0..6)).prop_map(
        |(n, k, reads)| {
            let n = n.max(1);
            let k = k.min(n);
            let mut body = String::from("int x = Device.read();\n");
            for i in 0..k {
                body.push_str(&format!("f{i} = Device.read();\n"));
            }
            for i in k..n {
                body.push_str(&format!("if (x > {i}) {{ f{i} = x; }}\n"));
            }
            let mut stale = false;
            let mut emit = String::from("0");
            for r in &reads {
                let r = r % n;
                emit.push_str(&format!(" + f{r}"));
                if r >= k {
                    stale = true;
                }
            }
            let fields: String = (0..n).map(|i| format!("int f{i}; ")).collect();
            let src = format!(
                "class G {{ {fields} void main() {{ SSJAVA: while (true) {{\n{body}Out.emit({emit});\n}} }} }}"
            );
            (src, stale)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn eviction_verdict_matches_construction((src, expect_stale) in arb_loop()) {
        let p = sjava_syntax::parse(&src).expect("generated source parses");
        let mut d = Diagnostics::new();
        let cg = callgraph::build(&p, &mut d).expect("cg");
        let result = written::analyze(&p, &cg, &mut d);
        prop_assert_eq!(
            !result.is_ok(),
            expect_stale,
            "verdict mismatch for:\n{}\nstale paths: {:?}",
            src,
            result.stale_paths
        );
    }
}
