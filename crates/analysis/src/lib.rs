//! # sjava-analysis
//!
//! Static analyses of Self-Stabilizing Java (PLDI 2012) that complement
//! the flow-down type system:
//!
//! - [`callgraph`]: methods reachable from the `SSJAVA:` event loop, with
//!   recursion prohibited (§4.3);
//! - [`written`]: the definitely-written (eviction) analysis over heap
//!   paths (§4.2) ensuring stale values cannot survive an iteration;
//! - [`termination`]: the loop-termination analysis (§4.3.1) with
//!   `MAXLOOP_n:` / `TERMINATE_x:` escape hatches (§4.3.2);
//! - [`jtype`]: plain Java-type resolution used by the other phases.
//!
//! ```
//! use sjava_syntax::parse;
//! use sjava_syntax::diag::Diagnostics;
//!
//! let program = parse(
//!     "class A { int v; void main() { SSJAVA: while (true) {
//!          v = Device.read(); Out.emit(v); } } }",
//! ).expect("parses");
//! let mut diags = Diagnostics::new();
//! let cg = sjava_analysis::callgraph::build(&program, &mut diags).expect("event loop found");
//! let eviction = sjava_analysis::written::analyze(&program, &cg, &mut diags);
//! assert!(eviction.is_ok());
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod dense;
pub mod heappath;
pub mod jtype;
pub mod lifetime;
pub mod lint;
pub mod shard;
pub mod termination;
pub mod written;

pub use callgraph::{build as build_callgraph, CallGraph, MethodRef};
pub use cfg::{BasicBlock, BlockId, Cfg, Instr};
pub use dataflow::{live_variables, liveness_per_instr, reaching_defs, Solution};
pub use dense::{BitSet, Interner, VarId, VarInterner};
pub use heappath::HeapPath;
pub use jtype::TypeEnv;
pub use lifetime::{analyze_lifetimes, AllocationSite, Escape};
pub use lint::lint_program;
pub use shard::{InterfaceSummary, ShardInput};
pub use written::{analyze as analyze_eviction, EvictionResult, MethodSummary};
