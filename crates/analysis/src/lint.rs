//! Lint pass built on the CFG/dataflow framework: dead stores and unused
//! locals. Purely advisory (warnings) — a dead store is often the symptom
//! of a value that *should* have flowed somewhere, which in a
//! self-stabilizing program usually means a missing output or a stale
//! location the eviction analysis will also complain about.

use crate::cfg::{Cfg, Instr};
use crate::dataflow::{expr_uses, instr_def, live_variables, liveness_per_instr};
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use std::collections::BTreeSet;

/// Lints every method of a program, reporting warnings into `diags`.
/// Returns the number of findings.
pub fn lint_program(program: &Program, diags: &mut Diagnostics) -> usize {
    let mut findings = 0;
    for class in &program.classes {
        if class.annots.trusted {
            continue;
        }
        for method in &class.methods {
            if method.annots.trusted {
                continue;
            }
            findings += lint_method(&class.name, method, diags);
        }
    }
    findings
}

fn lint_method(class: &str, method: &MethodDecl, diags: &mut Diagnostics) -> usize {
    let cfg = Cfg::build(&method.body);
    let sol = live_variables(&cfg);
    let mut findings = 0;

    // Genuine locals: parameters plus declared variables. An unqualified
    // assignment to a *field* is a heap store, never a dead store.
    let mut locals: BTreeSet<String> = method.params.iter().map(|p| p.name.clone()).collect();
    let mut declared_all: Vec<(String, sjava_syntax::span::Span)> = Vec::new();
    collect_decls(&method.body, &mut declared_all);
    locals.extend(declared_all.iter().map(|(n, _)| n.clone()));

    // Dead stores: a local assignment whose value is never read.
    for b in cfg.ids() {
        let after = liveness_per_instr(&cfg, &sol, b);
        for (idx, instr) in cfg.block(b).instrs.iter().enumerate() {
            let Some(def) = instr_def(instr) else {
                continue;
            };
            if !locals.contains(def) {
                continue;
            }
            // Initializing declarations with constant defaults are common
            // and harmless; only flag non-trivial computations.
            let trivial = match instr {
                Instr::Decl { init: Some(e), .. } => e.is_literal(),
                Instr::Assign { rhs, .. } => rhs.is_literal(),
                _ => true,
            };
            if !after[idx].contains(def) && !trivial && !has_calls(instr) {
                diags.push(Diag::dead_store(
                    format!(
                        "dead store: `{def}` in `{class}.{}` is assigned but never read afterwards",
                        method.name
                    ),
                    instr_span(instr),
                ));
                findings += 1;
            }
        }
    }

    // Unused locals: declared but never read anywhere.
    let mut read: BTreeSet<String> = BTreeSet::new();
    for b in cfg.ids() {
        for i in &cfg.block(b).instrs {
            collect_reads(i, &mut read);
        }
    }
    for (name, span) in declared_all {
        if !read.contains(&name) {
            diags.push(Diag::unused_local(
                format!("unused local `{name}` in `{class}.{}`", method.name),
                span,
            ));
            findings += 1;
        }
    }
    findings
}

fn has_calls(i: &Instr) -> bool {
    fn expr_has_call(e: &Expr) -> bool {
        match e {
            Expr::Call { .. } => true,
            Expr::Field { base, .. } | Expr::Length { base, .. } => expr_has_call(base),
            Expr::Index { base, index, .. } => expr_has_call(base) || expr_has_call(index),
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => expr_has_call(operand),
            Expr::Binary { lhs, rhs, .. } => expr_has_call(lhs) || expr_has_call(rhs),
            Expr::NewArray { len, .. } => expr_has_call(len),
            Expr::New { .. } => true,
            _ => false,
        }
    }
    match i {
        Instr::Decl { init: Some(e), .. } => expr_has_call(e),
        Instr::Assign { rhs, .. } => expr_has_call(rhs),
        _ => false,
    }
}

fn instr_span(i: &Instr) -> sjava_syntax::span::Span {
    match i {
        Instr::Decl { init: Some(e), .. } => e.span(),
        Instr::Assign { rhs, .. } => rhs.span(),
        Instr::Cond(e) | Instr::Eval(e) => e.span(),
        Instr::Return(Some(e)) => e.span(),
        _ => Default::default(),
    }
}

fn collect_reads(i: &Instr, out: &mut BTreeSet<String>) {
    match i {
        Instr::Decl { init, .. } => {
            if let Some(e) = init {
                expr_uses(e, out);
            }
        }
        Instr::Assign { lhs, rhs } => {
            expr_uses(rhs, out);
            match lhs {
                LValue::Field { base, .. } => expr_uses(base, out),
                LValue::Index { base, index, .. } => {
                    expr_uses(base, out);
                    expr_uses(index, out);
                }
                _ => {}
            }
        }
        Instr::Cond(e) | Instr::Eval(e) => expr_uses(e, out),
        Instr::Return(Some(e)) => expr_uses(e, out),
        Instr::Return(None) => {}
    }
}

fn collect_decls(b: &Block, out: &mut Vec<(String, sjava_syntax::span::Span)>) {
    for s in &b.stmts {
        match s {
            Stmt::VarDecl { name, span, .. } => out.push((name.clone(), *span)),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_decls(then_blk, out);
                if let Some(e) = else_blk {
                    collect_decls(e, out);
                }
            }
            Stmt::While { body, .. } => collect_decls(body, out),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(Stmt::VarDecl { name, span, .. }) = init.as_deref() {
                    out.push((name.clone(), *span));
                }
                if let Some(Stmt::VarDecl { name, span, .. }) = update.as_deref() {
                    out.push((name.clone(), *span));
                }
                collect_decls(body, out);
            }
            Stmt::Block(b) => collect_decls(b, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    fn lint(src: &str) -> (usize, Diagnostics) {
        let p = parse(src).expect("parses");
        let mut d = Diagnostics::new();
        let n = lint_program(&p, &mut d);
        (n, d)
    }

    #[test]
    fn flags_dead_store() {
        let (n, d) = lint("class A { void f(int p) { int x = p * 2; x = p * 3; p = x; } }");
        assert!(n >= 1, "{d}");
        assert!(d.iter().any(|w| w.message.contains("dead store")));
    }

    #[test]
    fn flags_unused_local() {
        let (n, d) = lint("class A { void f(int p) { int ghost = 0; p = 1; } }");
        assert!(n >= 1);
        assert!(d.iter().any(|w| w.message.contains("unused local `ghost`")));
    }

    #[test]
    fn clean_code_is_quiet() {
        let (n, d) = lint(
            "class A { int out; void f(int p) {
                int x = p * 2;
                out = x;
            } }",
        );
        assert_eq!(n, 0, "{d}");
    }

    #[test]
    fn loop_carried_value_is_not_a_dead_store() {
        let (n, d) = lint(
            "class A { void f(int p) {
                int acc = 0;
                while (p > 0) { p = p - acc; acc = acc + p; }
            } }",
        );
        assert_eq!(n, 0, "{d}");
    }

    #[test]
    fn benchmarks_are_lint_clean() {
        for src in [
            sjava_syntax_source(crate_windsensor()),
            sjava_syntax_source(crate_eyetrack()),
        ] {
            let (n, d) = lint(src);
            assert_eq!(n, 0, "{d}");
        }
    }

    // Indirection to avoid a circular dev-dependency on sjava-apps: the
    // two smallest benchmark sources are inlined.
    fn crate_windsensor() -> &'static str {
        r#"class W { int cur; int old;
            void main() { SSJAVA: while (true) {
                int x = Device.read();
                old = cur; cur = x; Out.emit(old + cur);
            } } }"#
    }
    fn crate_eyetrack() -> &'static str {
        r#"class E { int a;
            void main() { SSJAVA: while (true) {
                int v = Device.read();
                a = v * 2; Out.emit(a);
            } } }"#
    }
    fn sjava_syntax_source(s: &'static str) -> &'static str {
        s
    }
}
