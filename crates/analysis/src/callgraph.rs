//! Call graph over methods reachable from the main event loop.
//!
//! SJava checks "the parts of the program that are callable from the main
//! event loop" (§2.3.1) and prohibits recursive call chains (§4.3, the
//! termination analysis cannot check recursion).

use crate::jtype::TypeEnv;
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::collections::{BTreeMap, BTreeSet};

/// A `(class, method)` reference.
pub type MethodRef = (String, String);

/// The call graph of methods reachable from the event loop.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// The method containing the `SSJAVA:` loop.
    pub entry: MethodRef,
    /// Span of the event loop statement.
    pub event_loop_span: Span,
    /// Direct call edges.
    pub calls: BTreeMap<MethodRef, BTreeSet<MethodRef>>,
    /// Reachable methods in bottom-up (callees-first) topological order.
    pub topo: Vec<MethodRef>,
}

impl CallGraph {
    /// Whether a method is reachable from the event loop.
    pub fn is_reachable(&self, m: &MethodRef) -> bool {
        self.topo.contains(m)
    }

    /// Groups reachable methods into bottom-up waves: every method's
    /// callees sit in strictly earlier waves. Methods inside one wave are
    /// independent given the previous waves' summaries, so interprocedural
    /// analyses can process a wave in parallel with a barrier between
    /// waves. Within a wave, methods keep their topological order.
    pub fn levels(&self) -> Vec<Vec<MethodRef>> {
        let mut level: BTreeMap<&MethodRef, usize> = BTreeMap::new();
        let mut out: Vec<Vec<MethodRef>> = Vec::new();
        for m in &self.topo {
            let l = self
                .calls
                .get(m)
                .map(|cs| {
                    cs.iter()
                        .filter_map(|c| level.get(c))
                        .map(|&d| d + 1)
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            level.insert(m, l);
            if out.len() <= l {
                out.resize_with(l + 1, Vec::new);
            }
            out[l].push(m.clone());
        }
        out
    }

    /// Condenses the graph into strongly-connected components, returned
    /// callees-first: every call out of a component lands in a strictly
    /// earlier one. SJava prohibits recursion, so on a graph [`build`]
    /// accepted every component is a singleton — but condensation is the
    /// correct general unit for shard cutting (a hypothetical cycle must
    /// never be split across processes), so the cut is defined over
    /// components, not methods. Iterative Tarjan, deterministic: roots
    /// are taken in `topo` order and members sorted within a component.
    pub fn condense(&self) -> Vec<Vec<MethodRef>> {
        struct NodeState {
            index: usize,
            lowlink: usize,
            on_stack: bool,
        }
        // Presence in `states` means "visited".
        let mut states: BTreeMap<&MethodRef, NodeState> = BTreeMap::new();
        let mut stack: Vec<&MethodRef> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<MethodRef>> = Vec::new();
        let empty = BTreeSet::new();

        for root in &self.topo {
            if states.contains_key(root) {
                continue;
            }
            // Explicit DFS frames: (node, next-callee cursor).
            let mut frames: Vec<(&MethodRef, usize)> = Vec::new();
            states.insert(
                root,
                NodeState {
                    index: next_index,
                    lowlink: next_index,
                    on_stack: true,
                },
            );
            next_index += 1;
            stack.push(root);
            frames.push((root, 0));
            while let Some(&(v, ci)) = frames.last() {
                let callees = self.calls.get(v).unwrap_or(&empty);
                if let Some(w) = callees.iter().nth(ci) {
                    frames.last_mut().expect("frame exists").1 = ci + 1;
                    match states.get(w) {
                        None => {
                            states.insert(
                                w,
                                NodeState {
                                    index: next_index,
                                    lowlink: next_index,
                                    on_stack: true,
                                },
                            );
                            next_index += 1;
                            stack.push(w);
                            frames.push((w, 0));
                        }
                        Some(ws) if ws.on_stack => {
                            let wi = ws.index;
                            let vs = states.get_mut(v).expect("visited");
                            vs.lowlink = vs.lowlink.min(wi);
                        }
                        Some(_) => {}
                    }
                } else {
                    frames.pop();
                    let (v_low, v_index) = {
                        let s = &states[v];
                        (s.lowlink, s.index)
                    };
                    if let Some(&(p, _)) = frames.last() {
                        let ps = states.get_mut(p).expect("visited");
                        ps.lowlink = ps.lowlink.min(v_low);
                    }
                    if v_low == v_index {
                        let mut comp: Vec<MethodRef> = Vec::new();
                        while let Some(w) = stack.pop() {
                            states.get_mut(w).expect("visited").on_stack = false;
                            comp.push(w.clone());
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Cuts the condensation into `n` balanced shards by longest-
    /// processing-time greedy assignment: components are taken heaviest
    /// first (ties broken by their smallest member, so the plan is
    /// deterministic) and placed on the currently-lightest shard (ties
    /// broken by shard index). Every reachable method lands in exactly
    /// one shard; shards may be empty when `n` exceeds the component
    /// count. The driver and every `--shard=i/N` worker recompute this
    /// plan from the same program, so they agree without communicating.
    pub fn cut_shards<F>(&self, n: usize, cost: F) -> Vec<BTreeSet<MethodRef>>
    where
        F: Fn(&MethodRef) -> u64,
    {
        let n = n.max(1);
        let mut units: Vec<(u64, Vec<MethodRef>)> = self
            .condense()
            .into_iter()
            .map(|comp| (comp.iter().map(|m| cost(m).max(1)).sum(), comp))
            .collect();
        units.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1[0].cmp(&b.1[0])));
        let mut shards: Vec<BTreeSet<MethodRef>> = vec![BTreeSet::new(); n];
        let mut loads = vec![0u64; n];
        for (w, comp) in units {
            let lightest = (0..n).min_by_key(|&i| (loads[i], i)).unwrap_or(0);
            loads[lightest] += w;
            shards[lightest].extend(comp);
        }
        shards
    }

    /// The upward closure of a locally-dirty method set: every method
    /// that is dirty itself or (transitively) calls a dirty method. An
    /// incremental re-check only needs to re-analyze this cone; results
    /// for everything outside it can be replayed from cache.
    pub fn dirty_cone(&self, dirty: &BTreeSet<MethodRef>) -> BTreeSet<MethodRef> {
        let mut cone: BTreeSet<MethodRef> = BTreeSet::new();
        // `topo` is callees-first, so by the time we reach a caller every
        // callee's cone membership is already decided.
        for m in &self.topo {
            let hit = dirty.contains(m)
                || self
                    .calls
                    .get(m)
                    .is_some_and(|cs| cs.iter().any(|c| cone.contains(c)));
            if hit {
                cone.insert(m.clone());
            }
        }
        cone
    }
}

/// Locates the unique `SSJAVA:`-labeled event loop.
///
/// Returns the enclosing method and the loop statement, or pushes a
/// diagnostic when missing or duplicated.
pub fn find_event_loop<'p>(
    program: &'p Program,
    diags: &mut Diagnostics,
) -> Option<(MethodRef, &'p Stmt)> {
    let mut found: Option<(MethodRef, &Stmt)> = None;
    for class in &program.classes {
        for method in &class.methods {
            for stmt in event_loops_in(&method.body) {
                if found.is_some() {
                    diags.push(Diag::event_loop(
                        "multiple SSJAVA event loops; exactly one is required",
                        stmt.span(),
                    ));
                    return None;
                }
                found = Some(((class.name.clone(), method.name.clone()), stmt));
            }
        }
    }
    if found.is_none() {
        diags.push(Diag::event_loop(
            "no SSJAVA-labeled main event loop found",
            Span::dummy(),
        ));
    }
    found
}

fn event_loops_in(block: &Block) -> Vec<&Stmt> {
    let mut out = Vec::new();
    collect_event_loops(block, &mut out);
    out
}

fn collect_event_loops<'a>(block: &'a Block, out: &mut Vec<&'a Stmt>) {
    for s in &block.stmts {
        match s {
            Stmt::While {
                kind: LoopKind::EventLoop,
                ..
            } => out.push(s),
            Stmt::While { body, .. } => collect_event_loops(body, out),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_event_loops(then_blk, out);
                if let Some(e) = else_blk {
                    collect_event_loops(e, out);
                }
            }
            Stmt::For { body, .. } => collect_event_loops(body, out),
            Stmt::Block(b) => collect_event_loops(b, out),
            _ => {}
        }
    }
}

/// The direct callee set of one resolvable method. Trusted
/// methods/classes are opaque — their callees are not analyzed (§6.1,
/// e.g. the BitStream and motor controller) — and unresolvable
/// references contribute nothing. This is the per-method unit the
/// incremental layer memoizes.
pub fn method_callees(program: &Program, mref: &MethodRef) -> BTreeSet<MethodRef> {
    let Some((decl_class, method)) = program.resolve_method(&mref.0, &mref.1) else {
        return BTreeSet::new();
    };
    if method.annots.trusted || decl_class.annots.trusted {
        return BTreeSet::new();
    }
    let mut env = TypeEnv::for_method(program, &mref.0, method);
    env.bind_block(&method.body);
    let mut callees = BTreeSet::new();
    collect_calls_block(&method.body, &env, program, &mut callees);
    callees
}

/// Builds the call graph from the event loop, reporting recursion as an
/// error.
pub fn build(program: &Program, diags: &mut Diagnostics) -> Option<CallGraph> {
    build_with(program, diags, |m| method_callees(program, m))
}

/// [`build`] with a pluggable callee-set supplier: the incremental layer
/// passes a closure that serves memoized per-method callee sets and only
/// falls back to [`method_callees`] on a miss. Graph assembly (worklist
/// from the event loop + topological sort) is always recomputed — it is
/// cheap, and it is what makes the supplier's per-method answers safe to
/// reuse.
pub fn build_with<F>(
    program: &Program,
    diags: &mut Diagnostics,
    mut callees_of: F,
) -> Option<CallGraph>
where
    F: FnMut(&MethodRef) -> BTreeSet<MethodRef>,
{
    let (entry, loop_stmt) = find_event_loop(program, diags)?;
    let mut calls: BTreeMap<MethodRef, BTreeSet<MethodRef>> = BTreeMap::new();
    let mut stack: Vec<MethodRef> = vec![entry.clone()];
    let mut seen: BTreeSet<MethodRef> = BTreeSet::new();
    while let Some(mref) = stack.pop() {
        if !seen.insert(mref.clone()) {
            continue;
        }
        if program.resolve_method(&mref.0, &mref.1).is_none() {
            continue;
        }
        let callees = callees_of(&mref);
        for c in &callees {
            stack.push(c.clone());
        }
        calls.insert(mref, callees);
    }

    // Topological sort, callees first; a cycle is recursion.
    let mut topo = Vec::new();
    let mut state: BTreeMap<MethodRef, u8> = BTreeMap::new(); // 1=visiting 2=done
    let mut recursion = None;
    fn visit(
        m: &MethodRef,
        calls: &BTreeMap<MethodRef, BTreeSet<MethodRef>>,
        state: &mut BTreeMap<MethodRef, u8>,
        topo: &mut Vec<MethodRef>,
        recursion: &mut Option<MethodRef>,
    ) {
        match state.get(m) {
            Some(1) => {
                *recursion = Some(m.clone());
                return;
            }
            Some(2) => return,
            _ => {}
        }
        state.insert(m.clone(), 1);
        if let Some(cs) = calls.get(m) {
            for c in cs {
                visit(c, calls, state, topo, recursion);
            }
        }
        state.insert(m.clone(), 2);
        topo.push(m.clone());
    }
    visit(&entry, &calls, &mut state, &mut topo, &mut recursion);
    if let Some(m) = recursion {
        diags.push(Diag::recursion(
            format!(
                "recursive call chain through `{}.{}` is prohibited",
                m.0, m.1
            ),
            loop_stmt.span(),
        ));
        return None;
    }

    Some(CallGraph {
        entry,
        event_loop_span: loop_stmt.span(),
        calls,
        topo,
    })
}

fn collect_calls_block(
    block: &Block,
    env: &TypeEnv<'_>,
    program: &Program,
    out: &mut BTreeSet<MethodRef>,
) {
    for s in &block.stmts {
        collect_calls_stmt(s, env, program, out);
    }
}

fn collect_calls_stmt(
    stmt: &Stmt,
    env: &TypeEnv<'_>,
    program: &Program,
    out: &mut BTreeSet<MethodRef>,
) {
    match stmt {
        Stmt::VarDecl { init, .. } => {
            if let Some(e) = init {
                collect_calls_expr(e, env, program, out);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            match lhs {
                LValue::Field { base, .. } => collect_calls_expr(base, env, program, out),
                LValue::Index { base, index, .. } => {
                    collect_calls_expr(base, env, program, out);
                    collect_calls_expr(index, env, program, out);
                }
                _ => {}
            }
            collect_calls_expr(rhs, env, program, out);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            collect_calls_expr(cond, env, program, out);
            collect_calls_block(then_blk, env, program, out);
            if let Some(e) = else_blk {
                collect_calls_block(e, env, program, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            collect_calls_expr(cond, env, program, out);
            collect_calls_block(body, env, program, out);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            if let Some(i) = init {
                collect_calls_stmt(i, env, program, out);
            }
            if let Some(c) = cond {
                collect_calls_expr(c, env, program, out);
            }
            if let Some(u) = update {
                collect_calls_stmt(u, env, program, out);
            }
            collect_calls_block(body, env, program, out);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                collect_calls_expr(v, env, program, out);
            }
        }
        Stmt::ExprStmt { expr, .. } => collect_calls_expr(expr, env, program, out),
        Stmt::Block(b) => collect_calls_block(b, env, program, out),
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
    }
}

fn collect_calls_expr(
    expr: &Expr,
    env: &TypeEnv<'_>,
    program: &Program,
    out: &mut BTreeSet<MethodRef>,
) {
    match expr {
        Expr::Call {
            recv, name, args, ..
        } => {
            if let Some(class) = env.call_target_class(expr) {
                if program.resolve_method(&class, name).is_some() {
                    out.insert((class, name.clone()));
                }
            }
            if let Some(r) = recv {
                collect_calls_expr(r, env, program, out);
            }
            for a in args {
                collect_calls_expr(a, env, program, out);
            }
        }
        Expr::Field { base, .. } | Expr::Length { base, .. } => {
            collect_calls_expr(base, env, program, out)
        }
        Expr::Index { base, index, .. } => {
            collect_calls_expr(base, env, program, out);
            collect_calls_expr(index, env, program, out);
        }
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
            collect_calls_expr(operand, env, program, out)
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_calls_expr(lhs, env, program, out);
            collect_calls_expr(rhs, env, program, out);
        }
        Expr::NewArray { len, .. } => collect_calls_expr(len, env, program, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    #[test]
    fn builds_topo_order() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { step(); } }
                void step() { helper(); }
                void helper() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("call graph");
        assert!(!d.has_errors());
        assert_eq!(cg.entry, ("A".to_string(), "main".to_string()));
        // callees first
        let pos = |n: &str| cg.topo.iter().position(|(_, m)| m == n).expect("present");
        assert!(pos("helper") < pos("step"));
        assert!(pos("step") < pos("main"));
    }

    #[test]
    fn levels_put_callees_in_earlier_waves() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { step(); other(); } }
                void step() { helper(); }
                void other() { }
                void helper() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("call graph");
        let levels = cg.levels();
        let wave_of = |n: &str| {
            levels
                .iter()
                .position(|w| w.iter().any(|(_, m)| m == n))
                .expect("present")
        };
        // helper and other are leaves, step depends on helper, main on both.
        assert_eq!(wave_of("helper"), 0);
        assert_eq!(wave_of("other"), 0);
        assert_eq!(wave_of("step"), 1);
        assert_eq!(wave_of("main"), 2);
        // Every reachable method appears exactly once.
        assert_eq!(levels.iter().map(Vec::len).sum::<usize>(), cg.topo.len());
    }

    #[test]
    fn condense_yields_singletons_callees_first() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { step(); other(); } }
                void step() { helper(); }
                void other() { }
                void helper() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("cg");
        let sccs = cg.condense();
        // Recursion is prohibited, so every component is a singleton and
        // every reachable method appears exactly once.
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert_eq!(sccs.len(), cg.topo.len());
        let pos = |n: &str| {
            sccs.iter()
                .position(|c| c.iter().any(|(_, m)| m == n))
                .expect("present")
        };
        // Callees-first: a component's calls land strictly earlier.
        assert!(pos("helper") < pos("step"));
        assert!(pos("step") < pos("main"));
    }

    #[test]
    fn cut_shards_partitions_and_balances() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { a(); b(); c(); d(); } }
                void a() { } void b() { } void c() { } void d() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("cg");
        for n in [1usize, 2, 4, 7] {
            let shards = cg.cut_shards(n, |_| 1);
            assert_eq!(shards.len(), n);
            // Exact partition of the reachable set.
            let mut all: Vec<MethodRef> = shards.iter().flatten().cloned().collect();
            all.sort();
            let mut topo = cg.topo.clone();
            topo.sort();
            assert_eq!(all, topo);
            // Balanced under unit costs: loads differ by at most one.
            let loads: Vec<usize> = shards.iter().map(BTreeSet::len).collect();
            let (lo, hi) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced shards: {loads:?}");
        }
        // Deterministic: the same inputs replan identically.
        assert_eq!(cg.cut_shards(3, |_| 1), cg.cut_shards(3, |_| 1));
    }

    #[test]
    fn cut_shards_respects_costs() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { a(); b(); c(); } }
                void a() { } void b() { } void c() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("cg");
        // `main` is overwhelmingly heavy: it must sit alone in a shard.
        let shards = cg.cut_shards(2, |(_, m)| if m == "main" { 1000 } else { 1 });
        let main_shard = shards
            .iter()
            .find(|s| s.iter().any(|(_, m)| m == "main"))
            .expect("main placed");
        assert_eq!(main_shard.len(), 1);
    }

    #[test]
    fn detects_recursion() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { f(); } }
                void f() { g(); }
                void g() { f(); }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        assert!(build(&p, &mut d).is_none());
        assert!(d.has_errors());
    }

    #[test]
    fn trusted_methods_are_opaque() {
        let p = parse(
            "class A {
                void main() { SSJAVA: while (true) { f(); } }
                @TRUSTED void f() { g(); }
                void g() { }
             }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("cg");
        assert!(!cg.is_reachable(&("A".to_string(), "g".to_string())));
    }

    #[test]
    fn missing_event_loop_is_error() {
        let p = parse("class A { void main() { } }").expect("parses");
        let mut d = Diagnostics::new();
        assert!(build(&p, &mut d).is_none());
        assert!(d.has_errors());
    }

    #[test]
    fn virtual_dispatch_through_receiver_type() {
        let p = parse(
            "class A { B b; void main() { SSJAVA: while (true) { b.run(); } } }
             class B { void run() { } }",
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let cg = build(&p, &mut d).expect("cg");
        assert!(cg.is_reachable(&("B".to_string(), "run".to_string())));
    }
}
