//! Explicit per-shard checker inputs: interface summaries + owned bodies.
//!
//! The paper's per-method judgments (§4) depend only on the method's own
//! body plus *declared* facts about everything it references — class
//! lattices, field `@LOC`s, method signatures with their `@LOC` /
//! `@DELTA` / `@DELEGATE` annotations, and callee effect summaries. This
//! module makes that dependency explicit: a [`ShardInput`] hands the
//! per-method checkers a program *view* in which only the methods the
//! shard owns still carry bodies, everything else having been reduced to
//! its [`InterfaceSummary`]. Checking a method against a `ShardInput`
//! instead of a whole `Program` is what lets `sjava check --shards=N`
//! fan shards out to separate processes while staying byte-identical to
//! the unsharded run.
//!
//! Every interface summary is content-addressed: [`class_interface_hash`]
//! digests the body-stripped declaration (FNV-64, stable across processes
//! and platforms), so two shard workers — or two CI runs — agree on
//! whether they checked against the same interface without shipping the
//! declaration itself.

use crate::callgraph::MethodRef;
use sjava_lattice::{hash_debug, Fnv64};
use sjava_syntax::ast::{Block, ClassDecl, Program};
use sjava_syntax::span::Span;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

fn span_bits(s: Span) -> u64 {
    ((s.start as u64) << 32) | s.end as u64
}

/// Content hash of one class *interface*: name, superclass, class
/// annotations (including `@LATTICE` declarations), every field
/// (annotations, modifiers, type, initializer), and every method's
/// signature (annotations, staticness, return type, parameters, span).
/// Method bodies are excluded — by construction, this is exactly the
/// information a foreign shard may depend on. Spans are included because
/// diagnostics embed them: an interface whose text moved must re-key.
pub fn class_interface_hash(class: &ClassDecl) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&class.name);
    match &class.superclass {
        Some(s) => {
            h.write_u64(1);
            h.write_str(s);
        }
        None => h.write_u64(0),
    }
    h.write_u64(hash_debug(&class.annots));
    h.write_u64(span_bits(class.span));
    h.write_usize(class.fields.len());
    for f in &class.fields {
        h.write_u64(hash_debug(f));
    }
    h.write_usize(class.methods.len());
    for m in &class.methods {
        h.write_str(&m.name);
        h.write_u64(m.is_static as u64);
        h.write_u64(hash_debug(&m.annots));
        h.write_u64(hash_debug(&m.ret));
        h.write_u64(hash_debug(&m.params));
        h.write_u64(span_bits(m.span));
    }
    h.finish()
}

/// A content-addressed, body-stripped class declaration: what one shard
/// publishes about a class so other shards can check calls into it.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSummary {
    /// The declaration with every method body emptied (spans retained).
    pub class: ClassDecl,
    /// [`class_interface_hash`] of the original declaration. Stripping
    /// only removes bodies, which the hash never covered, so hashing
    /// before or after stripping yields the same value.
    pub hash: u64,
}

/// Extracts the interface summary of a class declaration.
pub fn interface_of(class: &ClassDecl) -> InterfaceSummary {
    let hash = class_interface_hash(class);
    let mut stripped = class.clone();
    for m in &mut stripped.methods {
        m.body = Block {
            stmts: Vec::new(),
            span: m.body.span,
        };
    }
    InterfaceSummary {
        class: stripped,
        hash,
    }
}

/// The explicit input one shard checks its methods against: a program
/// view whose non-owned method bodies have been stripped, the set of
/// methods the shard owns, and the content hashes of every class
/// interface the view exposes.
///
/// Per-method check paths (`check_method_flows`, `check_method_aliasing`,
/// `summarize`, `method_shared_summary`, `termination::check_method`)
/// take `&ShardInput` instead of `&Program` — the whole-program pipeline
/// simply wraps its program with [`ShardInput::whole`], while a shard
/// worker builds a reduced view with [`reduce`] first.
#[derive(Debug)]
pub struct ShardInput<'p> {
    program: &'p Program,
    /// `None` means the whole program is owned (the unsharded pipeline).
    owned: Option<BTreeSet<MethodRef>>,
    /// Lazily-computed per-class interface hashes of the view.
    hashes: OnceLock<BTreeMap<String, u64>>,
}

impl<'p> ShardInput<'p> {
    /// A shard that owns every method: the unsharded pipeline's input.
    pub fn whole(program: &'p Program) -> Self {
        ShardInput {
            program,
            owned: None,
            hashes: OnceLock::new(),
        }
    }

    /// A shard owning exactly `owned`, checked against `view` — normally
    /// the output of [`reduce`] for that owned set.
    pub fn new(view: &'p Program, owned: BTreeSet<MethodRef>) -> Self {
        ShardInput {
            program: view,
            owned: Some(owned),
            hashes: OnceLock::new(),
        }
    }

    /// The program view: owned bodies present, foreign bodies stripped.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Whether this shard owns (and must check) `m`.
    pub fn owns(&self, m: &MethodRef) -> bool {
        match &self.owned {
            None => true,
            Some(set) => set.contains(m),
        }
    }

    /// The owned method set, or `None` when the shard owns everything.
    pub fn owned(&self) -> Option<&BTreeSet<MethodRef>> {
        self.owned.as_ref()
    }

    /// Content-addressed interface summary hashes per class name,
    /// computed on first use.
    pub fn summary_hashes(&self) -> &BTreeMap<String, u64> {
        self.hashes.get_or_init(|| {
            self.program
                .classes
                .iter()
                .map(|c| (c.name.clone(), class_interface_hash(c)))
                .collect()
        })
    }

    /// The interface summary hash of one class, if declared. This is a
    /// tracked read: inside a [`sjava_syntax::track::ReadScope`] it
    /// records a whole-interface dependency on `class`, since the summary
    /// hash covers every interface fact of the class.
    pub fn summary_hash(&self, class: &str) -> Option<u64> {
        sjava_syntax::track::record_iface(class);
        self.summary_hashes().get(class).copied()
    }
}

/// Builds the reduced program view for a shard: every class declaration
/// is kept (so name and type resolution behave identically), but method
/// bodies are retained only for declarations some owned reference
/// resolves to; all other bodies become empty blocks. Field initializers
/// and all annotations stay — they are interface facts.
pub fn reduce(program: &Program, owned: &BTreeSet<MethodRef>) -> Program {
    // A reference (A, m) may resolve to a declaration inherited from a
    // superclass B, so the keep-set is over *declaring* (class, method)
    // pairs, not over the references themselves.
    let mut keep: BTreeSet<(String, String)> = BTreeSet::new();
    for mref in owned {
        if let Some((decl_class, method)) = program.resolve_method(&mref.0, &mref.1) {
            keep.insert((decl_class.name.clone(), method.name.clone()));
        }
    }
    let classes = program
        .classes
        .iter()
        .map(|c| {
            let mut class = c.clone();
            for m in &mut class.methods {
                if !keep.contains(&(c.name.clone(), m.name.clone())) {
                    m.body = Block {
                        stmts: Vec::new(),
                        span: m.body.span,
                    };
                }
            }
            class
        })
        .collect();
    Program::new(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    const SRC: &str = "class A {
        void main() { SSJAVA: while (true) { step(); other(); } }
        void step() { helper(); }
        void other() { int x = 1; }
        void helper() { int y = 2; }
     }";

    #[test]
    fn interface_hash_ignores_bodies_but_sees_signatures() {
        let p1 = parse(SRC).expect("parses");
        // Body edit of identical byte length: spans unchanged.
        let p2 = parse(&SRC.replace("int y = 2;", "int y = 7;")).expect("parses");
        assert_eq!(
            class_interface_hash(&p1.classes[0]),
            class_interface_hash(&p2.classes[0]),
        );
        let p3 = parse(&SRC.replace("void helper()", "int  helper()")).expect("parses");
        assert_ne!(
            class_interface_hash(&p1.classes[0]),
            class_interface_hash(&p3.classes[0]),
        );
    }

    #[test]
    fn interface_of_strips_bodies_and_keeps_hash() {
        let p = parse(SRC).expect("parses");
        let iface = interface_of(&p.classes[0]);
        assert!(iface.class.methods.iter().all(|m| m.body.stmts.is_empty()));
        assert_eq!(iface.hash, class_interface_hash(&p.classes[0]));
        // Hashing the stripped declaration reproduces the hash: the
        // interface digest never covered bodies.
        assert_eq!(iface.hash, class_interface_hash(&iface.class));
    }

    #[test]
    fn reduce_keeps_owned_bodies_only() {
        let p = parse(SRC).expect("parses");
        let owned: BTreeSet<MethodRef> = [("A".to_string(), "step".to_string())].into();
        let view = reduce(&p, &owned);
        let body_len = |prog: &Program, name: &str| {
            prog.classes[0]
                .methods
                .iter()
                .find(|m| m.name == name)
                .expect("present")
                .body
                .stmts
                .len()
        };
        assert!(body_len(&view, "step") > 0);
        assert_eq!(body_len(&view, "main"), 0);
        assert_eq!(body_len(&view, "helper"), 0);
        // Signatures and class set are untouched.
        assert_eq!(view.classes.len(), p.classes.len());
        assert_eq!(
            class_interface_hash(&view.classes[0]),
            class_interface_hash(&p.classes[0]),
        );
    }

    #[test]
    fn reduce_keeps_inherited_decl_of_owned_reference() {
        let p = parse(
            "class A { void main() { SSJAVA: while (true) { go(); } } }
             class B { void go() { int x = 1; } }
             class C extends B { }",
        )
        .expect("parses");
        // The reference (C, go) resolves to B's declaration; owning it
        // must keep B.go's body.
        let owned: BTreeSet<MethodRef> = [("C".to_string(), "go".to_string())].into();
        let view = reduce(&p, &owned);
        let b = view.classes.iter().find(|c| c.name == "B").expect("B");
        assert!(!b.methods[0].body.stmts.is_empty());
    }

    #[test]
    fn whole_shard_owns_everything() {
        let p = parse(SRC).expect("parses");
        let shard = ShardInput::whole(&p);
        assert!(shard.owns(&("A".to_string(), "anything".to_string())));
        assert_eq!(
            shard.summary_hash("A"),
            Some(class_interface_hash(&p.classes[0])),
        );
        assert_eq!(shard.summary_hash("Nope"), None);
    }
}
