//! Control-flow graphs over method bodies.
//!
//! The eviction and termination analyses are syntax-directed (the paper's
//! transfer functions are given per statement form), but classic dataflow
//! problems — liveness, reaching definitions — want an explicit CFG. This
//! module lowers structured control flow (including `break`/`continue`
//! and the labeled loop kinds) into basic blocks of flat instructions
//! that reference the original AST expressions.

use sjava_syntax::ast::*;
use std::fmt;

/// Index of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// A flat instruction inside a basic block.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Local declaration (with optional initializer).
    Decl {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source.
        rhs: Expr,
    },
    /// A branch condition evaluated at the end of the block.
    Cond(Expr),
    /// Return.
    Return(Option<Expr>),
    /// Expression evaluated for effect.
    Eval(Expr),
}

/// A basic block: straight-line instructions plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Instructions in order.
    pub instrs: Vec<Instr>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks (computed at the end of construction).
    pub preds: Vec<BlockId>,
}

/// A method's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// The single exit block (every return edge leads here).
    pub exit: BlockId,
}

impl Cfg {
    /// Builds the CFG of a method body.
    pub fn build(body: &Block) -> Cfg {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            current: BlockId(0),
            loop_stack: Vec::new(),
            exit: BlockId(1),
        };
        b.lower_block(body);
        // Fall-through to exit.
        let cur = b.current;
        b.edge(cur, b.exit);
        let mut cfg = Cfg {
            blocks: b.blocks,
            entry: BlockId(0),
            exit: b.exit,
        };
        cfg.compute_preds();
        cfg
    }

    fn compute_preds(&mut self) {
        let edges: Vec<(BlockId, BlockId)> = self
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.succs.iter().map(move |&s| (BlockId(i), s)))
            .collect();
        for b in &mut self.blocks {
            b.preds.clear();
        }
        for (from, to) in edges {
            self.blocks[to.0].preds.push(from);
        }
    }

    /// Iterates block ids.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId)
    }

    /// The block for an id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has only the entry and exit.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() <= 2
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            let succs: Vec<String> = b.succs.iter().map(|s| format!("B{}", s.0)).collect();
            writeln!(
                f,
                "B{i} -> [{}] ({} instrs)",
                succs.join(","),
                b.instrs.len()
            )?;
        }
        Ok(())
    }
}

struct LoopFrame {
    head: BlockId,
    after: BlockId,
}

struct Builder {
    blocks: Vec<BasicBlock>,
    current: BlockId,
    loop_stack: Vec<LoopFrame>,
    exit: BlockId,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        BlockId(self.blocks.len() - 1)
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0].succs.contains(&to) {
            self.blocks[from.0].succs.push(to);
        }
    }

    fn push(&mut self, i: Instr) {
        let cur = self.current;
        self.blocks[cur.0].instrs.push(i);
    }

    fn lower_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl { name, init, .. } => self.push(Instr::Decl {
                name: name.clone(),
                init: init.clone(),
            }),
            Stmt::Assign { lhs, rhs, .. } => self.push(Instr::Assign {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            }),
            Stmt::ExprStmt { expr, .. } => self.push(Instr::Eval(expr.clone())),
            Stmt::Return { value, .. } => {
                self.push(Instr::Return(value.clone()));
                let cur = self.current;
                self.edge(cur, self.exit);
                // Continue in a fresh unreachable block.
                self.current = self.new_block();
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.push(Instr::Cond(cond.clone()));
                let head = self.current;
                let then_b = self.new_block();
                let join = self.new_block();
                self.edge(head, then_b);
                self.current = then_b;
                self.lower_block(then_blk);
                let then_end = self.current;
                self.edge(then_end, join);
                if let Some(e) = else_blk {
                    let else_b = self.new_block();
                    self.edge(head, else_b);
                    self.current = else_b;
                    self.lower_block(e);
                    let else_end = self.current;
                    self.edge(else_end, join);
                } else {
                    self.edge(head, join);
                }
                self.current = join;
            }
            Stmt::While { cond, body, .. } => {
                let head = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                let cur = self.current;
                self.edge(cur, head);
                self.current = head;
                self.push(Instr::Cond(cond.clone()));
                self.edge(head, body_b);
                self.edge(head, after);
                self.loop_stack.push(LoopFrame { head, after });
                self.current = body_b;
                self.lower_block(body);
                let body_end = self.current;
                self.edge(body_end, head);
                self.loop_stack.pop();
                self.current = after;
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let head = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                let cur = self.current;
                self.edge(cur, head);
                self.current = head;
                if let Some(c) = cond {
                    self.push(Instr::Cond(c.clone()));
                }
                self.edge(head, body_b);
                self.edge(head, after);
                self.loop_stack.push(LoopFrame { head, after });
                self.current = body_b;
                self.lower_block(body);
                if let Some(u) = update {
                    self.lower_stmt(u);
                }
                let body_end = self.current;
                self.edge(body_end, head);
                self.loop_stack.pop();
                self.current = after;
            }
            Stmt::Break { .. } => {
                if let Some(frame) = self.loop_stack.last() {
                    let after = frame.after;
                    let cur = self.current;
                    self.edge(cur, after);
                }
                self.current = self.new_block();
            }
            Stmt::Continue { .. } => {
                if let Some(frame) = self.loop_stack.last() {
                    let head = frame.head;
                    let cur = self.current;
                    self.edge(cur, head);
                }
                self.current = self.new_block();
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    fn cfg_of(body_src: &str) -> Cfg {
        let src = format!("class A {{ void f(int p) {{ {body_src} }} }}");
        let p = parse(&src).expect("parses");
        Cfg::build(&p.method("A", "f").expect("method").body)
    }

    #[test]
    fn straight_line_is_two_blocks_plus_exit() {
        let c = cfg_of("int x = 1; x = x + 1;");
        assert_eq!(c.block(c.entry).instrs.len(), 2);
        assert_eq!(c.block(c.entry).succs, vec![c.exit]);
    }

    #[test]
    fn if_produces_diamond() {
        let c = cfg_of("int x = 0; if (p > 0) { x = 1; } else { x = 2; } x = x + 1;");
        // entry branches to then and else; both join.
        assert_eq!(c.block(c.entry).succs.len(), 2);
        let join_targets: Vec<_> = c
            .block(c.entry)
            .succs
            .iter()
            .map(|&s| c.block(s).succs.clone())
            .collect();
        assert_eq!(join_targets[0], join_targets[1]);
    }

    #[test]
    fn while_has_back_edge() {
        let c = cfg_of("int i = 0; while (i < p) { i = i + 1; }");
        // Some block must have a successor with a smaller id (the back
        // edge to the loop head).
        let has_back = c
            .ids()
            .any(|b| c.block(b).succs.iter().any(|s| s.0 < b.0 && s != &c.entry));
        assert!(has_back, "{c}");
    }

    #[test]
    fn break_exits_the_loop() {
        let c = cfg_of("int i = 0; while (true) { if (i > p) { break; } i = i + 1; } i = 0;");
        // The loop's after-block is reachable from inside the body.
        assert!(c.len() > 4);
        // All blocks' preds/succs are consistent.
        for id in c.ids() {
            for &s in &c.block(id).succs {
                assert!(c.block(s).preds.contains(&id));
            }
        }
    }

    #[test]
    fn return_edges_to_exit() {
        let c = cfg_of("if (p > 0) { return; } p = 1;");
        let returns: Vec<_> = c
            .ids()
            .filter(|&b| {
                c.block(b)
                    .instrs
                    .iter()
                    .any(|i| matches!(i, Instr::Return(_)))
            })
            .collect();
        assert_eq!(returns.len(), 1);
        assert!(c.block(returns[0]).succs.contains(&c.exit));
    }
}
