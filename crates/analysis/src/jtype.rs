//! Standard Java-type resolution for the dialect.
//!
//! SJava's location type system is layered *on top of* Java types (§4.1
//! "SJava's type checking is independent from the standard Java type
//! checking"). The analyses and the location checker both need to know the
//! static Java type of expressions — e.g. the class of a receiver to
//! resolve a call, or whether a field is a reference — so this module
//! provides a small expression-type resolver.

use sjava_syntax::ast::*;

/// Resolves static Java types of expressions within one method.
#[derive(Debug)]
pub struct TypeEnv<'p> {
    /// The program being analyzed.
    pub program: &'p Program,
    /// Name of the enclosing class.
    pub class: String,
    /// Types of locals and parameters currently in scope.
    locals: Vec<(String, Type)>,
}

impl<'p> TypeEnv<'p> {
    /// Creates an environment for `method` of `class`, with parameters
    /// pre-bound.
    pub fn for_method(program: &'p Program, class: &str, method: &MethodDecl) -> Self {
        let mut env = TypeEnv {
            program,
            class: class.to_string(),
            locals: Vec::new(),
        };
        for p in &method.params {
            env.bind(&p.name, p.ty.clone());
        }
        env
    }

    /// Binds a local variable's type (shadowing allowed; latest wins).
    pub fn bind(&mut self, name: &str, ty: Type) {
        self.locals.push((name.to_string(), ty));
    }

    /// Collects *all* local declarations of a block into scope. The
    /// analyses walk bodies in one pass, so pre-binding the whole method
    /// body keeps lookup simple (the dialect forbids shadowing in
    /// practice).
    pub fn bind_block(&mut self, block: &Block) {
        for s in &block.stmts {
            match s {
                Stmt::VarDecl { ty, name, .. } => self.bind(name, ty.clone()),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    self.bind_block(then_blk);
                    if let Some(e) = else_blk {
                        self.bind_block(e);
                    }
                }
                Stmt::While { body, .. } => self.bind_block(body),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(Stmt::VarDecl { ty, name, .. }) = init.as_deref() {
                        self.bind(name, ty.clone());
                    }
                    if let Some(Stmt::VarDecl { ty, name, .. }) = update.as_deref() {
                        self.bind(name, ty.clone());
                    }
                    self.bind_block(body);
                }
                Stmt::Block(b) => self.bind_block(b),
                _ => {}
            }
        }
    }

    /// The type of a local variable or parameter.
    pub fn local(&self, name: &str) -> Option<&Type> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// The static type of `expr`, or `None` if it cannot be resolved
    /// (unknown names, intrinsics with dynamic types).
    pub fn ty(&self, expr: &Expr) -> Option<Type> {
        match expr {
            Expr::IntLit { .. } => Some(Type::Int),
            Expr::FloatLit { .. } => Some(Type::Float),
            Expr::BoolLit { .. } => Some(Type::Boolean),
            Expr::StrLit { .. } => Some(Type::Str),
            Expr::Null { .. } => None,
            Expr::This { .. } => Some(Type::Class(self.class.clone())),
            Expr::Var { name, .. } => self
                .local(name)
                .cloned()
                .or_else(|| self.program.field(&self.class, name).map(|f| f.ty.clone())),
            Expr::Field { base, field, .. } => {
                let Type::Class(c) = self.ty(base)? else {
                    return None;
                };
                self.program.field(&c, field).map(|f| f.ty.clone())
            }
            Expr::StaticField { class, field, .. } => {
                self.program.field(class, field).map(|f| f.ty.clone())
            }
            Expr::Index { base, .. } => match self.ty(base)? {
                Type::Array(e) => Some(*e),
                _ => None,
            },
            Expr::Length { .. } => Some(Type::Int),
            Expr::Call {
                recv,
                class_recv,
                name,
                ..
            } => {
                let class = match (recv, class_recv) {
                    (Some(r), _) => match self.ty(r)? {
                        Type::Class(c) => c,
                        _ => return None,
                    },
                    (None, Some(c)) => {
                        if is_intrinsic_class(c) {
                            return intrinsic_return_type(c, name);
                        }
                        c.clone()
                    }
                    (None, None) => self.class.clone(),
                };
                self.program
                    .resolve_method(&class, name)
                    .map(|(_, m)| m.ret.clone())
            }
            Expr::New { class, .. } => Some(Type::Class(class.clone())),
            Expr::NewArray { elem, .. } => Some(Type::Array(Box::new(elem.clone()))),
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Not => Some(Type::Boolean),
                UnOp::Neg => self.ty(operand),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Some(Type::Boolean)
                } else {
                    match (self.ty(lhs), self.ty(rhs)) {
                        (Some(Type::Float), _) | (_, Some(Type::Float)) => Some(Type::Float),
                        (Some(Type::Str), _) | (_, Some(Type::Str)) => Some(Type::Str),
                        (a, _) => a,
                    }
                }
            }
            Expr::Cast { ty, .. } => Some(ty.clone()),
        }
    }

    /// Resolves the class whose method a call targets (`None` for
    /// intrinsics or unresolvable receivers).
    pub fn call_target_class(&self, expr: &Expr) -> Option<String> {
        let Expr::Call {
            recv, class_recv, ..
        } = expr
        else {
            return None;
        };
        match (recv, class_recv) {
            (Some(r), _) => match self.ty(r)? {
                Type::Class(c) => Some(c),
                _ => None,
            },
            (None, Some(c)) => {
                if is_intrinsic_class(c) {
                    None
                } else {
                    Some(c.clone())
                }
            }
            (None, None) => Some(self.class.clone()),
        }
    }
}

/// Return types of the intrinsic library calls.
pub fn intrinsic_return_type(class: &str, method: &str) -> Option<Type> {
    match (class, method) {
        // Device.* read inputs; integer by default, `readFloat`-style
        // names give floats.
        ("Device", m) => {
            if m.contains("Float") || m.contains("Temp") || m.contains("Hum") {
                Some(Type::Float)
            } else {
                Some(Type::Int)
            }
        }
        ("Out", _) => Some(Type::Void),
        ("Math", "abs" | "max" | "min" | "sqrt" | "sin" | "cos" | "tanh" | "floor" | "pow") => {
            Some(Type::Float)
        }
        ("Math", "absInt" | "maxInt" | "minInt") => Some(Type::Int),
        ("SSJavaArray", "insert" | "clear") => Some(Type::Void),
        ("System", _) => Some(Type::Void),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    #[test]
    fn resolves_expression_types() {
        let p = parse(
            "class A { int x; B b; float f() { float y = 1.0; return y + x; } }
             class B { int g() { return 1; } }",
        )
        .expect("parses");
        let m = p.method("A", "f").expect("method");
        let mut env = TypeEnv::for_method(&p, "A", m);
        env.bind_block(&m.body);
        assert_eq!(env.local("y"), Some(&Type::Float));
        // y + x is float.
        let Stmt::Return { value: Some(e), .. } = &m.body.stmts[1] else {
            panic!()
        };
        assert_eq!(env.ty(e), Some(Type::Float));
    }

    #[test]
    fn resolves_call_targets() {
        let p = parse(
            "class A { B b; void f() { b.g(); h(); Device.read(); } void h() {} }
             class B { void g() {} }",
        )
        .expect("parses");
        let m = p.method("A", "f").expect("m");
        let env = TypeEnv::for_method(&p, "A", m);
        let calls: Vec<&Expr> = m
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::ExprStmt { expr, .. } => Some(expr),
                _ => None,
            })
            .collect();
        assert_eq!(env.call_target_class(calls[0]), Some("B".to_string()));
        assert_eq!(env.call_target_class(calls[1]), Some("A".to_string()));
        assert_eq!(env.call_target_class(calls[2]), None);
    }

    #[test]
    fn array_indexing_yields_element_type() {
        let p = parse("class A { float[] d; float f() { return d[0]; } }").expect("parses");
        let m = p.method("A", "f").expect("m");
        let env = TypeEnv::for_method(&p, "A", m);
        let Stmt::Return { value: Some(e), .. } = &m.body.stmts[0] else {
            panic!()
        };
        assert_eq!(env.ty(e), Some(Type::Float));
    }

    #[test]
    fn inherited_fields_resolve() {
        let p = parse("class Base { int v; } class D extends Base { int f() { return v; } }")
            .expect("parses");
        let m = p.method("D", "f").expect("m");
        let env = TypeEnv::for_method(&p, "D", m);
        let Stmt::Return { value: Some(e), .. } = &m.body.stmts[0] else {
            panic!()
        };
        assert_eq!(env.ty(e), Some(Type::Int));
    }
}
