//! Dense, integer-interned dataflow engine.
//!
//! The original solver in [`crate::dataflow`] keeps per-block facts as
//! `BTreeSet<String>`: every meet allocates a fresh tree and every
//! transfer clones one, so fixpoint iteration spends its time in
//! allocator traffic and string compares. This module is the
//! production replacement: analysis entities (variable names, reaching
//! definition sites, heap paths) are interned to dense `u32` ids once,
//! facts become [`BitSet`]s (a `Vec<u64>` of machine words), meet is a
//! word-wise OR, transfer is `gen ∪ (in − kill)` over precomputed
//! per-block masks, and the worklist visits blocks in reverse postorder
//! with an on-queue bitmask instead of a linear scan.
//!
//! The string-keyed solver stays available to tests as an oracle; the
//! public liveness/reaching-defs entry points in `dataflow` convert
//! bitset results back to `BTreeSet` at the boundary, so downstream
//! consumers (the lint pass) see identical values.

use crate::cfg::{BlockId, Cfg};
use sjava_lattice::FnvHashMap;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// BitSet
// ---------------------------------------------------------------------

const BITS: usize = u64::BITS as usize;

/// A growable bit set over dense ids. Equality ignores trailing zero
/// words, so sets that grew to different capacities still compare by
/// contents.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty set pre-sized for ids `0..nbits`.
    pub fn with_capacity(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(BITS)],
        }
    }

    fn grow(&mut self, word: usize) {
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `bit`; returns true when it was newly added.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / BITS, 1u64 << (bit % BITS));
        self.grow(w);
        let had = self.words[w] & m != 0;
        self.words[w] |= m;
        !had
    }

    /// Removes `bit`; returns true when it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / BITS, 1u64 << (bit % BITS));
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & m != 0;
        self.words[w] &= !m;
        had
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = (bit / BITS, 1u64 << (bit % BITS));
        self.words.get(w).is_some_and(|x| x & m != 0)
    }

    /// `self ∪= other`; returns true when `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns true when `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self −= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let tz = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * BITS + tz)
            })
        })
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

// ---------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------

/// Interns values of any hashable type to dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Interner<T: std::hash::Hash + Eq + Clone> {
    map: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: std::hash::Hash + Eq + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            map: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Returns the id of `value`, interning it on first sight.
    pub fn intern(&mut self, value: &T) -> u32 {
        if let Some(&id) = self.map.get(value) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(value.clone());
        self.map.insert(value.clone(), id);
        id
    }

    /// The id of `value` when already interned.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.map.get(value).copied()
    }

    /// The value behind an id.
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Interned local-variable name (per method).
pub type VarId = u32;

/// String interner specialized for variable names: accepts `&str` keys
/// without allocating on lookup hits.
#[derive(Debug, Clone, Default)]
pub struct VarInterner {
    map: FnvHashMap<String, VarId>,
    names: Vec<String>,
}

impl VarInterner {
    /// An empty interner.
    pub fn new() -> Self {
        VarInterner::default()
    }

    /// Returns the id of `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }

    /// The id of `name` when already interned.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.map.get(name).copied()
    }

    /// The name behind an id.
    pub fn resolve(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

// ---------------------------------------------------------------------
// Heap-path interner
// ---------------------------------------------------------------------

/// Interned heap path (per analysis scope).
pub type PathId = u32;

/// Interns [`HeapPath`](crate::heappath::HeapPath)s into a tree of dense
/// ids: each node stores its parent and one component, so extending a
/// path by a field is a single hash probe and *prefix* queries walk the
/// parent chain instead of scanning a path set.
#[derive(Debug, Clone, Default)]
pub struct PathInterner {
    /// Component-name atoms (field names, roots).
    atoms: VarInterner,
    /// `node → (parent, component atom)`; roots have no parent.
    nodes: Vec<(Option<PathId>, VarId)>,
    roots: FnvHashMap<VarId, PathId>,
    children: FnvHashMap<(PathId, VarId), PathId>,
}

impl PathInterner {
    /// An empty interner.
    pub fn new() -> Self {
        PathInterner::default()
    }

    /// Interns a single-component root path.
    pub fn root(&mut self, name: &str) -> PathId {
        let atom = self.atoms.intern(name);
        if let Some(&id) = self.roots.get(&atom) {
            return id;
        }
        let id = self.nodes.len() as PathId;
        self.nodes.push((None, atom));
        self.roots.insert(atom, id);
        id
    }

    /// Interns `base.field`.
    pub fn append(&mut self, base: PathId, field: &str) -> PathId {
        let atom = self.atoms.intern(field);
        if let Some(&id) = self.children.get(&(base, atom)) {
            return id;
        }
        let id = self.nodes.len() as PathId;
        self.nodes.push((Some(base), atom));
        self.children.insert((base, atom), id);
        id
    }

    /// Interns a full path (root + components).
    pub fn intern_path(&mut self, path: &crate::heappath::HeapPath) -> PathId {
        let mut id = self.root(&path.0[0]);
        for comp in &path.0[1..] {
            id = self.append(id, comp);
        }
        id
    }

    /// Splices callee path components (everything after the callee's
    /// root) onto a caller base path — the `⊙` operator of Fig 4.4.
    pub fn splice(&mut self, base: PathId, callee: &crate::heappath::HeapPath) -> PathId {
        let mut id = base;
        for comp in &callee.0[1..] {
            id = self.append(id, comp);
        }
        id
    }

    /// Reconstructs the string form of a path.
    pub fn resolve(&self, id: PathId) -> crate::heappath::HeapPath {
        let mut comps = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let (parent, atom) = self.nodes[c as usize];
            comps.push(self.atoms.resolve(atom).to_string());
            cur = parent;
        }
        comps.reverse();
        crate::heappath::HeapPath(comps)
    }

    /// True when `set` contains `id` or any ancestor (proper prefix) of
    /// it — i.e. when some member of `set` is a prefix of `id`'s path.
    pub fn covered_by(&self, set: &BitSet, id: PathId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if set.contains(c as usize) {
                return true;
            }
            cur = self.nodes[c as usize].0;
        }
        false
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

// ---------------------------------------------------------------------
// Block ordering + gen/kill solver
// ---------------------------------------------------------------------

/// Reverse postorder over the CFG's successor edges; unreachable blocks
/// are appended afterwards in id order so every block still gets facts.
pub fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let n = cfg.len();
    let mut seen = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit child cursors (no recursion limit).
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry, 0)];
    seen[cfg.entry.0] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = &cfg.block(b).succs;
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !seen[s.0] {
                seen[s.0] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    for (i, visited) in seen.iter().enumerate() {
        if !visited {
            post.push(BlockId(i));
        }
    }
    post
}

/// Per-block input/output bitsets after solving.
#[derive(Debug, Clone)]
pub struct DenseSolution {
    /// Fact at block entry (in execution order).
    pub inputs: Vec<BitSet>,
    /// Fact at block exit.
    pub outputs: Vec<BitSet>,
}

/// Solves a union-meet gen/kill problem to fixpoint.
///
/// `forward` chooses the edge direction; blocks are visited in reverse
/// postorder (forward) or postorder (backward) so most functions settle
/// in one or two sweeps. `out = gen ∪ (in − kill)` per block.
pub fn solve_gen_kill(cfg: &Cfg, forward: bool, gen: &[BitSet], kill: &[BitSet]) -> DenseSolution {
    let n = cfg.len();
    let mut inputs = vec![BitSet::new(); n];
    let mut outputs = vec![BitSet::new(); n];

    let mut order = reverse_postorder(cfg);
    if !forward {
        order.reverse();
    }
    // priority[b] = position of b in the visit order, so re-queued blocks
    // pop in a stable, convergence-friendly order.
    let mut priority = vec![0usize; n];
    for (i, &b) in order.iter().enumerate() {
        priority[b.0] = i;
    }

    let mut queued = vec![true; n];
    // Simple index-queue: a deque of priorities would also work, but a
    // boolean mask plus repeated ordered sweeps keeps the hot loop free
    // of heap traffic.
    let mut work: std::collections::VecDeque<BlockId> = order.iter().copied().collect();
    let mut scratch = BitSet::new();

    while let Some(b) = work.pop_front() {
        queued[b.0] = false;
        let block = cfg.block(b);
        let incoming = if forward { &block.preds } else { &block.succs };

        scratch.clear();
        for &p in incoming {
            scratch.union_with(&outputs[p.0]);
        }

        // out = gen ∪ (in − kill)
        let mut out = scratch.clone();
        out.subtract(&kill[b.0]);
        out.union_with(&gen[b.0]);

        std::mem::swap(&mut inputs[b.0], &mut scratch);
        if out != outputs[b.0] {
            let dependents = if forward { &block.succs } else { &block.preds };
            for &d in dependents {
                if !queued[d.0] {
                    queued[d.0] = true;
                    work.push_back(d);
                }
            }
            outputs[b.0] = out;
        }
    }

    DenseSolution { inputs, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert!(s.contains(3) && s.contains(130) && !s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 130]);
        assert_eq!(s.count(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitSet::new();
        let mut b = BitSet::with_capacity(1024);
        a.insert(5);
        b.insert(5);
        assert_eq!(a, b);
        b.insert(900);
        assert_ne!(a, b);
        b.remove(900);
        assert_eq!(a, b);
    }

    #[test]
    fn union_intersect_subtract() {
        let a: BitSet = [1, 2, 3, 200].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 200]);
        assert!(!u.union_with(&b));
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 200]);
    }

    #[test]
    fn interner_round_trips() {
        let mut vi = VarInterner::new();
        let a = vi.intern("alpha");
        let b = vi.intern("beta");
        assert_ne!(a, b);
        assert_eq!(vi.intern("alpha"), a);
        assert_eq!(vi.resolve(b), "beta");
        assert_eq!(vi.get("gamma"), None);
        assert_eq!(vi.len(), 2);

        let mut gi: Interner<(usize, String)> = Interner::new();
        let x = gi.intern(&(1, "x".into()));
        assert_eq!(gi.intern(&(1, "x".into())), x);
        assert_eq!(gi.resolve(x), &(1, "x".to_string()));
    }

    #[test]
    fn path_interner_round_trips_and_prefixes() {
        use crate::heappath::HeapPath;
        let mut pi = PathInterner::new();
        let this = pi.root("this");
        let bin = pi.append(this, "bin");
        let dir0 = pi.append(bin, "dir0");
        assert_eq!(pi.append(this, "bin"), bin);
        assert_eq!(pi.resolve(dir0).0, vec!["this", "bin", "dir0"]);

        let p = HeapPath(vec!["this".into(), "bin".into(), "dir0".into()]);
        assert_eq!(pi.intern_path(&p), dir0);

        // covered_by = "some set member is a prefix of the path".
        let set: BitSet = [bin as usize].into_iter().collect();
        assert!(pi.covered_by(&set, dir0));
        assert!(pi.covered_by(&set, bin));
        assert!(!pi.covered_by(&set, this));

        // splice drops the callee root, keeps the rest.
        let callee = HeapPath(vec!["r".into(), "v".into()]);
        let spliced = pi.splice(bin, &callee);
        assert_eq!(pi.resolve(spliced).0, vec!["this", "bin", "v"]);
        assert_eq!(pi.splice(bin, &HeapPath(vec!["r".into()])), bin);
    }

    #[test]
    fn rpo_visits_entry_first() {
        let p = sjava_syntax::parse(
            "class A { void f(int p) { if (p > 0) { p = 1; } else { p = 2; } p = 3; } }",
        )
        .expect("parses");
        let cfg = crate::cfg::Cfg::build(&p.method("A", "f").expect("m").body);
        let order = reverse_postorder(&cfg);
        assert_eq!(order[0], cfg.entry);
        assert_eq!(order.len(), cfg.len());
        let mut sorted: Vec<usize> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.len()).collect::<Vec<_>>());
    }
}
