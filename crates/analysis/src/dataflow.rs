//! A generic worklist dataflow solver over [`Cfg`]s, with the two classic
//! instances used by the lint pass: live variables (backward) and
//! reaching definitions (forward).

use crate::cfg::{BasicBlock, BlockId, Cfg, Instr};
use sjava_syntax::ast::{Expr, LValue};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along control-flow edges.
    Forward,
    /// Facts flow against control-flow edges.
    Backward,
}

/// A dataflow problem over per-block facts.
pub trait Problem {
    /// The lattice of facts (sets with union meet here).
    type Fact: Clone + PartialEq + Default;

    /// Analysis direction.
    fn direction(&self) -> Direction;

    /// Meet of facts flowing into a block.
    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact;

    /// Transfer function over a whole block.
    fn transfer(&self, id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact;
}

/// Per-block input/output facts after solving.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at block entry (in execution order).
    pub inputs: Vec<F>,
    /// Fact at block exit.
    pub outputs: Vec<F>,
}

/// Runs the worklist algorithm to a fixed point.
pub fn solve<P: Problem>(cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    let n = cfg.len();
    let mut inputs: Vec<P::Fact> = vec![Default::default(); n];
    let mut outputs: Vec<P::Fact> = vec![Default::default(); n];
    let mut work: VecDeque<BlockId> = cfg.ids().collect();
    while let Some(b) = work.pop_front() {
        let (incoming, dependents): (Vec<BlockId>, Vec<BlockId>) = match problem.direction() {
            Direction::Forward => (cfg.block(b).preds.clone(), cfg.block(b).succs.clone()),
            Direction::Backward => (cfg.block(b).succs.clone(), cfg.block(b).preds.clone()),
        };
        let facts: Vec<&P::Fact> = incoming
            .iter()
            .map(|&p| match problem.direction() {
                Direction::Forward => &outputs[p.0],
                Direction::Backward => &outputs[p.0],
            })
            .collect();
        let input = problem.meet(&facts);
        let output = problem.transfer(b, cfg.block(b), &input);
        inputs[b.0] = input;
        if output != outputs[b.0] {
            outputs[b.0] = output;
            for d in dependents {
                if !work.contains(&d) {
                    work.push_back(d);
                }
            }
        }
    }
    Solution { inputs, outputs }
}

// ---------------------------------------------------------------------
// Live variables
// ---------------------------------------------------------------------

/// Backward liveness of local variable names.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveVariables;

/// Variables read by an expression.
pub fn expr_uses(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var { name, .. } => {
            out.insert(name.clone());
        }
        Expr::Field { base, .. } | Expr::Length { base, .. } => expr_uses(base, out),
        Expr::Index { base, index, .. } => {
            expr_uses(base, out);
            expr_uses(index, out);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                expr_uses(r, out);
            }
            for a in args {
                expr_uses(a, out);
            }
        }
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => expr_uses(operand, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_uses(lhs, out);
            expr_uses(rhs, out);
        }
        Expr::NewArray { len, .. } => expr_uses(len, out),
        _ => {}
    }
}

fn instr_uses(i: &Instr, out: &mut BTreeSet<String>) {
    match i {
        Instr::Decl { init, .. } => {
            if let Some(e) = init {
                expr_uses(e, out);
            }
        }
        Instr::Assign { lhs, rhs } => {
            expr_uses(rhs, out);
            match lhs {
                LValue::Field { base, .. } => expr_uses(base, out),
                LValue::Index { base, index, .. } => {
                    expr_uses(base, out);
                    expr_uses(index, out);
                }
                _ => {}
            }
        }
        Instr::Cond(e) | Instr::Eval(e) => expr_uses(e, out),
        Instr::Return(Some(e)) => expr_uses(e, out),
        Instr::Return(None) => {}
    }
}

/// The variable an instruction defines (kills), if any.
pub fn instr_def(i: &Instr) -> Option<&str> {
    match i {
        Instr::Decl {
            name,
            init: Some(_),
        } => Some(name),
        Instr::Assign {
            lhs: LValue::Var { name, .. },
            ..
        } => Some(name),
        _ => None,
    }
}

impl Problem for LiveVariables {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact {
        let mut out = BTreeSet::new();
        for f in facts {
            out.extend((*f).iter().cloned());
        }
        out
    }

    fn transfer(&self, _id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact {
        // Backward: walk instructions in reverse.
        let mut live = input.clone();
        for i in block.instrs.iter().rev() {
            if let Some(d) = instr_def(i) {
                live.remove(d);
            }
            instr_uses(i, &mut live);
        }
        live
    }
}

/// Liveness *before* each instruction of a block, in instruction order —
/// for per-statement queries (dead-store detection).
pub fn liveness_per_instr(
    cfg: &Cfg,
    solution: &Solution<BTreeSet<String>>,
    block: BlockId,
) -> Vec<BTreeSet<String>> {
    // outputs[block] is the fact at block entry for backward problems; to
    // get per-instruction facts walk backward from the meet of succs.
    let lv = LiveVariables;
    let succ_facts: Vec<&BTreeSet<String>> = cfg
        .block(block)
        .succs
        .iter()
        .map(|&s| &solution.outputs[s.0])
        .collect();
    let mut live = lv.meet(&succ_facts);
    let instrs = &cfg.block(block).instrs;
    let mut after: Vec<BTreeSet<String>> = vec![BTreeSet::new(); instrs.len()];
    for (idx, i) in instrs.iter().enumerate().rev() {
        after[idx] = live.clone();
        if let Some(d) = instr_def(i) {
            live.remove(d);
        }
        instr_uses(i, &mut live);
    }
    after
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// A definition site: `(block, instruction index, variable)`.
pub type DefSite = (usize, usize, String);

/// Forward reaching-definitions over local variables.
#[derive(Debug, Clone, Default)]
pub struct ReachingDefs {
    /// All definition sites per variable (precomputed).
    pub defs_of: BTreeMap<String, BTreeSet<DefSite>>,
}

impl ReachingDefs {
    /// Precomputes definition sites from a CFG.
    pub fn prepare(cfg: &Cfg) -> Self {
        let mut defs_of: BTreeMap<String, BTreeSet<DefSite>> = BTreeMap::new();
        for b in cfg.ids() {
            for (idx, i) in cfg.block(b).instrs.iter().enumerate() {
                if let Some(d) = instr_def(i) {
                    defs_of
                        .entry(d.to_string())
                        .or_default()
                        .insert((b.0, idx, d.to_string()));
                }
            }
        }
        ReachingDefs { defs_of }
    }
}

impl Problem for ReachingDefs {
    type Fact = BTreeSet<DefSite>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact {
        let mut out = BTreeSet::new();
        for f in facts {
            out.extend((*f).iter().cloned());
        }
        out
    }

    fn transfer(&self, id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact {
        let mut out = input.clone();
        for (idx, i) in block.instrs.iter().enumerate() {
            if let Some(d) = instr_def(i) {
                out.retain(|(_, _, v)| v != d);
                out.insert((id.0, idx, d.to_string()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    fn cfg_of(body_src: &str) -> Cfg {
        let src = format!("class A {{ void f(int p) {{ {body_src} }} }}");
        let p = parse(&src).expect("parses");
        Cfg::build(&p.method("A", "f").expect("m").body)
    }

    #[test]
    fn liveness_sees_loop_carried_values() {
        // `acc` is written at the end of the body and read at the top of
        // the next iteration: it must be live across the back edge.
        let c = cfg_of("int acc = 0; while (p > 0) { p = p - acc; acc = acc + 1; }");
        let sol = solve(&c, &LiveVariables);
        // At the loop-head block's entry, acc is live.
        let live_anywhere = sol.outputs.iter().any(|f| f.contains("acc"));
        assert!(live_anywhere);
    }

    #[test]
    fn dead_value_is_not_live() {
        let c = cfg_of("int dead = 5; p = 1;");
        let sol = solve(&c, &LiveVariables);
        for f in &sol.outputs {
            assert!(!f.contains("dead"));
        }
    }

    #[test]
    fn per_instr_liveness_orders_correctly() {
        let c = cfg_of("int x = 1; int y = x + 1; p = y;");
        let sol = solve(&c, &LiveVariables);
        let per = liveness_per_instr(&c, &sol, c.entry);
        // After `int x = 1`, x is live (read by y's init).
        assert!(per[0].contains("x"));
        // After `int y = ...`, x is dead, y live.
        assert!(!per[1].contains("x"));
        assert!(per[1].contains("y"));
        // After `p = y`, nothing is live.
        assert!(per[2].is_empty());
    }

    #[test]
    fn reaching_defs_prepare_finds_sites() {
        let c = cfg_of("int x = 1; if (p > 0) { x = 2; } p = x;");
        let rd = ReachingDefs::prepare(&c);
        assert_eq!(rd.defs_of["x"].len(), 2);
    }

    #[test]
    fn both_definitions_reach_the_join() {
        let c = cfg_of("int x = 1; if (p > 0) { x = 2; } p = x;");
        let rd = ReachingDefs::prepare(&c);
        let sol = solve(&c, &rd);
        // At some block, two distinct definitions of x reach together.
        let merged = sol
            .inputs
            .iter()
            .any(|f| f.iter().filter(|(_, _, v)| v == "x").count() == 2);
        assert!(
            merged,
            "the conditional redefinition must merge at the join"
        );
    }

    #[test]
    fn redefinition_kills_the_earlier_site() {
        let c = cfg_of("int x = 1; x = 2; p = x;");
        let rd = ReachingDefs::prepare(&c);
        let sol = solve(&c, &rd);
        // After the entry block, only the second definition survives.
        let entry_out = &sol.outputs[c.entry.0];
        assert_eq!(entry_out.iter().filter(|(_, _, v)| v == "x").count(), 1);
    }
}
