//! Dataflow analyses over [`Cfg`]s: live variables (backward) and
//! reaching definitions (forward), used by the lint pass.
//!
//! Both analyses run on the dense bitset engine in [`crate::dense`]:
//! variable names and definition sites are interned to `u32` ids, the
//! per-block transfer collapses to precomputed gen/kill masks, and the
//! worklist visits blocks in (reverse) postorder. The public entry
//! points [`live_variables`] and [`reaching_defs`] convert the bitsets
//! back to `BTreeSet`s, so callers observe exactly the facts the
//! original string-keyed solver produced — a property the randomized
//! oracle test at the bottom of this file checks against the legacy
//! [`solve`] implementation, which is kept compiled unconditionally so
//! the differential fuzz harness (`sjava fuzz --oracle=check`) can pit
//! the two engines against each other on adversarial programs.

use crate::cfg::{BasicBlock, BlockId, Cfg, Instr};
use crate::dense::{solve_gen_kill, BitSet, Interner, VarInterner};
use sjava_syntax::ast::{Expr, LValue};
use std::collections::BTreeSet;

/// Per-block input/output facts after solving.
///
/// Orientation note: for backward problems `outputs[b]` is the fact at
/// block *entry* (the result of the block's transfer) and `inputs[b]`
/// is the meet over successors, mirroring the worklist's data layout.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Meet of facts flowing into the block's transfer.
    pub inputs: Vec<F>,
    /// Result of the block's transfer.
    pub outputs: Vec<F>,
}

// ---------------------------------------------------------------------
// Use/def extraction
// ---------------------------------------------------------------------

/// Visits every variable an expression reads.
pub fn expr_uses_with<F: FnMut(&str)>(e: &Expr, visit: &mut F) {
    match e {
        Expr::Var { name, .. } => visit(name),
        Expr::Field { base, .. } | Expr::Length { base, .. } => expr_uses_with(base, visit),
        Expr::Index { base, index, .. } => {
            expr_uses_with(base, visit);
            expr_uses_with(index, visit);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                expr_uses_with(r, visit);
            }
            for a in args {
                expr_uses_with(a, visit);
            }
        }
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => expr_uses_with(operand, visit),
        Expr::Binary { lhs, rhs, .. } => {
            expr_uses_with(lhs, visit);
            expr_uses_with(rhs, visit);
        }
        Expr::NewArray { len, .. } => expr_uses_with(len, visit),
        _ => {}
    }
}

/// Variables read by an expression, collected into a set.
pub fn expr_uses(e: &Expr, out: &mut BTreeSet<String>) {
    expr_uses_with(e, &mut |name| {
        out.insert(name.to_string());
    });
}

fn instr_uses_with<F: FnMut(&str)>(i: &Instr, visit: &mut F) {
    match i {
        Instr::Decl { init, .. } => {
            if let Some(e) = init {
                expr_uses_with(e, visit);
            }
        }
        Instr::Assign { lhs, rhs } => {
            expr_uses_with(rhs, visit);
            match lhs {
                LValue::Field { base, .. } => expr_uses_with(base, visit),
                LValue::Index { base, index, .. } => {
                    expr_uses_with(base, visit);
                    expr_uses_with(index, visit);
                }
                _ => {}
            }
        }
        Instr::Cond(e) | Instr::Eval(e) => expr_uses_with(e, visit),
        Instr::Return(Some(e)) => expr_uses_with(e, visit),
        Instr::Return(None) => {}
    }
}

fn instr_uses(i: &Instr, out: &mut BTreeSet<String>) {
    instr_uses_with(i, &mut |name| {
        out.insert(name.to_string());
    });
}

/// The variable an instruction defines (kills), if any.
pub fn instr_def(i: &Instr) -> Option<&str> {
    match i {
        Instr::Decl {
            name,
            init: Some(_),
        } => Some(name),
        Instr::Assign {
            lhs: LValue::Var { name, .. },
            ..
        } => Some(name),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Live variables (dense)
// ---------------------------------------------------------------------

/// Backward liveness of local variable names over the whole CFG.
///
/// `outputs[b]` holds the variables live at entry to block `b`,
/// `inputs[b]` those live at its exit.
pub fn live_variables(cfg: &Cfg) -> Solution<BTreeSet<String>> {
    let n = cfg.len();
    let mut vars = VarInterner::new();
    let mut gen = vec![BitSet::new(); n];
    let mut kill = vec![BitSet::new(); n];
    for b in cfg.ids() {
        // Walking instructions backward folds the whole block into one
        // gen/kill pair: a use before (above) a kill re-gens the var.
        let (g, k) = (&mut gen[b.0], &mut kill[b.0]);
        for i in cfg.block(b).instrs.iter().rev() {
            if let Some(d) = instr_def(i) {
                let id = vars.intern(d) as usize;
                g.remove(id);
                k.insert(id);
            }
            instr_uses_with(i, &mut |name| {
                g.insert(vars.intern(name) as usize);
            });
        }
    }
    let sol = solve_gen_kill(cfg, false, &gen, &kill);
    let to_set = |s: &BitSet| -> BTreeSet<String> {
        s.iter()
            .map(|id| vars.resolve(id as u32).to_string())
            .collect()
    };
    Solution {
        inputs: sol.inputs.iter().map(to_set).collect(),
        outputs: sol.outputs.iter().map(to_set).collect(),
    }
}

/// Liveness *before* each instruction of a block, in instruction order —
/// for per-statement queries (dead-store detection).
pub fn liveness_per_instr(
    cfg: &Cfg,
    solution: &Solution<BTreeSet<String>>,
    block: BlockId,
) -> Vec<BTreeSet<String>> {
    // outputs[block] is the fact at block entry for backward problems; to
    // get per-instruction facts walk backward from the meet of succs.
    let mut live: BTreeSet<String> = BTreeSet::new();
    for &s in &cfg.block(block).succs {
        live.extend(solution.outputs[s.0].iter().cloned());
    }
    let instrs = &cfg.block(block).instrs;
    let mut after: Vec<BTreeSet<String>> = vec![BTreeSet::new(); instrs.len()];
    for (idx, i) in instrs.iter().enumerate().rev() {
        after[idx] = live.clone();
        if let Some(d) = instr_def(i) {
            live.remove(d);
        }
        instr_uses(i, &mut live);
    }
    after
}

// ---------------------------------------------------------------------
// Reaching definitions (dense)
// ---------------------------------------------------------------------

/// A definition site: `(block, instruction index, variable)`.
pub type DefSite = (usize, usize, String);

/// Forward reaching-definitions over local variables.
///
/// `inputs[b]` holds the definitions reaching entry of block `b`,
/// `outputs[b]` those reaching its exit.
pub fn reaching_defs(cfg: &Cfg) -> Solution<BTreeSet<DefSite>> {
    let n = cfg.len();
    let mut vars = VarInterner::new();
    let mut sites: Interner<(usize, usize, u32)> = Interner::new();
    // sites_of[var] = every definition site of that variable, for kill.
    let mut sites_of: Vec<BitSet> = Vec::new();
    for b in cfg.ids() {
        for (idx, i) in cfg.block(b).instrs.iter().enumerate() {
            if let Some(d) = instr_def(i) {
                let v = vars.intern(d);
                let s = sites.intern(&(b.0, idx, v));
                if vars.len() > sites_of.len() {
                    sites_of.resize(vars.len(), BitSet::new());
                }
                sites_of[v as usize].insert(s as usize);
            }
        }
    }
    let mut gen = vec![BitSet::new(); n];
    let mut kill = vec![BitSet::new(); n];
    for b in cfg.ids() {
        for (idx, i) in cfg.block(b).instrs.iter().enumerate() {
            if let Some(d) = instr_def(i) {
                let v = vars.intern(d);
                let s = sites.get(&(b.0, idx, v)).expect("site interned above");
                // A later definition in the same block kills earlier
                // in-block gens of the same variable.
                gen[b.0].subtract(&sites_of[v as usize]);
                gen[b.0].insert(s as usize);
                kill[b.0].union_with(&sites_of[v as usize]);
            }
        }
    }
    let sol = solve_gen_kill(cfg, true, &gen, &kill);
    let to_set = |s: &BitSet| -> BTreeSet<DefSite> {
        s.iter()
            .map(|id| {
                let &(blk, idx, v) = sites.resolve(id as u32);
                (blk, idx, vars.resolve(v).to_string())
            })
            .collect()
    };
    Solution {
        inputs: sol.inputs.iter().map(to_set).collect(),
        outputs: sol.outputs.iter().map(to_set).collect(),
    }
}

// ---------------------------------------------------------------------
// Legacy string-keyed solver — the oracle for the dense engine
// ---------------------------------------------------------------------

/// Analysis direction of the legacy generic solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along control-flow edges.
    Forward,
    /// Facts flow against control-flow edges.
    Backward,
}

/// A dataflow problem over per-block facts (legacy oracle interface).
pub trait Problem {
    /// The lattice of facts (sets with union meet here).
    type Fact: Clone + PartialEq + Default;

    /// Analysis direction.
    fn direction(&self) -> Direction;

    /// Meet of facts flowing into a block.
    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact;

    /// Transfer function over a whole block.
    fn transfer(&self, id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact;
}

/// Runs the legacy worklist algorithm to a fixed point. Retained as the
/// executable specification the dense engine is property-tested against.
pub fn solve<P: Problem>(cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    use std::collections::VecDeque;
    let n = cfg.len();
    let mut inputs: Vec<P::Fact> = vec![Default::default(); n];
    let mut outputs: Vec<P::Fact> = vec![Default::default(); n];
    let mut work: VecDeque<BlockId> = cfg.ids().collect();
    while let Some(b) = work.pop_front() {
        let block = cfg.block(b);
        let incoming: &[BlockId] = match problem.direction() {
            Direction::Forward => &block.preds,
            Direction::Backward => &block.succs,
        };
        let facts: Vec<&P::Fact> = incoming.iter().map(|&p| &outputs[p.0]).collect();
        let input = problem.meet(&facts);
        let output = problem.transfer(b, block, &input);
        inputs[b.0] = input;
        if output != outputs[b.0] {
            outputs[b.0] = output;
            let dependents: &[BlockId] = match problem.direction() {
                Direction::Forward => &block.succs,
                Direction::Backward => &block.preds,
            };
            for &d in dependents {
                if !work.contains(&d) {
                    work.push_back(d);
                }
            }
        }
    }
    Solution { inputs, outputs }
}

/// Backward liveness of local variable names (legacy oracle).
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveVariables;

impl Problem for LiveVariables {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact {
        let mut out = BTreeSet::new();
        for f in facts {
            out.extend((*f).iter().cloned());
        }
        out
    }

    fn transfer(&self, _id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact {
        // Backward: walk instructions in reverse.
        let mut live = input.clone();
        for i in block.instrs.iter().rev() {
            if let Some(d) = instr_def(i) {
                live.remove(d);
            }
            instr_uses(i, &mut live);
        }
        live
    }
}

/// Forward reaching-definitions over local variables (legacy oracle).
#[derive(Debug, Clone, Default)]
pub struct ReachingDefs {
    /// All definition sites per variable (precomputed).
    pub defs_of: std::collections::BTreeMap<String, BTreeSet<DefSite>>,
}

impl ReachingDefs {
    /// Precomputes definition sites from a CFG.
    pub fn prepare(cfg: &Cfg) -> Self {
        let mut defs_of: std::collections::BTreeMap<String, BTreeSet<DefSite>> = Default::default();
        for b in cfg.ids() {
            for (idx, i) in cfg.block(b).instrs.iter().enumerate() {
                if let Some(d) = instr_def(i) {
                    defs_of
                        .entry(d.to_string())
                        .or_default()
                        .insert((b.0, idx, d.to_string()));
                }
            }
        }
        ReachingDefs { defs_of }
    }
}

impl Problem for ReachingDefs {
    type Fact = BTreeSet<DefSite>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn meet(&self, facts: &[&Self::Fact]) -> Self::Fact {
        let mut out = BTreeSet::new();
        for f in facts {
            out.extend((*f).iter().cloned());
        }
        out
    }

    fn transfer(&self, id: BlockId, block: &BasicBlock, input: &Self::Fact) -> Self::Fact {
        let mut out = input.clone();
        for (idx, i) in block.instrs.iter().enumerate() {
            if let Some(d) = instr_def(i) {
                out.retain(|(_, _, v)| v != d);
                out.insert((id.0, idx, d.to_string()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    fn cfg_of(body_src: &str) -> Cfg {
        let src = format!("class A {{ void f(int p) {{ {body_src} }} }}");
        let p = parse(&src).expect("parses");
        Cfg::build(&p.method("A", "f").expect("m").body)
    }

    #[test]
    fn liveness_sees_loop_carried_values() {
        // `acc` is written at the end of the body and read at the top of
        // the next iteration: it must be live across the back edge.
        let c = cfg_of("int acc = 0; while (p > 0) { p = p - acc; acc = acc + 1; }");
        let sol = live_variables(&c);
        // At the loop-head block's entry, acc is live.
        let live_anywhere = sol.outputs.iter().any(|f| f.contains("acc"));
        assert!(live_anywhere);
    }

    #[test]
    fn dead_value_is_not_live() {
        let c = cfg_of("int dead = 5; p = 1;");
        let sol = live_variables(&c);
        for f in &sol.outputs {
            assert!(!f.contains("dead"));
        }
    }

    #[test]
    fn per_instr_liveness_orders_correctly() {
        let c = cfg_of("int x = 1; int y = x + 1; p = y;");
        let sol = live_variables(&c);
        let per = liveness_per_instr(&c, &sol, c.entry);
        // After `int x = 1`, x is live (read by y's init).
        assert!(per[0].contains("x"));
        // After `int y = ...`, x is dead, y live.
        assert!(!per[1].contains("x"));
        assert!(per[1].contains("y"));
        // After `p = y`, nothing is live.
        assert!(per[2].is_empty());
    }

    #[test]
    fn reaching_defs_prepare_finds_sites() {
        let c = cfg_of("int x = 1; if (p > 0) { x = 2; } p = x;");
        let rd = ReachingDefs::prepare(&c);
        assert_eq!(rd.defs_of["x"].len(), 2);
    }

    #[test]
    fn both_definitions_reach_the_join() {
        let c = cfg_of("int x = 1; if (p > 0) { x = 2; } p = x;");
        let sol = reaching_defs(&c);
        // At some block, two distinct definitions of x reach together.
        let merged = sol
            .inputs
            .iter()
            .any(|f| f.iter().filter(|(_, _, v)| v == "x").count() == 2);
        assert!(
            merged,
            "the conditional redefinition must merge at the join"
        );
    }

    #[test]
    fn redefinition_kills_the_earlier_site() {
        let c = cfg_of("int x = 1; x = 2; p = x;");
        let sol = reaching_defs(&c);
        // After the entry block, only the second definition survives.
        let entry_out = &sol.outputs[c.entry.0];
        assert_eq!(entry_out.iter().filter(|(_, _, v)| v == "x").count(), 1);
    }

    /// Renders a random structured method body from a seed: straight-line
    /// assignments and declarations over a fixed variable pool, nested
    /// `if`/`while`/`for` up to depth 3, and `break`/`continue` inside
    /// loops — every control shape `Cfg::build` can produce.
    fn gen_body(seed: u64) -> String {
        fn next(s: &mut u64) -> u64 {
            *s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn gen(s: &mut u64, depth: usize, budget: &mut usize, in_loop: bool, out: &mut String) {
            while *budget > 0 && !next(s).is_multiple_of(4) {
                *budget -= 1;
                let (i, j, k) = (next(s) % 5, next(s) % 5, next(s) % 5);
                match next(s) % 8 {
                    0 | 1 => out.push_str(&format!("x{i} = x{j} + x{k};")),
                    2 => out.push_str(&format!("int x{i} = x{j} * 2;")),
                    3 => out.push_str(&format!("x{i} = x{i} + 1;")),
                    4 if depth > 0 => {
                        out.push_str(&format!("if (x{j} > 0) {{"));
                        gen(s, depth - 1, budget, in_loop, out);
                        out.push('}');
                        if next(s).is_multiple_of(2) {
                            out.push_str("else {");
                            gen(s, depth - 1, budget, in_loop, out);
                            out.push('}');
                        }
                    }
                    5 if depth > 0 => {
                        out.push_str(&format!("while (x{j} > 0) {{ x{j} = x{j} - 1;"));
                        gen(s, depth - 1, budget, true, out);
                        out.push('}');
                    }
                    6 if depth > 0 => {
                        out.push_str(&format!(
                            "for (int t{depth} = 0; t{depth} < 7; t{depth}++) {{"
                        ));
                        gen(s, depth - 1, budget, true, out);
                        out.push('}');
                    }
                    7 if in_loop => {
                        let exit = if next(s).is_multiple_of(2) {
                            "break"
                        } else {
                            "continue"
                        };
                        out.push_str(&format!("if (x{k} > 3) {{ {exit}; }}"));
                    }
                    _ => out.push_str(&format!("x{i} = x{j} - x{k};")),
                }
            }
        }
        let mut s = seed;
        let mut out = String::from("int x0 = p; int x1 = p + 1;");
        let mut budget = 24;
        gen(&mut s, 3, &mut budget, false, &mut out);
        out.push_str("p = x0;");
        out
    }

    proptest::proptest! {
        /// The dense bitset engine must agree exactly with the legacy
        /// string-keyed solver on randomized CFGs — both the liveness and
        /// the reaching-definitions instances, inputs and outputs alike.
        #[test]
        fn dense_engine_matches_legacy_oracle(seed in 0u64..1_000_000_000) {
            let body = gen_body(seed);
            let c = cfg_of(&body);

            let dense = live_variables(&c);
            let legacy = solve(&c, &LiveVariables);
            proptest::prop_assert_eq!(&dense.inputs, &legacy.inputs, "live-in mismatch: {}", body);
            proptest::prop_assert_eq!(&dense.outputs, &legacy.outputs, "live-out mismatch: {}", body);

            let dense_rd = reaching_defs(&c);
            let legacy_rd = solve(&c, &ReachingDefs::prepare(&c));
            proptest::prop_assert_eq!(&dense_rd.inputs, &legacy_rd.inputs, "rd-in mismatch: {}", body);
            proptest::prop_assert_eq!(&dense_rd.outputs, &legacy_rd.outputs, "rd-out mismatch: {}", body);
        }
    }

    #[test]
    fn dense_matches_legacy_on_structured_sources() {
        for body in [
            "int x = 1; int y = x + 1; p = y;",
            "int acc = 0; while (p > 0) { p = p - acc; acc = acc + 1; }",
            "int x = 1; if (p > 0) { x = 2; } else { int z = x; x = z + 3; } p = x;",
            "int i = 0; for (int k = 0; k < 9; k++) { if (k > 2) { i = i + k; continue; } i = 0; } p = i;",
            "int a = 1; while (p > 0) { if (a > 5) { break; } a = a + 1; } p = a;",
        ] {
            let c = cfg_of(body);
            let dense = live_variables(&c);
            let legacy = solve(&c, &LiveVariables);
            assert_eq!(dense.inputs, legacy.inputs, "live-in mismatch: {body}");
            assert_eq!(dense.outputs, legacy.outputs, "live-out mismatch: {body}");

            let dense_rd = reaching_defs(&c);
            let legacy_rd = solve(&c, &ReachingDefs::prepare(&c));
            assert_eq!(dense_rd.inputs, legacy_rd.inputs, "rd-in mismatch: {body}");
            assert_eq!(
                dense_rd.outputs, legacy_rd.outputs,
                "rd-out mismatch: {body}"
            );
        }
    }
}
