//! Heap paths (§4.2.1) and the auxiliary operators of Fig 4.5.
//!
//! A heap path is an n-tuple of reference names describing how a memory
//! location is reached from a method parameter, `this`, or a static field.
//! Array contents are modelled by the pseudo-field `element`, as in the
//! paper's array handling.

use std::fmt;

/// The pseudo-field denoting any array element.
pub const ELEMENT: &str = "element";

/// A heap path: root followed by field names.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapPath(pub Vec<String>);

impl HeapPath {
    /// A single-element path rooted at a variable/parameter name.
    pub fn root(name: impl Into<String>) -> Self {
        HeapPath(vec![name.into()])
    }

    /// A path rooted at a static field `Class.field`.
    pub fn static_root(class: &str, field: &str) -> Self {
        HeapPath(vec![format!("{class}.{field}")])
    }

    /// The `⊕` operator: appends one field.
    pub fn append(&self, field: &str) -> HeapPath {
        let mut v = self.0.clone();
        v.push(field.to_string());
        HeapPath(v)
    }

    /// The `⊙` operator: splices a callee path's tail onto a caller path —
    /// `⟨a0..an⟩ ⊙ ⟨b0..bm⟩ = ⟨a0..an, b1..bm⟩` (drops the callee's root).
    pub fn splice(&self, callee: &HeapPath) -> HeapPath {
        let mut v = self.0.clone();
        v.extend(callee.0.iter().skip(1).cloned());
        HeapPath(v)
    }

    /// The `Eq` predicate of Fig 4.5: do two paths share a root?
    pub fn same_root(&self, other: &HeapPath) -> bool {
        self.0.first() == other.0.first()
    }

    /// The root name.
    pub fn root_name(&self) -> &str {
        self.0.first().map(|s| s.as_str()).unwrap_or("")
    }

    /// The `Pre` predicate of Fig 4.5: is `prefix` a prefix of `self`?
    pub fn has_prefix(&self, prefix: &HeapPath) -> bool {
        prefix.0.len() <= self.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// Length of the path.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the path is empty (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for HeapPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}⟩", self.0.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_prefix() {
        let p = HeapPath::root("this").append("bin").append("dir0");
        assert!(p.has_prefix(&HeapPath::root("this")));
        assert!(p.has_prefix(&HeapPath::root("this").append("bin")));
        assert!(p.has_prefix(&p));
        assert!(!p.has_prefix(&HeapPath::root("this").append("dir")));
        assert!(!HeapPath::root("this").has_prefix(&p));
    }

    #[test]
    fn splice_replaces_root() {
        // Caller arg path ⟨d,g⟩ passed as parameter x; callee read ⟨x,y,a⟩
        // becomes ⟨d,g,y,a⟩ (the §4.2.1 call-site example).
        let arg = HeapPath::root("d").append("g");
        let callee = HeapPath(vec!["x".into(), "y".into(), "a".into()]);
        assert_eq!(
            arg.splice(&callee),
            HeapPath(vec!["d".into(), "g".into(), "y".into(), "a".into()])
        );
    }

    #[test]
    fn same_root_checks_first() {
        let a = HeapPath::root("x").append("f");
        let b = HeapPath::root("x").append("g");
        let c = HeapPath::root("y");
        assert!(a.same_root(&b));
        assert!(!a.same_root(&c));
    }
}
