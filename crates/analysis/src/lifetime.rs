//! Allocation-lifetime analysis — the §8 "Memory Management" extension.
//!
//! The paper observes that "the properties checked by the current analysis
//! imply that all objects allocated in the main event loop are eventually
//! not accessed in the future. A simple analysis … can produce symbolic
//! bounds on the lifetime of such objects." This module implements that
//! analysis: every allocation site reachable from the event loop is
//! classified, and — provided the program passed the eviction analysis —
//! given a bound in event-loop iterations. A runtime could reclaim such
//! objects with per-iteration arenas instead of a tracing GC.

use crate::callgraph::{CallGraph, MethodRef};
use crate::jtype::TypeEnv;
use sjava_syntax::ast::*;
use sjava_syntax::span::Span;

/// How an allocated object leaves (or fails to leave) its allocation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escape {
    /// Never stored to the heap or returned: dead at iteration end.
    Local,
    /// Stored into a field/array/static: reachable until the eviction
    /// analysis's overwrite of that location — one extra iteration.
    Heap,
    /// Returned to the caller: bounded by the caller's use (conservatively
    /// treated like a heap escape).
    Returned,
}

/// A classified allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationSite {
    /// Method containing the allocation.
    pub method: MethodRef,
    /// Source span of the `new` expression.
    pub span: Span,
    /// Allocated class name (or `"<array>"`).
    pub class: String,
    /// Whether the allocation executes inside the event loop.
    pub in_event_loop: bool,
    /// Escape classification.
    pub escape: Escape,
    /// Symbolic lifetime bound in event-loop iterations (`None` for
    /// allocations outside the loop, which live for the whole run).
    pub bound_iterations: Option<u32>,
}

/// Classifies every allocation reachable from the event loop.
///
/// The bounds are only meaningful for programs that already passed the
/// eviction analysis: eviction guarantees heap locations are overwritten
/// each iteration, so a heap-escaping object is unreachable one iteration
/// after the one that allocated it.
pub fn analyze_lifetimes(program: &Program, cg: &CallGraph) -> Vec<AllocationSite> {
    let mut out = Vec::new();
    for mref in &cg.topo {
        let Some((decl_class, method)) = program.resolve_method(&mref.0, &mref.1) else {
            continue;
        };
        if method.annots.trusted || decl_class.annots.trusted {
            continue;
        }
        let is_entry = *mref == cg.entry;
        // Entry method: statements before the loop are startup
        // allocations; inside the loop, per-iteration.
        let mut tenv = TypeEnv::for_method(program, &mref.0, method);
        tenv.bind_block(&method.body);
        let mut cx = Cx {
            mref: mref.clone(),
            out: &mut out,
            in_loop: !is_entry, // non-entry reachable methods run per-iteration
            tenv,
        };
        cx.walk_block(&method.body);
    }
    out
}

struct Cx<'a> {
    mref: MethodRef,
    out: &'a mut Vec<AllocationSite>,
    in_loop: bool,
    tenv: TypeEnv<'a>,
}

impl Cx<'_> {
    fn record(&mut self, span: Span, class: String, escape: Escape) {
        let bound = if self.in_loop {
            Some(match escape {
                Escape::Local => 1,
                Escape::Heap | Escape::Returned => 2,
            })
        } else {
            None
        };
        self.out.push(AllocationSite {
            method: self.mref.clone(),
            span,
            class,
            in_event_loop: self.in_loop,
            escape,
            bound_iterations: bound,
        });
    }

    /// Scans an expression for allocations, with the escape class implied
    /// by the surrounding context.
    fn scan_expr(&mut self, e: &Expr, escape: Escape) {
        match e {
            Expr::New { class, span } => self.record(*span, class.clone(), escape),
            Expr::NewArray { span, len, .. } => {
                self.record(*span, "<array>".to_string(), escape);
                self.scan_expr(len, Escape::Local);
            }
            Expr::Cast { operand, .. } | Expr::Unary { operand, .. } => {
                self.scan_expr(operand, escape)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs, Escape::Local);
                self.scan_expr(rhs, Escape::Local);
            }
            Expr::Field { base, .. } | Expr::Length { base, .. } => {
                self.scan_expr(base, Escape::Local)
            }
            Expr::Index { base, index, .. } => {
                self.scan_expr(base, Escape::Local);
                self.scan_expr(index, Escape::Local);
            }
            Expr::Call { recv, args, .. } => {
                if let Some(r) = recv {
                    self.scan_expr(r, Escape::Local);
                }
                // An allocation passed as an argument may be stored by the
                // callee: conservatively a heap escape (exactly what
                // @DELEGATE permits).
                for a in args {
                    self.scan_expr(a, Escape::Heap);
                }
            }
            _ => {}
        }
    }

    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    // Bound to a local: stays Local unless later stored —
                    // a flow-insensitive approximation would track the
                    // variable; we instead look at how the value is built.
                    self.scan_expr(e, Escape::Local);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                // Unqualified field assignments are heap stores too;
                // only genuinely local variables keep the value in the
                // frame.
                let escape = match lhs {
                    LValue::Var { name, .. } if self.tenv.local(name).is_some() => Escape::Local,
                    _ => Escape::Heap,
                };
                self.scan_expr(rhs, escape);
                if let LValue::Index { base, index, .. } = lhs {
                    self.scan_expr(base, Escape::Local);
                    self.scan_expr(index, Escape::Local);
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.scan_expr(cond, Escape::Local);
                self.walk_block(then_blk);
                if let Some(e) = else_blk {
                    self.walk_block(e);
                }
            }
            Stmt::While {
                kind, cond, body, ..
            } => {
                self.scan_expr(cond, Escape::Local);
                let was = self.in_loop;
                if *kind == LoopKind::EventLoop {
                    self.in_loop = true;
                }
                self.walk_block(body);
                self.in_loop = was;
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                if let Some(c) = cond {
                    self.scan_expr(c, Escape::Local);
                }
                if let Some(u) = update {
                    self.walk_stmt(u);
                }
                self.walk_block(body);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.scan_expr(v, Escape::Returned);
                }
            }
            Stmt::ExprStmt { expr, .. } => self.scan_expr(expr, Escape::Local),
            Stmt::Block(b) => self.walk_block(b),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use sjava_syntax::diag::Diagnostics;
    use sjava_syntax::parse;

    fn sites(src: &str) -> Vec<AllocationSite> {
        let p = parse(src).expect("parses");
        let mut d = Diagnostics::new();
        let cg = callgraph::build(&p, &mut d).expect("cg");
        analyze_lifetimes(&p, &cg)
    }

    #[test]
    fn startup_allocations_have_no_bound() {
        let s = sites(
            "class A { R r; void main() { r = new R();
                SSJAVA: while (true) { Out.emit(Device.read()); } } }
             class R { int v; }",
        );
        assert_eq!(s.len(), 1);
        assert!(!s[0].in_event_loop);
        assert_eq!(s[0].bound_iterations, None);
    }

    #[test]
    fn loop_local_allocation_dies_in_one_iteration() {
        let s = sites(
            "class A { void main() { SSJAVA: while (true) {
                R t = new R();
                t.v = Device.read();
                Out.emit(t.v);
            } } } class R { int v; }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].escape, Escape::Local);
        assert_eq!(s[0].bound_iterations, Some(1));
    }

    #[test]
    fn heap_escaping_allocation_bounded_by_two() {
        let s = sites(
            "class A { R cur; void main() { SSJAVA: while (true) {
                cur = new R();
                cur.v = Device.read();
                Out.emit(cur.v);
            } } } class R { int v; }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].escape, Escape::Heap);
        assert_eq!(s[0].bound_iterations, Some(2));
    }

    #[test]
    fn callee_allocations_count_as_per_iteration() {
        let s = sites(
            "class A { int v; void main() { SSJAVA: while (true) { step(); Out.emit(v); } }
               void step() { R t = new R(); v = Device.read() + t.v; } }
             class R { int v; }",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].in_event_loop);
        assert_eq!(s[0].bound_iterations, Some(1));
    }

    #[test]
    fn returned_allocation_is_conservative() {
        let s = sites(
            "class A { int v; void main() { SSJAVA: while (true) { R t = make(); v = t.v; Out.emit(v); } }
               R make() { return new R(); } }
             class R { int v; }",
        );
        let site = s.iter().find(|x| x.method.1 == "make").expect("found");
        assert_eq!(site.escape, Escape::Returned);
        assert_eq!(site.bound_iterations, Some(2));
    }
}
