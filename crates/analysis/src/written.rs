//! The definitely-written (eviction) analysis of §4.2.
//!
//! Ensures that every value read inside the event loop is either
//! (1) loop-invariant, (2) overwritten in the current iteration before the
//! read, or (3) overwritten in every loop iteration — so no stale,
//! corrupted value can survive.
//!
//! The analysis computes, per method, the read set `R`, may-write set `OW`
//! and must-write set `WT` over [`HeapPath`]s (Fig 4.4), propagates callee
//! effects through call sites with the `⊙` operator, and finally checks the
//! event loop (§4.2.1). Local variables are checked with a
//! definite-assignment analysis.

use crate::callgraph::{CallGraph, MethodRef};
use crate::dense::{BitSet, PathId, PathInterner, VarId, VarInterner};
use crate::heappath::{HeapPath, ELEMENT};
use crate::jtype::TypeEnv;
use crate::shard::ShardInput;
use sjava_lattice::FnvHashMap;
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::collections::{BTreeMap, BTreeSet};

/// Per-method read/write effect summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MethodSummary {
    /// `R^m`: heap paths read before being overwritten in the method.
    pub reads: BTreeSet<HeapPath>,
    /// `OW^m`: heap paths that may be written.
    pub may_writes: BTreeSet<HeapPath>,
    /// `WT^m`: heap paths definitely written on every path.
    pub must_writes: BTreeSet<HeapPath>,
}

/// A heap path the event loop reads that may carry stale state, and
/// where it is read.
pub type StalePath = (HeapPath, Span);
/// A local variable the event loop reads before definitely assigning it.
pub type StaleLocal = (String, Span);

/// Result of the whole-program eviction analysis.
#[derive(Debug, Clone)]
pub struct EvictionResult {
    /// Summaries per reachable method.
    pub summaries: BTreeMap<MethodRef, MethodSummary>,
    /// Heap paths read by the event loop that failed all three conditions.
    pub stale_paths: Vec<StalePath>,
    /// Local variables read in the event loop that failed the
    /// definite-assignment conditions.
    pub stale_locals: Vec<StaleLocal>,
}

impl EvictionResult {
    /// Whether the program passed the eviction check.
    pub fn is_ok(&self) -> bool {
        self.stale_paths.is_empty() && self.stale_locals.is_empty()
    }
}

/// Runs the eviction analysis over all methods reachable from the event
/// loop and checks the loop body; failures are also reported into `diags`.
pub fn analyze(program: &Program, cg: &CallGraph, diags: &mut Diagnostics) -> EvictionResult {
    // Summaries are *inputs* to every other per-method judgment, so they
    // are always computed for the whole program — a shard worker runs
    // this pass over the full source too (deterministically recomputing
    // what a distributed build would fetch from the artifact store).
    let shard = ShardInput::whole(program);
    let mut summaries: BTreeMap<MethodRef, MethodSummary> = BTreeMap::new();
    // Bottom-up over the acyclic call graph, one reverse-topo wave at a
    // time: a wave's methods only call into earlier waves, so they are
    // summarized in parallel against a read-only view of `summaries`,
    // with a barrier (the merge below) between waves. The merge keyed by
    // `MethodRef` lands in a `BTreeMap`, so the result is identical at
    // any thread count.
    for wave in cg.levels() {
        let wave_summaries =
            sjava_par::run_indexed(wave.len(), |i| summarize(&shard, &wave[i], &summaries));
        for (mref, summary) in wave.iter().zip(wave_summaries) {
            if let Some(s) = summary {
                summaries.insert(mref.clone(), s);
            }
        }
    }

    let (stale_paths, stale_locals) = check_loop(program, cg, &summaries);
    report(&stale_paths, &stale_locals, diags);
    EvictionResult {
        summaries,
        stale_paths,
        stale_locals,
    }
}

/// Summarizes one method given its callees' summaries (which must already
/// be present in `summaries` — the caller iterates bottom-up). Trusted
/// methods get an empty (effect-free) summary; unresolvable references
/// get `None`. This is the per-method unit the incremental layer caches.
pub fn summarize(
    shard: &ShardInput<'_>,
    mref: &MethodRef,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> Option<MethodSummary> {
    let program = shard.program();
    let (decl_class, method) = program.resolve_method(&mref.0, &mref.1)?;
    if method.annots.trusted || decl_class.annots.trusted {
        return Some(MethodSummary::default());
    }
    Some(summarize_method(program, &mref.0, method, summaries))
}

/// Checks the §4.2.1 conditions on the event loop against a complete
/// summary map. Always recomputed by the incremental layer (it reads
/// every summary, so caching it would buy nothing and risk staleness).
pub fn check_loop(
    program: &Program,
    cg: &CallGraph,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> (Vec<StalePath>, Vec<StaleLocal>) {
    check_event_loop(program, cg, summaries)
}

/// Renders eviction failures into diagnostics — factored out so a cached
/// and a fresh analysis emit byte-identical messages.
pub fn report(stale_paths: &[StalePath], stale_locals: &[StaleLocal], diags: &mut Diagnostics) {
    for (p, span) in stale_paths {
        diags.push(Diag::stale_heap(
            format!("heap location {p} may be read without being overwritten every event-loop iteration"),
            *span,
        ));
    }
    for (v, span) in stale_locals {
        diags.push(Diag::stale_heap(
            format!("local `{v}` may carry a value across event-loop iterations without being overwritten"),
            *span,
        ));
    }
}

fn summarize_method(
    program: &Program,
    class: &str,
    method: &MethodDecl,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> MethodSummary {
    let mut env = TypeEnv::for_method(program, class, method);
    env.bind_block(&method.body);
    let mut an = BodyAnalyzer::new(program, env, summaries);
    let mut st = FlowState::default();
    if !method.is_static {
        let var = an.vars.intern("this");
        let root = an.paths.root("this");
        st.bind_definite(var, root);
    }
    for p in &method.params {
        if p.ty.is_reference() {
            let var = an.vars.intern(&p.name);
            let root = an.paths.root(&p.name);
            st.bind_definite(var, root);
        }
    }
    an.walk_block(&method.body, &mut st);
    MethodSummary {
        reads: an.reads.iter().map(|&(p, _)| an.paths.resolve(p)).collect(),
        may_writes: an
            .may_writes
            .iter()
            .map(|p| an.paths.resolve(p as PathId))
            .collect(),
        must_writes: st
            .wt
            .iter()
            .map(|p| an.paths.resolve(p as PathId))
            .collect(),
    }
}

/// Checks the §4.2.1 conditions on the event loop, returning stale heap
/// paths and stale locals.
fn check_event_loop(
    program: &Program,
    cg: &CallGraph,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> (Vec<StalePath>, Vec<StaleLocal>) {
    let Some((_, method)) = program.resolve_method(&cg.entry.0, &cg.entry.1) else {
        return (Vec::new(), Vec::new());
    };
    let mut env = TypeEnv::for_method(program, &cg.entry.0, method);
    env.bind_block(&method.body);

    // Walk statements before the loop to establish alias information for
    // locals, then analyze the loop body itself.
    let mut an = BodyAnalyzer::new(program, env, summaries);
    let mut st = FlowState::default();
    if !method.is_static {
        let var = an.vars.intern("this");
        let root = an.paths.root("this");
        st.bind_definite(var, root);
    }
    for p in &method.params {
        if p.ty.is_reference() {
            let var = an.vars.intern(&p.name);
            let root = an.paths.root(&p.name);
            st.bind_definite(var, root);
        }
    }
    let Some((pre, loop_body)) = split_at_event_loop(&method.body) else {
        return (Vec::new(), Vec::new());
    };
    for s in pre {
        an.walk_stmt(s, &mut st);
    }
    // Fresh read/assignment tracking for the loop body; aliases persist.
    an.reads.clear();
    an.may_writes.clear();
    an.local_reads.clear();
    an.locals_tracked = true;
    st.wt.clear();
    st.assigned.clear();
    an.walk_block(loop_body, &mut st);

    // Heap conditions: (1) never written in the loop, or (3) prefix-overwritten at
    // the back edge. (Condition (2) — overwritten before the read — was
    // already applied when collecting reads.)
    let mut stale_paths = Vec::new();
    for &(p, span) in &an.reads {
        let cond1 = !an.paths.covered_by(&an.may_writes, p);
        let cond3 = an.paths.covered_by(&st.wt, p);
        if !cond1 && !cond3 {
            stale_paths.push((an.paths.resolve(p), span));
        }
    }

    // Local-variable conditions.
    let mut stale_locals = Vec::new();
    for &(var, span, was_assigned_before) in &an.local_reads {
        if was_assigned_before {
            continue; // condition (2)
        }
        let assigned_in_loop = an.any_assigned.contains(var as usize);
        let assigned_every_iter = st.assigned.contains(var as usize);
        if assigned_in_loop && !assigned_every_iter {
            stale_locals.push((an.vars.resolve(var).to_string(), span));
        }
    }
    stale_paths.sort_by(|a, b| a.0.cmp(&b.0));
    stale_paths.dedup_by(|a, b| a.0 == b.0);
    stale_locals.sort();
    stale_locals.dedup_by(|a, b| a.0 == b.0);
    (stale_paths, stale_locals)
}

fn split_at_event_loop(body: &Block) -> Option<(&[Stmt], &Block)> {
    for (i, s) in body.stmts.iter().enumerate() {
        if let Stmt::While {
            kind: LoopKind::EventLoop,
            body: loop_body,
            ..
        } = s
        {
            return Some((&body.stmts[..i], loop_body));
        }
    }
    // Nested in another statement: no pre-statement modelling (rare).
    fn find(block: &Block) -> Option<&Block> {
        for s in &block.stmts {
            match s {
                Stmt::While {
                    kind: LoopKind::EventLoop,
                    body,
                    ..
                } => return Some(body),
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    if let Some(b) = find(body) {
                        return Some(b);
                    }
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    if let Some(b) = find(then_blk) {
                        return Some(b);
                    }
                    if let Some(e) = else_blk {
                        if let Some(b) = find(e) {
                            return Some(b);
                        }
                    }
                }
                Stmt::Block(b) => {
                    if let Some(x) = find(b) {
                        return Some(x);
                    }
                }
                _ => {}
            }
        }
        None
    }
    find(body).map(|b| (&body.stmts[..0], b))
}

/// Alias + must-write state flowing through a body. All sets are dense
/// bitsets over the per-method path/variable interners, so branch clones
/// are flat `memcpy`s instead of tree rebuilds.
#[derive(Debug, Clone, Default)]
struct FlowState {
    /// Variable → (possible heap paths, definitely-unique).
    hp: FnvHashMap<VarId, (BitSet, bool)>,
    /// Must-written heap paths (`WT`).
    wt: BitSet,
    /// Definitely-assigned locals since scope start (event-loop iteration).
    assigned: BitSet,
    /// Set when the path has returned (unreachable continuation).
    returned: bool,
}

impl FlowState {
    fn bind_definite(&mut self, var: VarId, path: PathId) {
        self.hp
            .insert(var, ([path as usize].into_iter().collect(), true));
    }

    fn paths(&self, var: VarId) -> Option<&(BitSet, bool)> {
        self.hp.get(&var)
    }

    /// Control-flow join of two branch states.
    fn merge(a: FlowState, b: FlowState) -> FlowState {
        if a.returned {
            return b;
        }
        if b.returned {
            return a;
        }
        let mut hp =
            FnvHashMap::with_capacity_and_hasher(a.hp.len().max(b.hp.len()), Default::default());
        for (k, (pa, da)) in &a.hp {
            if let Some((pb, db)) = b.hp.get(k) {
                let definite = da & db && pa == pb;
                let mut union = pa.clone();
                union.union_with(pb);
                hp.insert(*k, (union, definite));
            } else {
                hp.insert(*k, (pa.clone(), false));
            }
        }
        for (k, (pb, _)) in b.hp {
            hp.entry(k).or_insert((pb, false));
        }
        let mut wt = a.wt;
        wt.intersect_with(&b.wt);
        let mut assigned = a.assigned;
        assigned.intersect_with(&b.assigned);
        FlowState {
            hp,
            wt,
            assigned,
            returned: false,
        }
    }
}

struct BodyAnalyzer<'p> {
    program: &'p Program,
    env: TypeEnv<'p>,
    summaries: &'p BTreeMap<MethodRef, MethodSummary>,
    /// Per-method heap-path interner; ids index `may_writes`/`wt`.
    paths: PathInterner,
    /// Per-method local-variable interner; ids index `assigned`.
    vars: VarInterner,
    /// Reads surviving condition (2), with spans.
    reads: Vec<(PathId, Span)>,
    may_writes: BitSet,
    /// Local reads `(var, span, assigned-before-read)`.
    local_reads: Vec<(VarId, Span, bool)>,
    /// Locals assigned anywhere in the walked region.
    any_assigned: BitSet,
    /// Whether local reads should be tracked (event-loop mode).
    locals_tracked: bool,
}

impl<'p> BodyAnalyzer<'p> {
    fn new(
        program: &'p Program,
        env: TypeEnv<'p>,
        summaries: &'p BTreeMap<MethodRef, MethodSummary>,
    ) -> Self {
        BodyAnalyzer {
            program,
            env,
            summaries,
            paths: PathInterner::new(),
            vars: VarInterner::new(),
            reads: Vec::new(),
            may_writes: BitSet::new(),
            local_reads: Vec::new(),
            any_assigned: BitSet::new(),
            locals_tracked: false,
        }
    }

    fn is_local(&self, name: &str) -> bool {
        self.env.local(name).is_some()
    }

    fn is_field_of_class(&self, name: &str) -> bool {
        !self.is_local(name) && self.program.field(&self.env.class, name).is_some()
    }

    /// Possible heap paths of a reference-valued expression.
    fn paths_of(&mut self, e: &Expr, st: &FlowState) -> (BitSet, bool) {
        match e {
            Expr::This { .. } => {
                let id = self.paths.root("this");
                ([id as usize].into_iter().collect(), true)
            }
            Expr::Var { name, .. } => {
                if let Some((p, d)) = self.vars.get(name).and_then(|v| st.paths(v)) {
                    (p.clone(), *d)
                } else if self.is_field_of_class(name) {
                    let root = self.paths.root("this");
                    let id = self.paths.append(root, name);
                    ([id as usize].into_iter().collect(), true)
                } else {
                    (BitSet::new(), true)
                }
            }
            Expr::Field { base, field, .. } => {
                let (paths, d) = self.paths_of(base, st);
                (self.append_all(&paths, field), d)
            }
            Expr::StaticField { class, field, .. } => {
                let id = self.paths.intern_path(&HeapPath::static_root(class, field));
                ([id as usize].into_iter().collect(), true)
            }
            Expr::Index { base, .. } => {
                let (paths, d) = self.paths_of(base, st);
                (self.append_all(&paths, ELEMENT), d)
            }
            Expr::Cast { operand, .. } => self.paths_of(operand, st),
            // Fresh allocations and call results are untracked (owned).
            _ => (BitSet::new(), true),
        }
    }

    /// `{ p.field | p ∈ paths }` as a fresh path set.
    fn append_all(&mut self, paths: &BitSet, field: &str) -> BitSet {
        let mut out = BitSet::new();
        for p in paths.iter() {
            out.insert(self.paths.append(p as PathId, field) as usize);
        }
        out
    }

    fn record_read(&mut self, path: PathId, span: Span, st: &FlowState) {
        // Condition (2): covered if a prefix was definitely written.
        if self.paths.covered_by(&st.wt, path) {
            return;
        }
        self.reads.push((path, span));
    }

    fn record_write(&mut self, paths: &BitSet, definite: bool, st: &mut FlowState) {
        self.may_writes.union_with(paths);
        if definite && paths.count() == 1 {
            st.wt.insert(paths.iter().next().expect("count checked"));
        }
    }

    /// Collects heap reads of an expression (every field/array access).
    fn read_expr(&mut self, e: &Expr, st: &mut FlowState) {
        match e {
            Expr::Var { name, span } => {
                if self.is_local(name) {
                    if self.locals_tracked {
                        let var = self.vars.intern(name);
                        let before = st.assigned.contains(var as usize);
                        self.local_reads.push((var, *span, before));
                    }
                } else if self.is_field_of_class(name) {
                    let root = self.paths.root("this");
                    let p = self.paths.append(root, name);
                    self.record_read(p, *span, st);
                }
            }
            Expr::Field { base, field, span } => {
                self.read_expr(base, st);
                let (paths, _) = self.paths_of(base, st);
                let appended = self.append_all(&paths, field);
                for p in appended.iter() {
                    self.record_read(p as PathId, *span, st);
                }
            }
            Expr::StaticField { class, field, span } => {
                let p = self.paths.intern_path(&HeapPath::static_root(class, field));
                self.record_read(p, *span, st);
            }
            Expr::Index { base, index, span } => {
                self.read_expr(base, st);
                self.read_expr(index, st);
                let (paths, _) = self.paths_of(base, st);
                let appended = self.append_all(&paths, ELEMENT);
                for p in appended.iter() {
                    self.record_read(p as PathId, *span, st);
                }
            }
            Expr::Length { base, .. } => self.read_expr(base, st),
            Expr::Call { .. } => self.call_effects(e, st),
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => self.read_expr(operand, st),
            Expr::Binary { lhs, rhs, .. } => {
                self.read_expr(lhs, st);
                self.read_expr(rhs, st);
            }
            Expr::NewArray { len, .. } => self.read_expr(len, st),
            _ => {}
        }
    }

    /// Applies a call's effects: argument reads plus the callee's
    /// translated `R`/`OW`/`WT` (§4.2.1 call-site rule).
    fn call_effects(&mut self, e: &Expr, st: &mut FlowState) {
        let Expr::Call {
            recv,
            class_recv,
            name,
            args,
            span,
        } = e
        else {
            return;
        };
        for a in args {
            self.read_expr(a, st);
        }
        if let Some(r) = recv {
            self.read_expr(r, st);
        }
        // Intrinsic array library writes (§4.1.3).
        if class_recv.as_deref() == Some("SSJavaArray") && (name == "insert" || name == "clear") {
            if let Some(arr) = args.first() {
                let (paths, d) = self.paths_of(arr, st);
                let elem_paths = self.append_all(&paths, ELEMENT);
                self.record_write(&elem_paths, d, st);
            }
            return;
        }
        let Some(target_class) = self.env.call_target_class(e) else {
            return;
        };
        let Some((decl_class, callee)) = self.program.resolve_method(&target_class, name) else {
            return;
        };
        let key = (decl_class.name.clone(), callee.name.clone());
        // `summaries` outlives `self`'s other borrows, so no clone needed.
        let summaries = self.summaries;
        let Some(summary) = summaries.get(&key) else {
            return;
        };
        // Map callee roots to caller argument paths.
        let mut roots: FnvHashMap<&str, (BitSet, bool)> = FnvHashMap::default();
        if let Some(r) = recv {
            roots.insert("this", self.paths_of(r, st));
        } else if class_recv.is_none() {
            // Unqualified call on the current receiver.
            let id = self.paths.root("this");
            roots.insert("this", ([id as usize].into_iter().collect(), true));
        }
        for (p, a) in callee.params.iter().zip(args) {
            if p.ty.is_reference() {
                roots.insert(p.name.as_str(), self.paths_of(a, st));
            }
        }
        for r in &summary.reads {
            if let Some((paths, _)) = self.translate(&roots, r) {
                for p in paths.iter() {
                    self.record_read(p as PathId, *span, st);
                }
            }
        }
        for w in &summary.may_writes {
            if let Some((paths, _)) = self.translate(&roots, w) {
                self.may_writes.union_with(&paths);
            }
        }
        for w in &summary.must_writes {
            if let Some((paths, d)) = self.translate(&roots, w) {
                self.record_write(&paths, d, st);
            }
        }
    }

    /// Translates one callee summary path into caller path ids by mapping
    /// its root through `roots` and splicing the remaining components
    /// (the call-site `⊙` rule of §4.2.1).
    fn translate(
        &mut self,
        roots: &FnvHashMap<&str, (BitSet, bool)>,
        path: &HeapPath,
    ) -> Option<(BitSet, bool)> {
        let root = path.root_name();
        if root.contains('.') {
            // Static-rooted paths pass through unchanged.
            let id = self.paths.intern_path(path);
            return Some(([id as usize].into_iter().collect(), true));
        }
        let (paths, d) = roots.get(root)?;
        let mut out = BitSet::new();
        for base in paths.iter() {
            out.insert(self.paths.splice(base as PathId, path) as usize);
        }
        Some((out, *d))
    }

    fn walk_block(&mut self, block: &Block, st: &mut FlowState) {
        for s in &block.stmts {
            if st.returned {
                return;
            }
            self.walk_stmt(s, st);
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt, st: &mut FlowState) {
        match stmt {
            Stmt::VarDecl { name, init, ty, .. } => {
                if let Some(e) = init {
                    self.read_expr(e, st);
                    let var = self.vars.intern(name);
                    if ty.is_reference() {
                        let (paths, d) = self.paths_of(e, st);
                        st.hp.insert(var, (paths, d));
                    }
                    st.assigned.insert(var as usize);
                    self.any_assigned.insert(var as usize);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                self.read_expr(rhs, st);
                match lhs {
                    LValue::Var { name, .. } => {
                        if self.is_local(name) {
                            let var = self.vars.intern(name);
                            if self
                                .env
                                .local(name)
                                .map(|t| t.is_reference())
                                .unwrap_or(false)
                            {
                                let (paths, d) = self.paths_of(rhs, st);
                                st.hp.insert(var, (paths, d));
                            }
                            st.assigned.insert(var as usize);
                            self.any_assigned.insert(var as usize);
                        } else if self.is_field_of_class(name) {
                            let root = self.paths.root("this");
                            let id = self.paths.append(root, name);
                            let p = [id as usize].into_iter().collect();
                            self.record_write(&p, true, st);
                        }
                    }
                    LValue::Field { base, field, .. } => {
                        self.read_expr(base, st);
                        let (paths, d) = self.paths_of(base, st);
                        let fp = self.append_all(&paths, field);
                        self.record_write(&fp, d, st);
                    }
                    LValue::Index { base, index, .. } => {
                        self.read_expr(base, st);
                        self.read_expr(index, st);
                        let (paths, _) = self.paths_of(base, st);
                        let fp = self.append_all(&paths, ELEMENT);
                        // A single array-element store is a may-write only
                        // (other indices keep their values).
                        self.record_write(&fp, false, st);
                    }
                    LValue::StaticField { class, field, .. } => {
                        let id = self.paths.intern_path(&HeapPath::static_root(class, field));
                        let p = [id as usize].into_iter().collect();
                        self.record_write(&p, true, st);
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.read_expr(cond, st);
                let mut then_st = st.clone();
                self.walk_block(then_blk, &mut then_st);
                let mut else_st = st.clone();
                if let Some(e) = else_blk {
                    self.walk_block(e, &mut else_st);
                }
                *st = FlowState::merge(then_st, else_st);
            }
            Stmt::While { cond, body, .. } => {
                self.read_expr(cond, st);
                // Loop body may execute zero times: analyze once on a
                // clone, keep alias merge, drop its must-writes.
                let mut body_st = st.clone();
                self.walk_block(body, &mut body_st);
                *st = FlowState::merge(st.clone(), body_st);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i, st);
                }
                if let Some(c) = cond {
                    self.read_expr(c, st);
                }
                let mut body_st = st.clone();
                self.walk_block(body, &mut body_st);
                if let Some(u) = update {
                    self.walk_stmt(u, &mut body_st);
                }
                if for_loop_runs_at_least_once(init.as_deref(), cond.as_ref()) {
                    // The clearing-loop pattern (e.g. `for (i=0;i<N;i++)
                    // buf[i]=...`): the body definitely executes, so its
                    // must-writes hold. Whole-array clearing is recognized
                    // when the loop covers the array via SSJavaArray or
                    // full-range writes; we credit the body's WT.
                    let mut merged = body_st;
                    // Additionally, a full-range element write pattern
                    // counts as a definite write of ⟨...,element⟩.
                    if let Some(paths) =
                        full_array_clear(self, init.as_deref(), cond.as_ref(), body, st)
                    {
                        merged.wt.union_with(&paths);
                    }
                    *st = merged;
                } else {
                    *st = FlowState::merge(st.clone(), body_st);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.read_expr(v, st);
                }
                st.returned = true;
            }
            Stmt::ExprStmt { expr, .. } => self.read_expr(expr, st),
            Stmt::Block(b) => self.walk_block(b, st),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }
}

/// Conservatively decides whether a `for` loop runs at least once:
/// `for (i = c1; i < c2; ...)` with integer literals `c1 < c2` (or `<=`).
pub fn for_loop_runs_at_least_once(init: Option<&Stmt>, cond: Option<&Expr>) -> bool {
    let start = match init {
        Some(Stmt::VarDecl {
            init: Some(Expr::IntLit { value, .. }),
            ..
        }) => *value,
        Some(Stmt::Assign {
            rhs: Expr::IntLit { value, .. },
            ..
        }) => *value,
        _ => return false,
    };
    match cond {
        Some(Expr::Binary {
            op: BinOp::Lt, rhs, ..
        }) => matches!(rhs.as_ref(), Expr::IntLit { value, .. } if start < *value),
        Some(Expr::Binary {
            op: BinOp::Le, rhs, ..
        }) => matches!(rhs.as_ref(), Expr::IntLit { value, .. } if start <= *value),
        Some(Expr::Binary {
            op: BinOp::Gt, rhs, ..
        }) => matches!(rhs.as_ref(), Expr::IntLit { value, .. } if start > *value),
        Some(Expr::Binary {
            op: BinOp::Ge, rhs, ..
        }) => matches!(rhs.as_ref(), Expr::IntLit { value, .. } if start >= *value),
        _ => false,
    }
}

/// Recognizes the canonical full-array clearing loop
/// `for (i = 0; i < K; i++) a[i] = ...;` and returns the element paths it
/// definitely overwrites.
fn full_array_clear(
    an: &mut BodyAnalyzer<'_>,
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    body: &Block,
    st: &FlowState,
) -> Option<BitSet> {
    // Index must start at 0 and the guard be `i < K` or `i <= K`.
    let idx = match init {
        Some(Stmt::VarDecl {
            name,
            init: Some(Expr::IntLit { value: 0, .. }),
            ..
        }) => name.clone(),
        Some(Stmt::Assign {
            lhs: LValue::Var { name, .. },
            rhs: Expr::IntLit { value: 0, .. },
            ..
        }) => name.clone(),
        _ => return None,
    };
    match cond {
        Some(Expr::Binary {
            op: BinOp::Lt | BinOp::Le,
            lhs,
            ..
        }) => {
            if !matches!(lhs.as_ref(), Expr::Var { name, .. } if *name == idx) {
                return None;
            }
        }
        _ => return None,
    }
    // Body must assign a[idx] directly at the top level.
    let mut out = BitSet::new();
    for s in &body.stmts {
        if let Stmt::Assign {
            lhs: LValue::Index { base, index, .. },
            ..
        } = s
        {
            if matches!(index, Expr::Var { name, .. } if *name == idx) {
                let (paths, definite) = an.paths_of(base, st);
                if definite && paths.count() == 1 {
                    let base_id = paths.iter().next().expect("count checked") as PathId;
                    out.insert(an.paths.append(base_id, ELEMENT) as usize);
                }
            }
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use sjava_syntax::parse;

    fn run(src: &str) -> (EvictionResult, Diagnostics) {
        let p = parse(src).expect("parses");
        let mut d = Diagnostics::new();
        let cg = callgraph::build(&p, &mut d).expect("call graph");
        let r = analyze(&p, &cg, &mut d);
        (r, d)
    }

    #[test]
    fn wind_sensor_pattern_passes() {
        // The Fig 2.1 shape: all of bin's fields overwritten each
        // iteration.
        let (r, d) = run("class W { R bin; int dir;
                void main() {
                    bin = new R();
                    SSJAVA: while (true) {
                        int inDir = Device.readSensor();
                        bin.dir2 = bin.dir1;
                        bin.dir1 = bin.dir0;
                        bin.dir0 = inDir;
                        dir = bin.dir0;
                        Out.emit(dir);
                    }
                }
             }
             class R { int dir0; int dir1; int dir2; }");
        assert!(r.is_ok(), "stale: {:?} {:?}", r.stale_paths, r.stale_locals);
        assert!(!d.has_errors());
    }

    #[test]
    fn stale_field_read_is_flagged() {
        // `acc` is read every iteration but only written conditionally.
        let (r, _d) = run("class W { int acc;
                void main() {
                    SSJAVA: while (true) {
                        int x = Device.read();
                        if (x > 0) { acc = x; }
                        Out.emit(acc);
                    }
                }
             }");
        assert!(!r.is_ok());
        assert!(r
            .stale_paths
            .iter()
            .any(|(p, _)| p.0 == vec!["this".to_string(), "acc".to_string()]));
    }

    #[test]
    fn read_before_unconditional_write_is_ok() {
        // Reading the previous iteration's value is fine when the location
        // is overwritten on every iteration (condition 3).
        let (r, _) = run("class W { int prev;
                void main() {
                    SSJAVA: while (true) {
                        int x = Device.read();
                        int old = prev;
                        prev = x;
                        Out.emit(old + x);
                    }
                }
             }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_paths);
    }

    #[test]
    fn loop_invariant_reads_are_ok() {
        let (r, _) = run("class W { int k;
                void main() {
                    k = 7;
                    SSJAVA: while (true) {
                        int x = Device.read();
                        Out.emit(x * k);
                    }
                }
             }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_paths);
    }

    #[test]
    fn callee_writes_count_for_eviction() {
        let (r, _) = run("class W { int v;
                void main() {
                    SSJAVA: while (true) { refresh(); Out.emit(v); }
                }
                void refresh() { v = Device.read(); }
             }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_paths);
    }

    #[test]
    fn callee_reads_are_translated() {
        let (r, _) = run("class W { int v;
                void main() {
                    SSJAVA: while (true) {
                        int x = Device.read();
                        if (x > 0) { v = x; }
                        Out.emit(peek());
                    }
                }
                int peek() { return v; }
             }");
        assert!(
            !r.is_ok(),
            "callee read of conditionally-written v must be stale"
        );
    }

    #[test]
    fn clearing_for_loop_satisfies_eviction() {
        let (r, _) = run("class W { float[] buf;
                void main() {
                    buf = new float[8];
                    SSJAVA: while (true) {
                        for (int i = 0; i < 8; i++) { buf[i] = Device.read(); }
                        float s = 0.0;
                        for (int j = 0; j < 8; j++) { s = s + buf[j]; }
                        Out.emit(s);
                    }
                }
             }");
        assert!(r.is_ok(), "stale: {:?} {:?}", r.stale_paths, r.stale_locals);
    }

    #[test]
    fn partial_array_write_is_stale() {
        let (r, _) = run("class W { float[] buf;
                void main() {
                    buf = new float[8];
                    SSJAVA: while (true) {
                        int i = Device.read();
                        if (i >= 0) { buf[0] = 1.0; }
                        Out.emit(buf[3]);
                    }
                }
             }");
        assert!(!r.is_ok());
    }

    #[test]
    fn ssjava_array_insert_clears() {
        let (r, _) = run("class W { int[] hist;
                void main() {
                    hist = new int[3];
                    SSJAVA: while (true) {
                        int x = Device.read();
                        SSJavaArray.insert(hist, x);
                        Out.emit(hist[0] + hist[2]);
                    }
                }
             }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_paths);
    }

    #[test]
    fn stale_local_across_iterations_is_flagged() {
        let (r, _) = run("class W {
                void main() {
                    int carry = 0;
                    SSJAVA: while (true) {
                        int x = Device.read();
                        Out.emit(carry);
                        if (x > 0) { carry = x; }
                    }
                }
             }");
        assert!(
            r.stale_locals.iter().any(|(n, _)| n == "carry"),
            "carry should be stale: {:?}",
            r.stale_locals
        );
    }

    #[test]
    fn local_always_overwritten_is_ok() {
        let (r, _) = run("class W {
                void main() {
                    int carry = 0;
                    SSJAVA: while (true) {
                        int x = Device.read();
                        Out.emit(carry);
                        carry = x;
                    }
                }
             }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_locals);
    }

    #[test]
    fn aliased_write_through_local_reference() {
        let (r, _) = run("class W { R rec;
                void main() {
                    rec = new R();
                    SSJAVA: while (true) {
                        R t = rec;
                        t.v = Device.read();
                        Out.emit(rec.v);
                    }
                }
             }
             class R { int v; }");
        assert!(r.is_ok(), "stale: {:?}", r.stale_paths);
    }
}
