//! Loop-termination analysis (§4.3).
//!
//! Every iteration of the event loop must terminate, or corrupted values
//! never leave. The analysis verifies the common pattern of §4.3.1: an
//! index variable incremented by a constant each iteration, guarded by an
//! inequality against a loop-invariant bound. Loops the analysis cannot
//! handle must carry a `MAXLOOP_n:` bound or a `TERMINATE_x:` trusted
//! label (§4.3.2). Recursion is rejected by the call-graph builder.

use crate::callgraph::{CallGraph, MethodRef};
use crate::shard::ShardInput;
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::collections::BTreeSet;

/// Checks termination of every inner loop reachable from the event loop
/// that the shard owns (the unsharded pipeline passes
/// [`ShardInput::whole`]). Returns the number of loops that failed (also
/// reported into `diags`).
pub fn check(shard: &ShardInput<'_>, cg: &CallGraph, diags: &mut Diagnostics) -> usize {
    let mut failures = 0;
    for mref in &cg.topo {
        if shard.owns(mref) {
            let (n, d) = check_method(shard, mref);
            failures += n;
            diags.extend(d);
        }
    }
    failures
}

/// Termination verdict for a single method: its failure count and the
/// diagnostics it contributed, in source order. Trusted or unresolvable
/// methods yield `(0, empty)`. The verdict depends only on the method
/// body, so the incremental layer caches it per method fingerprint.
pub fn check_method(shard: &ShardInput<'_>, mref: &MethodRef) -> (usize, Diagnostics) {
    let mut diags = Diagnostics::new();
    let Some((decl_class, method)) = shard.program().resolve_method(&mref.0, &mref.1) else {
        return (0, diags);
    };
    if method.annots.trusted || decl_class.annots.trusted {
        return (0, diags);
    }
    let n = check_block(&method.body, &mut diags);
    (n, diags)
}

fn check_block(block: &Block, diags: &mut Diagnostics) -> usize {
    let mut failures = 0;
    for s in &block.stmts {
        failures += check_stmt(s, diags);
    }
    failures
}

fn check_stmt(stmt: &Stmt, diags: &mut Diagnostics) -> usize {
    match stmt {
        Stmt::While {
            kind,
            cond,
            body,
            span,
        } => {
            let mut failures = check_block(body, diags);
            match kind {
                LoopKind::EventLoop | LoopKind::Trusted(_) | LoopKind::MaxLoop(_) => {}
                LoopKind::Plain => {
                    if !while_terminates(cond, body) {
                        diags.push(
                            Diag::unprovable_loop(
                                "cannot prove loop terminates; add a MAXLOOP_n or TERMINATE_x label",
                                *span,
                            )
                            .with_suggestion(
                                Span::new(span.start, span.start),
                                "MAXLOOP_1000: ",
                                "label the loop with a hard iteration bound",
                            ),
                        );
                        failures += 1;
                    }
                }
            }
            failures
        }
        Stmt::For {
            kind,
            init,
            cond,
            update,
            body,
            span,
        } => {
            let mut failures = check_block(body, diags);
            match kind {
                LoopKind::EventLoop | LoopKind::Trusted(_) | LoopKind::MaxLoop(_) => {}
                LoopKind::Plain => {
                    if !for_terminates(init.as_deref(), cond.as_ref(), update.as_deref(), body) {
                        diags.push(
                            Diag::unprovable_loop(
                                "cannot prove for-loop terminates; add a MAXLOOP_n or TERMINATE_x label",
                                *span,
                            )
                            .with_suggestion(
                                Span::new(span.start, span.start),
                                "MAXLOOP_1000: ",
                                "label the loop with a hard iteration bound",
                            ),
                        );
                        failures += 1;
                    }
                }
            }
            failures
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            let mut f = check_block(then_blk, diags);
            if let Some(e) = else_blk {
                f += check_block(e, diags);
            }
            f
        }
        Stmt::Block(b) => check_block(b, diags),
        _ => 0,
    }
}

/// Direction of an induction variable's constant step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Up,
    Down,
}

fn for_terminates(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    update: Option<&Stmt>,
    body: &Block,
) -> bool {
    let Some(cond) = cond else {
        return false; // `for(;;)` is an infinite loop
    };
    // Induction candidates from the update slot and top-level body
    // statements (evaluated on every iteration).
    let mut candidates: Vec<(String, Step)> = Vec::new();
    if let Some(u) = update {
        if let Some(c) = induction_update(u) {
            candidates.push(c);
        }
    }
    for s in &body.stmts {
        if let Some(c) = induction_update(s) {
            candidates.push(c);
        }
    }
    let _ = init;
    let assigned = assigned_vars(body);
    candidates
        .iter()
        .any(|(var, step)| cond_guards(cond, var, *step, &assigned))
}

fn while_terminates(cond: &Expr, body: &Block) -> bool {
    // Induction update must be a top-level body statement so it executes
    // on every iteration.
    let mut candidates: Vec<(String, Step)> = Vec::new();
    for s in &body.stmts {
        if let Some(c) = induction_update(s) {
            candidates.push(c);
        }
    }
    let assigned = assigned_vars(body);
    candidates
        .iter()
        .any(|(var, step)| cond_guards(cond, var, *step, &assigned))
}

/// Recognizes `i = i + c` / `i = i - c` (including the desugared `i++`,
/// `i += c`).
fn induction_update(stmt: &Stmt) -> Option<(String, Step)> {
    let Stmt::Assign {
        lhs: LValue::Var { name, .. },
        rhs:
            Expr::Binary {
                op,
                lhs: bin_lhs,
                rhs: bin_rhs,
                ..
            },
        ..
    } = stmt
    else {
        return None;
    };
    let var_on_left = matches!(bin_lhs.as_ref(), Expr::Var { name: n, .. } if n == name);
    let const_on_right = matches!(
        bin_rhs.as_ref(),
        Expr::IntLit { value, .. } if *value > 0
    );
    if !var_on_left || !const_on_right {
        return None;
    }
    match op {
        BinOp::Add => Some((name.clone(), Step::Up)),
        BinOp::Sub => Some((name.clone(), Step::Down)),
        _ => None,
    }
}

/// Does `cond` contain a guaranteed exit inequality for `var` stepping in
/// `step` direction, against a guard invariant in the loop?
fn cond_guards(cond: &Expr, var: &str, step: Step, assigned: &BTreeSet<String>) -> bool {
    match cond {
        // Both conjuncts keep the loop running; either going false exits.
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } => cond_guards(lhs, var, step, assigned) || cond_guards(rhs, var, step, assigned),
        // A disjunction exits only when *both* sides go false.
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
            ..
        } => cond_guards(lhs, var, step, assigned) && cond_guards(rhs, var, step, assigned),
        Expr::Binary { op, lhs, rhs, .. } => {
            let (ivar_side, guard, flipped) = if matches!(lhs.as_ref(), Expr::Var { name, .. } if name == var)
            {
                (true, rhs.as_ref(), false)
            } else if matches!(rhs.as_ref(), Expr::Var { name, .. } if name == var) {
                (true, lhs.as_ref(), true)
            } else {
                (false, rhs.as_ref(), false)
            };
            if !ivar_side || !is_invariant(guard, assigned) {
                return false;
            }
            // Appropriate inequality for the step direction (§4.3.1).
            let effective = if flipped { flip(*op) } else { *op };
            matches!(
                (step, effective),
                (Step::Up, BinOp::Lt)
                    | (Step::Up, BinOp::Le)
                    | (Step::Up, BinOp::Ne)
                    | (Step::Down, BinOp::Gt)
                    | (Step::Down, BinOp::Ge)
            )
        }
        _ => false,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// A guard expression is invariant when it reads no variable the loop body
/// assigns and performs no calls.
fn is_invariant(e: &Expr, assigned: &BTreeSet<String>) -> bool {
    match e {
        Expr::IntLit { .. } | Expr::FloatLit { .. } | Expr::BoolLit { .. } => true,
        Expr::Var { name, .. } => !assigned.contains(name),
        Expr::Length { base, .. } => is_invariant(base, assigned),
        Expr::Field { base, .. } => is_invariant(base, assigned),
        Expr::StaticField { .. } => true,
        Expr::Binary { lhs, rhs, .. } => is_invariant(lhs, assigned) && is_invariant(rhs, assigned),
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => is_invariant(operand, assigned),
        _ => false,
    }
}

fn assigned_vars(block: &Block) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_assigned(block, &mut out);
    out
}

fn collect_assigned(block: &Block, out: &mut BTreeSet<String>) {
    for s in &block.stmts {
        match s {
            Stmt::Assign {
                lhs: LValue::Var { name, .. },
                ..
            } => {
                out.insert(name.clone());
            }
            Stmt::VarDecl { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_assigned(then_blk, out);
                if let Some(e) = else_blk {
                    collect_assigned(e, out);
                }
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(i) = init {
                    collect_assigned(&single(i.as_ref()), out);
                }
                if let Some(u) = update {
                    collect_assigned(&single(u.as_ref()), out);
                }
                collect_assigned(body, out);
            }
            Stmt::Block(b) => collect_assigned(b, out),
            _ => {}
        }
    }
}

fn single(s: &Stmt) -> Block {
    Block {
        stmts: vec![s.clone()],
        span: s.span(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use sjava_syntax::parse;

    fn run(src: &str) -> (usize, Diagnostics) {
        let p = parse(src).expect("parses");
        let mut d = Diagnostics::new();
        let cg = callgraph::build(&p, &mut d).expect("cg");
        let n = check(&ShardInput::whole(&p), &cg, &mut d);
        (n, d)
    }

    #[test]
    fn simple_for_loop_passes() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) {
                int s = 0;
                for (int i = 0; i < 10; i++) { s = s + i; }
                Out.emit(s);
            } } }");
        assert_eq!(n, 0);
    }

    #[test]
    fn decrementing_while_passes() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) {
                int i = Device.read();
                while (i > 0) { i = i - 1; }
                Out.emit(i);
            } } }");
        assert_eq!(n, 0);
    }

    #[test]
    fn unprovable_loop_fails() {
        let (n, d) = run("class A { void main() { SSJAVA: while (true) {
                int i = Device.read();
                while (i != 3) { i = Device.read(); }
                Out.emit(i);
            } } }");
        assert_eq!(n, 1);
        assert!(d.has_errors());
    }

    #[test]
    fn wrong_direction_fails() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) {
                int i = 0;
                while (i < 10) { i = i - 1; }
            } } }");
        assert_eq!(n, 1);
    }

    #[test]
    fn changing_guard_fails() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) {
                int i = 0; int g = 10;
                while (i < g) { i = i + 1; g = g + 1; }
            } } }");
        assert_eq!(n, 1);
    }

    #[test]
    fn maxloop_and_terminate_labels_are_trusted() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) {
                int i = Device.read();
                MAXLOOP_100: while (i != 3) { i = Device.read(); }
                TERMINATE_scan: while (i != 5) { i = Device.read(); }
            } } }");
        assert_eq!(n, 0);
    }

    #[test]
    fn array_length_guard_is_invariant() {
        let (n, _) = run(
            "class A { int[] d; void main() { d = new int[4]; SSJAVA: while (true) {
                int s = 0;
                for (int i = 0; i < d.length; i++) { s = s + d[i]; d[i] = s; }
                Out.emit(s);
            } } }",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn callee_loops_are_checked() {
        let (n, _) = run("class A { void main() { SSJAVA: while (true) { f(); } }
               void f() { int i = 0; while (true) { i = i + 1; } } }");
        assert_eq!(n, 1);
    }
}
