//! §6.3 pipeline: strip each benchmark's annotations, infer (naive and
//! SInfer), and verify the inferred annotations pass the full checker.

use sjava_core::check_program;
use sjava_infer::{infer, Mode};
use sjava_syntax::pretty::print_program;
use sjava_syntax::strip::strip_location_annotations;

fn pipeline(name: &str, source: &str) {
    let program = sjava_syntax::parse(source).expect("parses");
    let stripped = strip_location_annotations(&program);
    for mode in [Mode::Naive, Mode::SInfer] {
        let result = infer(&stripped, mode).unwrap_or_else(|d| panic!("{name} {mode:?}: {d}"));
        let printed = print_program(&result.annotated);
        let reparsed = sjava_syntax::parse(&printed)
            .unwrap_or_else(|d| panic!("{name} {mode:?} reparse: {d}"));
        let report = check_program(&reparsed);
        assert!(
            report.is_ok(),
            "{name} {mode:?} fails recheck:\n{}\n\n{printed}",
            report.diagnostics
        );
    }
}

#[test]
fn mp3dec_inference_round_trips() {
    pipeline("mp3dec", &sjava_apps::mp3dec::source_with(24, 4));
}

#[test]
fn eyetrack_inference_round_trips() {
    pipeline("eyetrack", sjava_apps::eyetrack::SOURCE);
}

#[test]
fn sumobot_inference_round_trips() {
    pipeline("sumobot", sjava_apps::sumobot::SOURCE);
}

#[test]
fn windsensor_inference_round_trips() {
    pipeline("windsensor", sjava_apps::windsensor::SOURCE);
}
