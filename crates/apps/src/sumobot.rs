//! Sumo-robot controller (§6.1): per iteration it reads a sonar sensor
//! (opponent range) and a line sensor (ring edge), picks a movement
//! strategy, and issues a motor command. The motor controller is trusted
//! and its command arguments are overwritten every iteration, as in the
//! paper's modified benchmark. Driven by simulated sensor inputs, as in
//! the paper's evaluation.

use sjava_runtime::{FnInput, InputProvider, Value};

/// Entry class and method.
pub const ENTRY: (&str, &str) = ("SumoRobot", "control");

/// Manually annotated source.
pub const SOURCE: &str = r#"
@LATTICE("MC<STRAT,STRAT<SPD,SPD<MOV,MOV<CMD,CMD<SON,CMD<LIN")
class SumoRobot {
    @LOC("SON") int sonar;
    @LOC("LIN") int line;
    @LOC("MOV") int moveType;
    @LOC("SPD") int speed;
    @LOC("MC") MotorController motor;
    @LOC("STRAT") StrategyMgr strategy;

    @LATTICE("ROBJ<IN") @THISLOC("ROBJ")
    void control() {
        motor = new MotorController();
        strategy = new StrategyMgr();
        SSJAVA: while (true) {
            sonar = Device.readSonar();
            line = Device.readLine();
            moveType = strategy.decideMove(sonar, line);
            speed = strategy.decideSpeed(sonar, line, moveType);
            motor.drive(moveType, speed);
            Out.emit(moveType);
            Out.emit(speed);
        }
    }
}

class StrategyMgr {
    // decide the movement type: 1 = retreat from edge, 2 = attack,
    // 3 = search
    @LATTICE("SMOBJ<MV,MV<MEET,MEET<S,MEET<L") @THISLOC("SMOBJ") @RETURNLOC("MV")
    int decideMove(@LOC("S") int s, @LOC("L") int l) {
        @LOC("MV") int mv = 3;
        if (l < 20) {
            mv = 1;
        } else {
            if (s < 50) {
                mv = 2;
            }
        }
        return mv;
    }

    // decide the speed for the chosen movement
    @LATTICE("SMOBJ2<SP,SP<M,M<MEET2,MEET2<S2,MEET2<L2") @THISLOC("SMOBJ2") @RETURNLOC("SP")
    int decideSpeed(@LOC("S2") int s, @LOC("L2") int l, @LOC("M") int m) {
        @LOC("SP") int sp = 30;
        if (m == 1) {
            sp = 0 - 60 + l;
        } else {
            if (m == 2) {
                sp = 90 - s;
            }
        }
        return sp;
    }
}

@TRUSTED
class MotorController {
    int lastMove;
    int lastSpeed;
    void drive(int mv, int sp) {
        // the hardware keeps executing the last command; both arguments
        // are refreshed by the caller every iteration
        lastMove = mv;
        lastSpeed = sp;
    }
}
"#;

/// Deterministic simulated arena: the opponent closes and retreats; the
/// ring edge approaches periodically.
pub fn inputs(seed: u64) -> impl InputProvider + Clone {
    FnInput::new(move |channel, i| {
        let t = i as f64 * 0.37 + seed as f64 * 0.5;
        match channel {
            "readSonar" => Value::Int(80 + (t.sin() * 70.0) as i64),
            "readLine" => Value::Int(40 + ((t * 1.3).cos() * 35.0) as i64),
            _ => Value::Int(0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_core::check_program;
    use sjava_runtime::{compare_runs, ExecOptions, Injector, Interpreter};

    #[test]
    fn checks_self_stabilizing() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn runs_and_issues_commands() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let r = Interpreter::new(&p, inputs(0), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 30)
            .expect("runs");
        assert_eq!(r.iteration_outputs.len(), 30);
        // Every strategy appears over time.
        let moves: Vec<i64> = r
            .iteration_outputs
            .iter()
            .map(|it| match it[0] {
                Value::Int(m) => m,
                _ => -1,
            })
            .collect();
        assert!(moves.contains(&1), "retreat used: {moves:?}");
        assert!(moves.contains(&2), "attack used: {moves:?}");
    }

    #[test]
    fn recovers_by_next_iteration() {
        // §6.2.3: the controller is stateless per iteration, so any
        // injected error is gone by the next iteration.
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let golden = Interpreter::new(&p, inputs(0), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 40)
            .expect("golden");
        for seed in 0..30u64 {
            let trigger = 30 + seed * 11;
            let run = Interpreter::new(&p, inputs(0), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, 40)
                .expect("injected");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 0.0);
            if stats.diverged {
                assert!(
                    stats.recovery_iterations <= 1,
                    "seed {seed}: {} iterations",
                    stats.recovery_iterations
                );
            }
        }
    }
}
