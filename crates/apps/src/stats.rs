//! Annotation-effort statistics (Fig 6.3): counts of `@LOC`, `@LATTICE`
//! and `@METHODDEFAULT` annotations plus lines of code per benchmark.

use sjava_syntax::strip::{count_annotations, AnnotationCounts};

/// Fig 6.3 row for one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationStats {
    /// Benchmark name.
    pub name: String,
    /// Annotation counts.
    pub counts: AnnotationCounts,
    /// Non-blank lines of dialect source.
    pub loc: usize,
}

/// Computes the Fig 6.3 row for a benchmark source.
pub fn annotation_stats(name: &str, source: &str) -> AnnotationStats {
    let program = sjava_syntax::parse(source).expect("benchmark sources parse");
    let counts = count_annotations(&program);
    let loc = source
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("//"))
        .count();
    AnnotationStats {
        name: name.to_string(),
        counts,
        loc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_windsensor_annotations() {
        let s = annotation_stats("wind", crate::windsensor::SOURCE);
        assert!(s.counts.locations >= 8, "{s:?}");
        assert!(s.counts.lattices >= 4, "{s:?}");
        assert!(s.loc > 20);
    }
}
