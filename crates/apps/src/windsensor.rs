//! The wind-direction sensor of Fig 2.1 — the paper's running example,
//! manually annotated.

use sjava_runtime::{FnInput, InputProvider, Value};

/// Entry class and method.
pub const ENTRY: (&str, &str) = ("WDSensor", "windDirection");

/// Fully annotated source (Fig 2.1, completed with a median vote).
pub const SOURCE: &str = r#"
@LATTICE("DIR<TMP,TMP<BIN")
class WDSensor {
    @LOC("BIN") WindRec bin;
    @LOC("DIR") int dir;

    @LATTICE("STR<WDOBJ,WDOBJ<IN") @THISLOC("WDOBJ")
    void windDirection() {
        bin = new WindRec();
        SSJAVA: while (true) {
            @LOC("IN") int inDir = Device.readSensor();
            // move old wind directions one step down
            bin.dir2 = bin.dir1;
            bin.dir1 = bin.dir0;
            // add a new wind direction
            bin.dir0 = inDir;
            @LOC("STR") int outDir = calculate();
            Out.emit(outDir);
        }
    }

    @LATTICE("OUT<TMPD,TMPD<CAOBJ") @THISLOC("CAOBJ") @RETURNLOC("OUT")
    int calculate() {
        // majority vote of the last three directions to mask sensor noise
        @LOC("CAOBJ,TMP") int majorDir = bin.dir0;
        if (bin.dir1 == bin.dir2) {
            majorDir = bin.dir1;
        }
        this.dir = majorDir;
        @LOC("OUT") int strDir = majorDir;
        return strDir;
    }
}
@LATTICE("DIR2<DIR1,DIR1<DIR0")
class WindRec {
    @LOC("DIR0") int dir0;
    @LOC("DIR1") int dir1;
    @LOC("DIR2") int dir2;
}
"#;

/// Deterministic wind-direction inputs (16-point compass, slow drift with
/// occasional sensor glitches).
pub fn inputs(seed: u64) -> impl InputProvider + Clone {
    FnInput::new(move |_channel, i| {
        let base = ((i / 7 + seed) % 16) as i64;
        // every 11th reading glitches
        if i % 11 == 10 {
            Value::Int((base + 8) % 16)
        } else {
            Value::Int(base)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_core::check_program;
    use sjava_runtime::{ExecOptions, Interpreter};

    #[test]
    fn checks_self_stabilizing() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn runs_and_outputs() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let r = Interpreter::new(&p, inputs(3), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 20)
            .expect("runs");
        assert_eq!(r.iteration_outputs.len(), 20);
        assert!(r.error_log.is_empty(), "{:?}", r.error_log);
    }

    #[test]
    fn recovers_within_three_iterations() {
        use sjava_runtime::{compare_runs, Injector};
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let golden = Interpreter::new(&p, inputs(3), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 30)
            .expect("golden");
        for seed in 0..20u64 {
            let trigger = 40 + seed * 13;
            let run = Interpreter::new(&p, inputs(3), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, 30)
                .expect("injected");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 0.0);
            if stats.diverged {
                assert!(
                    stats.recovery_iterations <= 3,
                    "seed {seed}: took {} iterations",
                    stats.recovery_iterations
                );
            }
        }
    }
}
