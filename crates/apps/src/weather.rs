//! The weather-index example of Fig 5.1 / Fig 5.15 — the running example
//! of the inference chapter. Shipped *unannotated*: its annotations are
//! meant to be inferred.

use sjava_runtime::{FnInput, InputProvider, Value};

/// Entry class and method.
pub const ENTRY: (&str, &str) = ("Weather", "calculateIndex");

/// Unannotated source (Fig 5.1): the heat-index computation.
pub const SOURCE: &str = r#"
class Weather {
    float prevTemp;
    float avgTemp;
    float curHum;
    float index;

    void calculateIndex() {
        SSJAVA: while (true) {
            float inTemp = Device.readTemp();
            curHum = Device.readHumidity();
            // calculate the average temperature
            avgTemp = (prevTemp + inTemp) / 2.0;
            prevTemp = inTemp;

            float f1 = -0.22475541 * avgTemp * curHum;
            float f2 = -0.00683783 * avgTemp * avgTemp;
            float f3 = -0.05481717 * curHum * curHum;
            float f4 = 0.00122874 * f2 * curHum;
            float f5 = 0.00085282 * f3 * avgTemp;
            float f6 = -0.00000199 * f1 * f2;

            index = -42.379 + 2.04901523 * avgTemp + 10.14333127 * curHum +
                    f1 + f2 + f3 + f4 + f5 + f6;

            Out.emit(index);
        }
    }
}
"#;

/// Deterministic temperature/humidity inputs (daily-ish cycles).
pub fn inputs(seed: u64) -> impl InputProvider + Clone {
    FnInput::new(move |channel, i| {
        let t = (i as f64 + seed as f64) * 0.13;
        if channel.contains("Temp") {
            Value::Float(80.0 + 12.0 * t.sin())
        } else {
            Value::Float(55.0 + 20.0 * (t * 0.7).cos())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_core::check_program;
    use sjava_infer::{infer, Mode};
    use sjava_runtime::{ExecOptions, Interpreter};
    use sjava_syntax::pretty::print_program;

    #[test]
    fn runs_and_outputs() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let r = Interpreter::new(&p, inputs(1), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 8)
            .expect("runs");
        assert_eq!(r.iteration_outputs.len(), 8);
    }

    #[test]
    fn inference_annotates_and_checks() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        for mode in [Mode::Naive, Mode::SInfer] {
            let result = infer(&p, mode).unwrap_or_else(|d| panic!("{mode:?}: {d}"));
            let printed = print_program(&result.annotated);
            let reparsed = sjava_syntax::parse(&printed).expect("reparses");
            let report = check_program(&reparsed);
            assert!(
                report.is_ok(),
                "{mode:?}:\n{}\n{printed}",
                report.diagnostics
            );
        }
    }

    #[test]
    fn inferred_lattice_orders_prev_below_input_chain() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let result = infer(&p, Mode::SInfer).expect("sinfer");
        let lat = &result.lattices.fields["Weather"];
        let prev = lat.get("prevTemp").expect("prevTemp");
        let avg = lat.get("avgTemp").expect("avgTemp");
        let index = lat.get("index").expect("index");
        // index is the lowest field; avgTemp is above it.
        assert!(lat.lt(index, avg));
        let _ = prev;
    }

    #[test]
    fn recovers_within_two_iterations() {
        use sjava_runtime::{compare_runs, Injector};
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let golden = Interpreter::new(&p, inputs(1), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 30)
            .expect("golden");
        for seed in 0..20u64 {
            let trigger = 20 + seed * 9;
            let run = Interpreter::new(&p, inputs(1), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, 30)
                .expect("injected");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 0.0);
            if stats.diverged {
                // avgTemp carries one frame of history (prevTemp): two
                // iterations bound the recovery.
                assert!(
                    stats.recovery_iterations <= 2,
                    "seed {seed}: {} iterations",
                    stats.recovery_iterations
                );
            }
        }
    }
}
