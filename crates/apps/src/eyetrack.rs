//! LEA-like eye tracker (§6.1): per iteration it takes image features,
//! localizes a face, derives an eye position, keeps the last three
//! positions in SSJava arrays, and outputs one of eight movement
//! directions. All state except the 3-deep history is overwritten each
//! iteration, so the worst-case self-stabilization period is three
//! iterations.

use sjava_runtime::{FnInput, InputProvider, Value};

/// Entry class and method.
pub const ENTRY: (&str, &str) = ("EyeTracker", "track");

/// Manually annotated source.
pub const SOURCE: &str = r#"
@LATTICE("DIRL<DEV,DEV<HIST,HIST<EYE,EYE<FACE,FACE<IMG")
class EyeTracker {
    @LOC("FACE") int faceX;
    @LOC("FACE") int faceY;
    @LOC("EYE") int eyeX;
    @LOC("EYE") int eyeY;
    @LOC("HIST") int[] histX;
    @LOC("HIST") int[] histY;

    @LATTICE("TOBJ<RAW") @THISLOC("TOBJ")
    void track() {
        histX = new int[3];
        histY = new int[3];
        SSJAVA: while (true) {
            // feature extraction from the synthetic camera frame
            @LOC("RAW") int brightness = Device.readBrightness();
            @LOC("RAW") int rawFaceX = Device.readFaceX();
            @LOC("RAW") int rawFaceY = Device.readFaceY();
            @LOC("RAW") int rawEyeDX = Device.readEyeDX();
            @LOC("RAW") int rawEyeDY = Device.readEyeDY();

            // face localization narrows the eye search region
            faceX = rawFaceX + brightness / 64;
            faceY = rawFaceY - brightness / 64;

            // eye detection relative to the face
            eyeX = faceX + rawEyeDX;
            eyeY = faceY + rawEyeDY;

            // keep the last three positions (newest at the top index)
            SSJavaArray.insert(histX, eyeX);
            SSJavaArray.insert(histY, eyeY);

            // movement estimation from the history deviation
            @LOC("TOBJ,DEV") int devX = histX[2] - histX[0];
            @LOC("TOBJ,DEV") int devY = histY[2] - histY[0];
            @LOC("TOBJ,DIRL") int dirX = 0;
            if (devX > 3) {
                dirX = 1;
            } else {
                if (devX < -3) {
                    dirX = 2;
                }
            }
            @LOC("TOBJ,DIRL") int dirY = 0;
            if (devY > 3) {
                dirY = 1;
            } else {
                if (devY < -3) {
                    dirY = 2;
                }
            }
            Out.emit(dirX + dirY * 3);
        }
    }
}
"#;

/// Deterministic synthetic camera features: a face wandering on a slow
/// Lissajous path with small eye saccades.
pub fn inputs(seed: u64) -> impl InputProvider + Clone {
    FnInput::new(move |channel, i| {
        let t = (i / 5) as f64 * 0.21 + seed as f64;
        match channel {
            "readBrightness" => Value::Int(128 + ((t * 2.0).sin() * 32.0) as i64),
            "readFaceX" => Value::Int(320 + (t.sin() * 120.0) as i64),
            "readFaceY" => Value::Int(240 + ((t * 0.6).cos() * 80.0) as i64),
            "readEyeDX" => Value::Int(((t * 3.1).sin() * 9.0) as i64),
            "readEyeDY" => Value::Int(((t * 2.3).cos() * 9.0) as i64),
            _ => Value::Int(0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_core::check_program;
    use sjava_runtime::{compare_runs, ExecOptions, Injector, Interpreter};

    #[test]
    fn checks_self_stabilizing() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn runs_and_emits_directions() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let r = Interpreter::new(&p, inputs(0), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 25)
            .expect("runs");
        assert_eq!(r.iteration_outputs.len(), 25);
        for it in &r.iteration_outputs {
            let Value::Int(d) = it[0] else { panic!() };
            assert!((0..9).contains(&d), "direction {d} out of range");
        }
    }

    #[test]
    fn recovers_within_three_iterations() {
        let p = sjava_syntax::parse(SOURCE).expect("parses");
        let golden = Interpreter::new(&p, inputs(0), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 40)
            .expect("golden");
        for seed in 0..30u64 {
            let trigger = 100 + seed * 17;
            let run = Interpreter::new(&p, inputs(0), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, 40)
                .expect("injected");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 0.0);
            if stats.diverged {
                assert!(
                    stats.recovery_iterations <= 3,
                    "seed {seed}: {} iterations",
                    stats.recovery_iterations
                );
            }
        }
    }
}
