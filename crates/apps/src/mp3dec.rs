//! JLayer-like streaming audio decoder (§6.1, §6.2.1).
//!
//! The paper's MP3 benchmark decodes a frame per event-loop iteration:
//! bitstream sync → per-granule dequantization → frequency-domain
//! transforms (the heavy stage) → overlap-add with the previous granule →
//! synthesis filter bank with a sliding window → PCM output. We reproduce
//! that pipeline structure at a configurable granule size: the only state
//! crossing iterations is the overlap buffer (refreshed from the last
//! granule each frame) and the synthesis window (fully shifted every `W`
//! samples), giving exactly the paper's recovery profile — late-stage
//! errors die within a fraction of a frame, granule-stage errors persist
//! for up to about two frames, nothing survives longer.
//!
//! The `BitStream` is trusted (resyncs to frames on its own), as in §6.1.

use std::sync::OnceLock;

use sjava_runtime::{InputProvider, Value};

/// Entry class and method.
pub const ENTRY: (&str, &str) = ("MP3Decoder", "decode");

/// Default granule size (samples per granule; a frame is two granules).
/// The paper's MP3 frames have 576-sample granules; we default to 192 to
/// keep the 1,000-trial experiment fast, and report recovery both in
/// samples and in frame-relative units.
pub const GRANULE: usize = 192;

/// Synthesis-filter window length.
pub const WINDOW: usize = 8;

/// Builds the decoder source for a given granule size and window length
/// (the window must be a power of two for the unrolled butterfly).
pub fn source_with(granule: usize, window: usize) -> String {
    let g = granule;
    let w = window;
    assert!(w.is_power_of_two(), "window must be a power of two");

    // Unrolled butterfly network over the window — the real JLayer
    // synthesis filter is a large unrolled DCT with hundreds of
    // temporaries, which is what makes its naively-inferred lattice
    // explode (Fig 5.11). Each stage's temporaries share one location.
    let mut butterfly = String::new();
    let mut prev: Vec<String> = (0..w).map(|k| format!("window[{k}]")).collect();
    let mut stage = 0usize;
    let mut stage_locs: Vec<String> = Vec::new();
    while prev.len() > 1 {
        stage += 1;
        let loc = format!("T{stage}");
        let mut cur = Vec::new();
        for (idx, pair) in prev.chunks(2).enumerate() {
            let name = format!("s{stage}_{idx}");
            let expr = if pair.len() == 2 {
                let op = if idx % 2 == 0 { "+" } else { "-" };
                format!("{} {op} {}", pair[0], pair[1])
            } else {
                format!("{} * 0.5", pair[0])
            };
            butterfly.push_str(&format!("        @LOC(\"{loc}\") float {name} = {expr};\n"));
            cur.push(name);
        }
        stage_locs.push(loc);
        prev = cur;
    }
    let butter_out = prev.into_iter().next().expect("nonempty window");
    // Method lattice: R < RMIX < ACCL and RMIX < Tm < ... < T1 < SOBJ < P.
    let mut lattice = String::from("R<MIXL,MIXL<RMIX,RMIX<ACCL,ACCL<SOBJ,ACCL<KI,SOBJ<P,ACCL*,KI*");
    let mut upper = "SOBJ".to_string();
    for loc in &stage_locs {
        lattice.push_str(&format!(",{loc}<{upper}"));
        upper = loc.clone();
    }
    lattice.push_str(&format!(",RMIX<{upper}"));

    format!(
        r#"
@TRUSTED
class BitStream {{
    int offset;
    // resyncs to the next frame and returns its header word
    int readHeader() {{
        offset = offset + 1;
        return Device.readHeader();
    }}
    float readSample() {{
        return Device.readSample();
    }}
}}

@LATTICE("WIN")
class SynthesisFilter {{
    @LOC("WIN") float[] window = new float[{w}];

    // per-sample synthesis: FIR over the sliding window plus an unrolled
    // butterfly network (a miniature of JLayer's unrolled DCT)
    @LATTICE("{lattice}") @THISLOC("SOBJ") @RETURNLOC("R")
    float compute(@LOC("P") float in) {{
        SSJavaArray.insert(window, in);
        @LOC("ACCL") float acc = 0.0;
        for (@LOC("KI") int k = 0; k < {w}; k++) {{
            acc = acc + window[k] * {coef};
        }}
{butterfly}
        @LOC("MIXL") float mix = acc * 0.7 + {butter_out} * {bcoef};
        @LOC("R") float r = mix * 0.92;
        return r;
    }}
}}

@LATTICE("SYN<SMP,SMP<MIX,MIX<GR0,MIX<OV,GR0<SCL,GR1<SCL,OV<GR1,SCL<HD,HD<BITS,GR0*,GR1*")
class MP3Decoder {{
    @LOC("BITS") BitStream bits;
    @LOC("HD") int header;
    @LOC("GR0") float[] granule0;
    @LOC("GR1") float[] granule1;
    @LOC("OV") float[] overlap;
    @LOC("SYN") SynthesisFilter synth;

    @LATTICE("PCMV<DOBJ,DOBJ<I1,DOBJ<I2,DOBJ<J1,DOBJ<J2,DOBJ<K1,DOBJ<K2,I1*,I2*,J1*,J2*,K1*,K2*")
    @THISLOC("DOBJ")
    void decode() {{
        bits = new BitStream();
        granule0 = new float[{g}];
        granule1 = new float[{g}];
        overlap = new float[{g}];
        synth = new SynthesisFilter();
        SSJAVA: while (true) {{
            // frame sync: the trusted bitstream finds the next header
            header = bits.readHeader();
            @LOC("DOBJ,SCL") float scale = 0.5 + (header - 4000) * 0.001;

            // dequantization: fresh spectral data for both granules
            for (@LOC("I1") int i1 = 0; i1 < {g}; i1++) {{
                granule0[i1] = bits.readSample() * scale;
            }}
            for (@LOC("I2") int i2 = 0; i2 < {g}; i2++) {{
                granule1[i2] = bits.readSample() * scale;
            }}

            // frequency-domain transforms (the heavy granule stage)
            for (@LOC("J1") int j1 = 1; j1 < {g}; j1++) {{
                granule0[j1] = granule0[j1] * 0.85 + granule0[j1 - 1] * 0.15;
            }}
            for (@LOC("J2") int j2 = 1; j2 < {g}; j2++) {{
                granule1[j2] = granule1[j2] * 0.85 + granule1[j2 - 1] * 0.15;
            }}

            // hybrid overlap-add + synthesis filter bank, granule 0
            for (@LOC("K1") int k1 = 0; k1 < {g}; k1++) {{
                @LOC("DOBJ,SMP") float s0 = granule0[k1] + overlap[k1] * 0.5;
                @LOC("PCMV") float p0 = synth.compute(s0);
                Out.emit(p0 * 32767.0);
            }}
            // granule 1 + overlap refresh for the next frame
            for (@LOC("K2") int k2 = 0; k2 < {g}; k2++) {{
                @LOC("DOBJ,SMP") float s1 = granule1[k2] + overlap[k2] * 0.5;
                @LOC("PCMV") float p1 = synth.compute(s1);
                Out.emit(p1 * 32767.0);
                overlap[k2] = granule1[k2] * 0.4;
            }}
        }}
    }}
}}
"#,
        coef = 1.0 / (w as f64),
        bcoef = 0.3 / (w as f64),
    )
}

/// The default decoder source.
pub fn source() -> &'static str {
    static SRC: OnceLock<String> = OnceLock::new();
    SRC.get_or_init(|| source_with(GRANULE, WINDOW))
}

/// Frame-synced synthetic bitstream.
///
/// The paper's `BitStream` "was carefully manually designed to be
/// self-stabilizing by resyncing to MP3 frames" (§6.1) and "all input
/// reads are performed unconditionally in every iteration … to eliminate
/// the possibility of framing errors" (§1.1.2). We model that by making
/// the sample channel a function of `(frame, position-within-frame)`:
/// each `readHeader` starts the next frame, so a corrupted inner-loop
/// index can over- or under-read *within* a frame without desynchronizing
/// all subsequent frames.
#[derive(Debug, Clone)]
pub struct FrameSyncedInput {
    seed: u64,
    granule: usize,
    frame: u64,
    pos: u64,
}

impl FrameSyncedInput {
    /// Creates a bitstream for the given seed and granule size.
    pub fn new(seed: u64, granule: usize) -> Self {
        FrameSyncedInput {
            seed,
            granule,
            frame: 0,
            pos: 0,
        }
    }
}

impl InputProvider for FrameSyncedInput {
    fn next(&mut self, channel: &str) -> Value {
        match channel {
            "readHeader" => {
                self.frame += 1;
                self.pos = 0;
                Value::Int(4040 + ((self.frame.wrapping_add(self.seed)) % 16) as i64)
            }
            _ => {
                let global = (self.frame.saturating_sub(1)) * 2 * self.granule as u64 + self.pos;
                self.pos += 1;
                let t = global as f64 * 0.071 + self.seed as f64;
                Value::Float(0.6 * t.sin() + 0.3 * (t * 2.57).sin() + 0.1 * (t * 5.91).cos())
            }
        }
    }
}

/// Deterministic synthetic audio bitstream for the default granule size.
pub fn inputs(seed: u64) -> FrameSyncedInput {
    FrameSyncedInput::new(seed, GRANULE)
}

/// Bitstream matching a custom granule size (must agree with
/// [`source_with`]).
pub fn inputs_for(seed: u64, granule: usize) -> FrameSyncedInput {
    FrameSyncedInput::new(seed, granule)
}

/// Samples per frame for a given granule size.
pub fn frame_samples(granule: usize) -> usize {
    2 * granule
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_core::check_program;
    use sjava_runtime::{compare_runs, ExecOptions, Injector, Interpreter};

    fn small_source() -> String {
        source_with(24, 4)
    }

    #[test]
    fn checks_self_stabilizing() {
        let p = sjava_syntax::parse(source()).expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn runs_and_produces_pcm() {
        let src = small_source();
        let p = sjava_syntax::parse(&src).expect("parses");
        let r = Interpreter::new(&p, inputs_for(0, 24), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 3)
            .expect("runs");
        assert_eq!(r.iteration_outputs.len(), 3);
        assert_eq!(r.iteration_outputs[0].len(), 2 * 24);
        assert!(r.error_log.is_empty(), "{:?}", r.error_log);
        // Output is a bounded audio signal.
        for v in r.outputs() {
            let Value::Float(x) = v else {
                panic!("non-float pcm")
            };
            assert!(x.abs() <= 32767.0 * 2.0, "sample {x} out of range");
        }
    }

    #[test]
    fn golden_runs_are_deterministic() {
        let src = small_source();
        let p = sjava_syntax::parse(&src).expect("parses");
        let a = Interpreter::new(&p, inputs_for(0, 24), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 4)
            .expect("a");
        let b = Interpreter::new(&p, inputs_for(0, 24), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 4)
            .expect("b");
        assert_eq!(a.iteration_outputs, b.iteration_outputs);
    }

    #[test]
    fn recovery_is_bounded_by_two_frames_plus_window() {
        let g = 24;
        let w = 4;
        let src = source_with(g, w);
        let p = sjava_syntax::parse(&src).expect("parses");
        let frames = 8;
        let golden = Interpreter::new(&p, inputs_for(0, g), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, frames)
            .expect("golden");
        let total_steps = golden.steps;
        for seed in 0..40u64 {
            let trigger = 1 + (seed * 1013) % (total_steps * 3 / 4);
            let run = Interpreter::new(&p, inputs_for(0, g), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, frames)
                .expect("injected");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 1e-9);
            if stats.diverged {
                // Overlap buffer: ≤1 extra frame; the synthesis window
                // carries ≤w further samples into the frame after that.
                assert!(
                    stats.recovery_samples <= 2 * 2 * g + w,
                    "seed {seed}: {} samples ({:?}..{:?})",
                    stats.recovery_samples,
                    stats.first_bad_sample,
                    stats.last_bad_sample
                );
                assert!(stats.recovery_iterations <= 3);
            }
        }
    }

    #[test]
    fn late_stage_errors_die_faster_than_granule_errors() {
        // Structural sanity behind Fig 6.1's shape: an error injected into
        // the synthesis stage affects at most window-length samples while
        // a granule-1 error propagates through the overlap into the next
        // frame.
        let g = 24;
        let w = 4;
        let src = source_with(g, w);
        let p = sjava_syntax::parse(&src).expect("parses");
        let golden = Interpreter::new(&p, inputs_for(0, g), ExecOptions::default())
            .run(ENTRY.0, ENTRY.1, 6)
            .expect("golden");
        let mut granule_recoveries = Vec::new();
        let mut other_recoveries = Vec::new();
        for seed in 0..120u64 {
            let trigger = 1 + (seed * 389) % (golden.steps / 2);
            let run = Interpreter::new(&p, inputs_for(0, g), ExecOptions::default())
                .with_injector(Injector::new(seed, trigger))
                .run(ENTRY.0, ENTRY.1, 6)
                .expect("run");
            let stats = compare_runs(&golden.iteration_outputs, &run.iteration_outputs, 1e-9);
            if stats.diverged {
                if stats.recovery_samples > g {
                    granule_recoveries.push(stats.recovery_samples);
                } else {
                    other_recoveries.push(stats.recovery_samples);
                }
            }
        }
        assert!(
            !granule_recoveries.is_empty(),
            "some injections must hit the granule stage"
        );
        assert!(
            !other_recoveries.is_empty(),
            "some injections must hit the late stages"
        );
    }
}
