//! # sjava-apps
//!
//! The benchmark applications of the Self-Stabilizing Java evaluation
//! (§6.1), written in the SJava dialect with the paper's manual
//! annotations:
//!
//! - [`mp3dec`] — a JLayer-like streaming audio decoder (trusted
//!   bitstream, dequantization, frequency transforms, overlap-add,
//!   synthesis filter bank);
//! - [`eyetrack`] — a LEA-like eye tracker with a 3-deep position
//!   history;
//! - [`sumobot`] — a sumo-robot controller with a trusted motor
//!   controller;
//!
//! plus the two expository programs:
//!
//! - [`windsensor`] — the Fig 2.1 wind-direction sensor;
//! - [`weather`] — the Fig 5.1 weather-index example (unannotated, for
//!   inference).
//!
//! Each module exports its dialect `SOURCE`, the `ENTRY` point, and a
//! deterministic input generator, so the same program can be checked,
//! executed, error-injected and re-inferred.

#![warn(missing_docs)]

pub mod eyetrack;
pub mod mp3dec;
pub mod stats;
pub mod sumobot;
pub mod weather;
pub mod windsensor;

pub use stats::{annotation_stats, AnnotationStats};
