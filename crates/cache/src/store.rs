//! Concurrent content-addressed artifact store — the disk layer behind
//! directory-backed [`crate::IncrementalChecker`] sessions and sharded
//! `sjava check --shards=N` workers.
//!
//! ## Layout (format v5)
//!
//! Earlier formats serialized the whole session into one monolithic
//! `cache.bin` rewritten after every check — a design that cannot be
//! shared by concurrent processes (last writer wins, droppings half of
//! each worker's entries) and that forces a full decode up front. Version
//! 4 introduced **one object per artifact** under a fan-out directory;
//! version 5 re-keys entries for dependency-tracked revalidation (the
//! key no longer folds the whole-program interface hash) and pairs each
//! entry with a recorded read-set:
//!
//! ```text
//! <dir>/v5/objects/<hh>/<16-hex-key>.<kind>
//! ```
//!
//! where `<hh>` is the first byte of the key in hex (256-way fan-out) and
//! `<kind>` is one of:
//!
//! - `entry` — a per-method analysis result ([`crate::MethodEntry`]),
//!   keyed by the method's content fingerprint (body + callee
//!   summaries; interface facts live in the paired `deps` object);
//! - `deps` — the read-set recorded while that entry was computed:
//!   `(DepKey, fingerprint)` pairs plus the checksum of the entry
//!   payload they were recorded for, so readers never combine an entry
//!   and a read-set from different publishes;
//! - `callees` — a method's direct-callee set, keyed on
//!   `mix(iface_hash, local_fp)`;
//! - `time` — the method's last measured flow-check duration in
//!   nanoseconds, keyed by the *name* hash (stable across edits), feeding
//!   the fan-out cost model on warm runs.
//!
//! Each object file is `MAGIC ‖ version ‖ FNV-64(payload) ‖ payload`.
//!
//! ## Concurrency contract
//!
//! - **Publishes are atomic**: writers encode into a unique temp file
//!   (pid + per-process counter) in the final directory, then `rename`
//!   it over the destination — readers never observe a partially-written
//!   object, even across processes racing on the same key.
//! - **Reads are lock-free**: a read is one `read()` of a complete file
//!   plus a checksum verification; no lock file, no header locks.
//! - **Corruption is tolerated**: a torn, truncated, bit-flipped, or
//!   foreign-format object fails the checksum/bounds checks, is
//!   best-effort deleted, and reads as a miss. The store never replays a
//!   plausibly-decodable-but-wrong artifact: diagnostics are content the
//!   checker trusts verbatim, so "mostly intact" is not good enough.
//! - **Size-bounded**: [`ArtifactStore::evict_to`] deletes
//!   oldest-modified objects first until the store fits a byte budget
//!   (`SJAVA_CACHE_MAX_BYTES` wires this to every persisting check).
//!
//! Entries are content-addressed and valid forever, so eviction is purely
//! a disk-space policy, never a correctness event. A v3 (or older)
//! `cache.bin` in the same directory is ignored wholesale — old formats
//! degrade to clean misses.

use crate::MethodEntry;
use sjava_analysis::callgraph::MethodRef;
use sjava_analysis::heappath::HeapPath;
use sjava_analysis::written::MethodSummary;
use sjava_core::shared::SharedMember;
use sjava_syntax::wire::{self, Reader};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Object-file magic; anything else is ignored wholesale.
const MAGIC: &[u8; 10] = b"SJAVACACHE";
/// Store format version. Versions 1–3 were the monolithic `cache.bin`
/// formats; version 4 introduced the per-object content-addressed store;
/// version 5 re-keys entries for dependency-tracked revalidation and
/// adds the `deps` object kind. Old formats live at different paths
/// entirely and are never read — a v5 store opened over an older
/// directory starts from clean misses.
const VERSION: u32 = 5;

/// Environment variable bounding the store's total size in bytes. When
/// set, every persisting check evicts oldest-modified objects until the
/// store fits. Malformed values warn once on stderr and leave the store
/// unbounded.
pub const MAX_BYTES_ENV: &str = "SJAVA_CACHE_MAX_BYTES";

/// Distinguishes the artifact kinds sharing one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Per-method analysis result, keyed by content fingerprint.
    Entry,
    /// Recorded read-set of an entry, under the same key as the entry.
    Deps,
    /// Direct-callee set, keyed by `mix(iface, local_fp)`.
    Callees,
    /// Measured flow-check nanoseconds, keyed by method-name hash.
    Time,
}

impl Kind {
    fn ext(self) -> &'static str {
        match self {
            Kind::Entry => "entry",
            Kind::Deps => "deps",
            Kind::Callees => "callees",
            Kind::Time => "time",
        }
    }
}

/// Monotone per-process counter making temp-file names unique even when
/// several threads publish concurrently.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A handle on one on-disk artifact store rooted at a cache directory.
/// Cloning is cheap; handles in different processes pointed at the same
/// directory share the store safely.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (and creates, if needed) the store under `dir`, verifying
    /// the object tree is writable.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created —
    /// callers degrade to a no-cache session (see
    /// [`crate::IncrementalChecker::from_env`]).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        let root = dir.into().join(format!("v{VERSION}")).join("objects");
        std::fs::create_dir_all(&root)?;
        // `create_dir_all` succeeds on an existing but read-only tree;
        // probe writability explicitly so misconfiguration surfaces at
        // open time, not as silent per-object failures mid-check.
        let probe = root.join(format!(
            ".probe-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&probe, b"")?;
        let _ = std::fs::remove_file(&probe);
        Ok(ArtifactStore { root })
    }

    /// The object-tree root (`<dir>/v5/objects`), exposed for tests and
    /// maintenance tooling.
    pub fn objects_root(&self) -> &Path {
        &self.root
    }

    /// Path of the object holding `kind`/`key`.
    pub fn object_path(&self, kind: Kind, key: u64) -> PathBuf {
        let hex = format!("{key:016x}");
        self.root
            .join(&hex[..2])
            .join(format!("{hex}.{}", kind.ext()))
    }

    /// Reads and verifies an object's payload. A missing, torn,
    /// truncated, bit-flipped, or foreign-format file reads as `None`;
    /// verifiably corrupt files are best-effort deleted so the next
    /// writer republishes them.
    pub fn get(&self, kind: Kind, key: u64) -> Option<Vec<u8>> {
        let path = self.object_path(kind, key);
        let buf = std::fs::read(&path).ok()?;
        match decode_object(&buf) {
            Some(payload) => Some(payload.to_vec()),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Publishes `payload` under `kind`/`key` atomically (temp file +
    /// rename). With `replace: false` an existing object is left
    /// untouched — entries are content-addressed, so the bytes on disk
    /// are already the right ones and skipping the write is the fast
    /// path. `replace: true` overwrites (used for `time` objects, whose
    /// measurements refresh on every run).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers treat persistence as best-effort.
    pub fn put(&self, kind: Kind, key: u64, payload: &[u8], replace: bool) -> std::io::Result<()> {
        let path = self.object_path(kind, key);
        if !replace && path.exists() {
            return Ok(());
        }
        let dir = path.parent().expect("object path has a fan-out parent");
        std::fs::create_dir_all(dir)?;
        let mut buf = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
        buf.extend_from_slice(MAGIC);
        wire::put_u32(&mut buf, VERSION);
        wire::put_u64(&mut buf, checksum(payload));
        buf.extend_from_slice(payload);
        // The temp file lives in the destination directory so the final
        // `rename` never crosses a filesystem boundary (which would turn
        // the atomic publish into a copy).
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &buf)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Total bytes currently held by the store's objects.
    pub fn size_bytes(&self) -> u64 {
        self.walk().iter().map(|(_, len, _)| len).sum()
    }

    /// Number of objects currently in the store (any kind).
    pub fn object_count(&self) -> usize {
        self.walk().len()
    }

    /// Deletes oldest-modified objects until the store holds at most
    /// `max_bytes`, returning the number of objects evicted. Eviction is
    /// approximate LRU: publish time stands in for use time, which is
    /// exact for `time` objects (rewritten each run) and conservative for
    /// content-addressed entries (old-but-hot entries may be evicted and
    /// will simply be recomputed and republished — a disk-space policy,
    /// never a correctness event).
    pub fn evict_to(&self, max_bytes: u64) -> usize {
        let mut objects = self.walk();
        let mut total: u64 = objects.iter().map(|(_, len, _)| len).sum();
        if total <= max_bytes {
            return 0;
        }
        // Oldest first; path tiebreak keeps the order total so racing
        // evictors delete the same prefix.
        objects.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        let mut evicted = 0;
        for (_, len, path) in objects {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
            }
        }
        evicted
    }

    /// Every object as `(mtime, len, path)`. Temp files and foreign names
    /// are skipped; a concurrently-deleted file is silently dropped.
    fn walk(&self) -> Vec<(std::time::SystemTime, u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(fanout) = std::fs::read_dir(&self.root) else {
            return out;
        };
        for sub in fanout.flatten() {
            let Ok(entries) = std::fs::read_dir(sub.path()) else {
                continue;
            };
            for f in entries.flatten() {
                let name = f.file_name();
                if name.to_string_lossy().starts_with('.') {
                    continue; // temp or probe file
                }
                if let Ok(meta) = f.metadata() {
                    if meta.is_file() {
                        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                        out.push((mtime, meta.len(), f.path()));
                    }
                }
            }
        }
        out
    }

    // ---- typed helpers over the raw object API -------------------------

    /// Fetches and decodes a per-method entry together with the checksum
    /// of its raw payload — the handle that pairs it with a `deps`
    /// object published for the same bytes.
    pub(crate) fn get_entry_with_fp(&self, key: u64) -> Option<(MethodEntry, u64)> {
        let payload = self.get(Kind::Entry, key)?;
        Some((decode_entry(&payload)?, checksum(&payload)))
    }

    /// Publishes a per-method entry, returning the payload checksum to
    /// pair with its read-set. Always replaces: since the key no longer
    /// folds interface facts, the same key can legitimately hold a
    /// different result after an interface edit (the paired `deps`
    /// object is what distinguishes them).
    pub(crate) fn put_entry(&self, key: u64, entry: &MethodEntry) -> std::io::Result<u64> {
        let payload = encode_entry(entry);
        let fp = checksum(&payload);
        self.put(Kind::Entry, key, &payload, true)?;
        Ok(fp)
    }

    /// Fetches and decodes an entry's recorded read-set, returning the
    /// dep list and the entry-payload checksum it was recorded for.
    pub(crate) fn get_deps(
        &self,
        key: u64,
    ) -> Option<(Vec<(sjava_syntax::track::DepKey, u64)>, u64)> {
        crate::deps::decode_deps(&self.get(Kind::Deps, key)?)
    }

    /// Publishes an entry's recorded read-set, paired (via `entry_fp`)
    /// with the entry payload it was recorded alongside.
    pub(crate) fn put_deps(
        &self,
        key: u64,
        deps: &[(sjava_syntax::track::DepKey, u64)],
        entry_fp: u64,
    ) -> std::io::Result<()> {
        self.put(
            Kind::Deps,
            key,
            &crate::deps::encode_deps(deps, entry_fp),
            true,
        )
    }

    /// Fetches and decodes a callee set.
    pub(crate) fn get_callees(&self, key: u64) -> Option<BTreeSet<MethodRef>> {
        decode_callees(&self.get(Kind::Callees, key)?)
    }

    /// Publishes a callee set (skip-if-exists).
    pub(crate) fn put_callees(&self, key: u64, set: &BTreeSet<MethodRef>) -> std::io::Result<()> {
        self.put(Kind::Callees, key, &encode_callees(set), false)
    }

    /// Fetches a recorded flow-check duration in nanoseconds.
    pub(crate) fn get_time(&self, key: u64) -> Option<u64> {
        let payload = self.get(Kind::Time, key)?;
        Reader::new(&payload).u64()
    }

    /// Publishes a flow-check duration (always replaces — measurements
    /// refresh every run).
    pub(crate) fn put_time(&self, key: u64, nanos: u64) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(8);
        wire::put_u64(&mut payload, nanos);
        self.put(Kind::Time, key, &payload, true)
    }
}

/// FNV-64 digest of the payload bytes, stored in the object header and
/// verified before any decoding happens.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = sjava_lattice::Fnv64::new();
    h.write(payload);
    h.finish()
}

/// Validates an object file's header and checksum, returning the payload.
fn decode_object(buf: &[u8]) -> Option<&[u8]> {
    let mut r = Reader::new(buf);
    if r.bytes(MAGIC.len())? != MAGIC || r.u32()? != VERSION {
        return None;
    }
    let expected = r.u64()?;
    let payload = r.rest();
    (checksum(payload) == expected).then_some(payload)
}

// ---- payload codecs ----------------------------------------------------

fn put_paths(buf: &mut Vec<u8>, paths: &BTreeSet<HeapPath>) {
    wire::put_u64(buf, paths.len() as u64);
    for p in paths {
        wire::put_u64(buf, p.0.len() as u64);
        for seg in &p.0 {
            wire::put_str(buf, seg);
        }
    }
}

fn put_members(buf: &mut Vec<u8>, members: &BTreeSet<SharedMember>) {
    wire::put_u64(buf, members.len() as u64);
    for (class, field) in members {
        wire::put_str(buf, class);
        wire::put_str(buf, field);
    }
}

/// Deterministic encoding of one per-method entry (equal entries produce
/// equal bytes — all sets are ordered).
pub(crate) fn encode_entry(e: &MethodEntry) -> Vec<u8> {
    let mut buf = Vec::new();
    put_paths(&mut buf, &e.summary.reads);
    put_paths(&mut buf, &e.summary.may_writes);
    put_paths(&mut buf, &e.summary.must_writes);
    wire::put_diags(&mut buf, &e.flow);
    wire::put_diags(&mut buf, &e.alias);
    buf.push(e.shared_present as u8);
    put_members(&mut buf, &e.shared_clears);
    put_members(&mut buf, &e.shared_reads);
    wire::put_u64(&mut buf, e.term_failures as u64);
    wire::put_diags(&mut buf, &e.term);
    buf
}

fn paths(r: &mut Reader<'_>) -> Option<BTreeSet<HeapPath>> {
    let n = r.count()?;
    let mut out = BTreeSet::new();
    for _ in 0..n {
        let segs = r.count()?;
        let mut path = Vec::new();
        for _ in 0..segs {
            path.push(r.string()?);
        }
        out.insert(HeapPath(path));
    }
    Some(out)
}

fn members(r: &mut Reader<'_>) -> Option<BTreeSet<SharedMember>> {
    let n = r.count()?;
    let mut out = BTreeSet::new();
    for _ in 0..n {
        out.insert((r.string()?, r.string()?));
    }
    Some(out)
}

/// Decodes one per-method entry; `None` on any truncation, bad tag, or
/// trailing garbage.
pub(crate) fn decode_entry(payload: &[u8]) -> Option<MethodEntry> {
    let mut r = Reader::new(payload);
    let entry = MethodEntry {
        summary: MethodSummary {
            reads: paths(&mut r)?,
            may_writes: paths(&mut r)?,
            must_writes: paths(&mut r)?,
        },
        flow: r.diags()?,
        alias: r.diags()?,
        shared_present: match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        },
        shared_clears: members(&mut r)?,
        shared_reads: members(&mut r)?,
        term_failures: r.u64()? as usize,
        term: r.diags()?,
    };
    r.is_exhausted().then_some(entry)
}

/// Deterministic encoding of a direct-callee set.
pub(crate) fn encode_callees(set: &BTreeSet<MethodRef>) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, set.len() as u64);
    for mref in set {
        wire::put_str(&mut buf, &mref.0);
        wire::put_str(&mut buf, &mref.1);
    }
    buf
}

/// Decodes a direct-callee set.
pub(crate) fn decode_callees(payload: &[u8]) -> Option<BTreeSet<MethodRef>> {
    let mut r = Reader::new(payload);
    let n = r.count()?;
    let mut out = BTreeSet::new();
    for _ in 0..n {
        out.insert((r.string()?, r.string()?));
    }
    r.is_exhausted().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::span::Span;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sjava-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> MethodEntry {
        MethodEntry {
            summary: MethodSummary {
                reads: [HeapPath(vec!["a".into(), "b".into()])].into(),
                may_writes: [HeapPath::root("x")].into(),
                must_writes: BTreeSet::new(),
            },
            flow: vec![
                sjava_syntax::diag::Diag::flow_up("flow violation", Span::new(3, 9))
                    .with_note("note")
                    .with_label(Span::new(0, 2), "lattice declared here")
                    .with_suggestion(Span::new(3, 3), "fix ", "insert fix"),
            ],
            alias: vec![],
            shared_present: true,
            shared_clears: [("C".to_string(), "f".to_string())].into(),
            shared_reads: BTreeSet::new(),
            term_failures: 2,
            term: vec![sjava_syntax::diag::Diag::unprovable_loop(
                "loop may not terminate",
                Span::new(10, 20),
            )],
        }
    }

    #[test]
    fn objects_round_trip() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::open(&dir).expect("open");
        let entry = sample_entry();
        let efp = store.put_entry(42, &entry).expect("put entry");
        assert_eq!(store.get_entry_with_fp(42).expect("hit"), (entry, efp));
        assert_eq!(store.get_entry_with_fp(43), None, "unrelated key misses");

        let deps = vec![
            (sjava_syntax::track::DepKey::Iface("A".into()), 11u64),
            (sjava_syntax::track::DepKey::SharedGate, 22u64),
        ];
        store.put_deps(42, &deps, efp).expect("put deps");
        assert_eq!(store.get_deps(42).expect("hit"), (deps, efp));

        let callees: BTreeSet<MethodRef> = [("A".to_string(), "f".to_string())].into();
        store.put_callees(9, &callees).expect("put callees");
        assert_eq!(store.get_callees(9).expect("hit"), callees);

        store.put_time(7, 123_456).expect("put time");
        assert_eq!(store.get_time(7), Some(123_456));
        store.put_time(7, 999).expect("replace time");
        assert_eq!(store.get_time(7), Some(999), "time objects replace");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_replace_repairs_the_pairing_checksum() {
        // The same key can hold a different result after an interface
        // edit; re-publishing must both rewrite the bytes and hand back
        // the new checksum so the paired deps object follows.
        let dir = scratch("replace");
        let store = ArtifactStore::open(&dir).expect("open");
        let fp1 = store.put_entry(3, &sample_entry()).expect("put");
        let mut other = sample_entry();
        other.term_failures = 9;
        let fp2 = store.put_entry(3, &other).expect("re-put");
        assert_ne!(fp1, fp2);
        assert_eq!(store.get_entry_with_fp(3).expect("hit"), (other, fp2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_flipped_bit_reads_as_a_miss() {
        let dir = scratch("bitflip");
        let store = ArtifactStore::open(&dir).expect("open");
        store.put_entry(1, &sample_entry()).expect("put");
        let path = store.object_path(Kind::Entry, 1);
        let clean = std::fs::read(&path).expect("read");
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x10;
            std::fs::write(&path, &corrupt).expect("write");
            assert_eq!(
                store.get_entry_with_fp(1),
                None,
                "flipped byte at {pos} must invalidate the object"
            );
            // The corrupt object was deleted so a writer can republish.
            assert!(!path.exists(), "corrupt object at {pos} must be removed");
            std::fs::write(&path, &clean).expect("restore");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncations_and_foreign_files_read_as_misses() {
        let dir = scratch("truncate");
        let store = ArtifactStore::open(&dir).expect("open");
        store.put_entry(5, &sample_entry()).expect("put");
        let path = store.object_path(Kind::Entry, 5);
        let clean = std::fs::read(&path).expect("read");
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).expect("truncate");
            assert_eq!(
                store.get_entry_with_fp(5),
                None,
                "truncation at {cut} must miss"
            );
        }
        std::fs::write(&path, b"NOTANOBJECT").expect("foreign");
        assert_eq!(store.get_entry_with_fp(5), None);
        // Old monolithic formats (a `cache.bin` beside the object tree)
        // are ignored wholesale — the store never even opens them.
        std::fs::write(dir.join("cache.bin"), b"SJAVACACHE old format").expect("v3 file");
        assert_eq!(store.get_entry_with_fp(5), None);
        assert_eq!(store.get_entry_with_fp(6), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn skip_if_exists_does_not_rewrite() {
        let dir = scratch("skip");
        let store = ArtifactStore::open(&dir).expect("open");
        // Callee sets stay content-addressed (their key folds the
        // interface hash), so they keep the skip-if-exists fast path.
        let callees: BTreeSet<MethodRef> = [("A".to_string(), "f".to_string())].into();
        store.put_callees(3, &callees).expect("put");
        let path = store.object_path(Kind::Callees, 3);
        let before = std::fs::metadata(&path).expect("meta").modified().ok();
        let marker = std::fs::read(&path).expect("read");
        store.put_callees(3, &callees).expect("re-put");
        assert_eq!(std::fs::read(&path).expect("read"), marker);
        assert_eq!(
            std::fs::metadata(&path).expect("meta").modified().ok(),
            before
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_oldest_first_and_bounded() {
        let dir = scratch("evict");
        let store = ArtifactStore::open(&dir).expect("open");
        // Three objects with strictly increasing mtimes.
        for key in 0..3u64 {
            store.put_time(key, key).expect("put");
            let path = store.object_path(Kind::Time, key);
            // Space the mtimes out explicitly — filesystem timestamp
            // granularity can be coarse.
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + key * 1000);
            let f = std::fs::File::options()
                .append(true)
                .open(&path)
                .expect("open");
            f.set_modified(t).expect("set mtime");
        }
        let total = store.size_bytes();
        let per_object = total / 3;
        // Budget for two objects: the oldest (key 0) must go.
        let evicted = store.evict_to(per_object * 2);
        assert_eq!(evicted, 1);
        assert_eq!(store.get_time(0), None, "oldest object evicted");
        assert_eq!(store.get_time(1), Some(1));
        assert_eq!(store.get_time(2), Some(2));
        // Already under budget: no-op.
        assert_eq!(store.evict_to(u64::MAX), 0);
        // Zero budget clears everything.
        store.evict_to(0);
        assert_eq!(store.object_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_one_key_never_tear_a_read() {
        // N writers race publishing the same key while readers poll: every
        // successful read must be one of the complete payloads, never a
        // torn mixture. (In real use content addressing makes all writers
        // agree on the payload; racing distinct payloads is strictly
        // harsher than production.)
        let dir = scratch("torn");
        let store = ArtifactStore::open(&dir).expect("open");
        let payloads: Vec<Vec<u8>> = (0..4u8)
            .map(|w| {
                // Large enough that a torn write would be observable.
                (0..64 * 1024).map(|i| w.wrapping_add(i as u8)).collect()
            })
            .collect();
        std::thread::scope(|s| {
            for p in &payloads {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..50 {
                        store.put(Kind::Entry, 77, p, true).expect("put");
                    }
                });
            }
            for _ in 0..4 {
                let store = &store;
                let payloads = &payloads;
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(got) = store.get(Kind::Entry, 77) {
                            assert!(payloads.contains(&got), "read returned a torn object");
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
