//! Content fingerprints for programs, methods, and the call graph.
//!
//! The invariant every cache key must uphold: **equal fingerprint ⇒
//! byte-identical analysis output**. Three layers compose:
//!
//! - [`iface_hash`] digests every class *interface* — name, superclass,
//!   class annotations (including `@LATTICE` declarations), all fields,
//!   and every method's signature (annotations, staticness, return type,
//!   parameters, span). Bodies are excluded. It keys the cached lattice
//!   model. Per-method entries no longer fold it: interface edits are
//!   handled by red-green revalidation of each entry's recorded
//!   dependency facts ([`crate::deps`]), so a signature edit invalidates
//!   exactly the methods that *read* the changed declaration instead of
//!   the whole program.
//! - [`local_fp`] digests one method's resolved declaration, spans
//!   included. Spans matter because cached
//!   [`sjava_syntax::diag::Diagnostic`]s embed them: a method whose text
//!   moved must be treated as dirty or replayed diagnostics would point
//!   at stale offsets. Bodies are hashed structurally (a direct walk of
//!   the AST), not via `Debug` formatting — the formatter is an order of
//!   magnitude slower on large unrolled methods and fingerprinting runs
//!   on *every* check, cached or not.
//! - [`method_fps`] folds, bottom-up over the call graph, each method's
//!   local fingerprint with `iface_hash` and the fingerprints of its
//!   (sorted) callees — the *coarse* dirty-cone judgment of the previous
//!   invalidation scheme. The cache no longer keys on it; it survives as
//!   the soundness oracle: the property suite asserts the fine-grained
//!   re-check set is always a subset of this coarse dirty set.
//!
//! All hashing is FNV-1a via [`sjava_lattice::fingerprint`]: stable
//! across processes and platforms, no randomness, no clocks.

use sjava_analysis::callgraph::{CallGraph, MethodRef};
use sjava_lattice::{hash_debug, Fnv64};
use sjava_syntax::ast::{Block, Expr, LValue, MethodDecl, Program, Stmt};
use sjava_syntax::span::Span;
use std::collections::{BTreeMap, HashMap};

/// Digest of every class interface in declaration order, folded from the
/// per-class [`sjava_analysis::shard::class_interface_hash`] summaries —
/// the same content addresses shard workers publish, so "the interface
/// summaries agree" and "the cache key matches" are one judgment. Keys
/// the cached lattice model, and seeds every per-method fingerprint so
/// interface changes invalidate all method entries.
pub fn iface_hash(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(program.classes.len());
    for class in &program.classes {
        h.write_u64(sjava_analysis::shard::class_interface_hash(class));
    }
    h.finish()
}

/// Position-independent digest of a method's *name*: the key for
/// persisted per-method check-time measurements, which must survive body
/// and interface edits (a renamed method simply starts a fresh series).
pub fn name_hash(mref: &MethodRef) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&mref.0);
    h.write_str(&mref.1);
    h.finish()
}

/// Digest of one method reference's resolved declaration: the reference
/// itself, the declaring class it resolves to, and the full `MethodDecl`
/// (annotations, body, spans). Unresolvable references hash the
/// reference alone.
pub fn local_fp(program: &Program, mref: &MethodRef) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&mref.0);
    h.write_str(&mref.1);
    if let Some((decl_class, method)) = program.resolve_method(&mref.0, &mref.1) {
        h.write_str(&decl_class.name);
        h.write_u64(decl_class.annots.trusted as u64);
        hash_method(&mut h, method);
    }
    h.finish()
}

/// Computes the content fingerprint of every reachable method, bottom-up
/// over `cg.topo` (callees first): `fp(m)` mixes `iface`, `local_fp(m)`,
/// and the fingerprints of `m`'s direct callees in sorted order. Because
/// callee fingerprints fold in transitively, "fingerprint has no cache
/// entry" is exactly the dirty-cone test — no separate propagation pass
/// is needed. `local` memoizes per-method local fingerprints so a caller
/// that already computed some (e.g. for callee-cache keys) never hashes
/// a method body twice in one check.
pub fn method_fps(
    program: &Program,
    cg: &CallGraph,
    iface: u64,
    local: &mut HashMap<MethodRef, u64>,
) -> BTreeMap<MethodRef, u64> {
    let mut fps: BTreeMap<MethodRef, u64> = BTreeMap::new();
    for mref in &cg.topo {
        let mut h = Fnv64::new();
        h.write_u64(iface);
        let lfp = *local
            .entry(mref.clone())
            .or_insert_with(|| local_fp(program, mref));
        h.write_u64(lfp);
        if let Some(cs) = cg.calls.get(mref) {
            h.write_usize(cs.len());
            for c in cs {
                // Topological order guarantees every callee is present.
                h.write_u64(*fps.get(c).unwrap_or(&0));
            }
        }
        fps.insert(mref.clone(), h.finish());
    }
    fps
}

pub(crate) fn span_bits(s: Span) -> u64 {
    ((s.start as u64) << 32) | s.end as u64
}

/// Structural hash of a full method declaration, body included.
fn hash_method(h: &mut Fnv64, m: &MethodDecl) {
    h.write_str(&m.name);
    h.write_u64(m.is_static as u64);
    h.write_u64(hash_debug(&m.annots));
    h.write_u64(hash_debug(&m.ret));
    h.write_u64(hash_debug(&m.params));
    h.write_u64(span_bits(m.span));
    hash_block(h, &m.body);
}

fn hash_block(h: &mut Fnv64, b: &Block) {
    h.write_u64(span_bits(b.span));
    h.write_usize(b.stmts.len());
    for s in &b.stmts {
        hash_stmt(h, s);
    }
}

fn hash_opt_expr(h: &mut Fnv64, e: &Option<Expr>) {
    match e {
        Some(e) => {
            h.write_u64(1);
            hash_expr(h, e);
        }
        None => h.write_u64(0),
    }
}

fn hash_stmt(h: &mut Fnv64, s: &Stmt) {
    match s {
        Stmt::VarDecl {
            annots,
            ty,
            name,
            init,
            span,
        } => {
            h.write_u64(1);
            h.write_u64(hash_debug(annots));
            h.write_u64(hash_debug(ty));
            h.write_str(name);
            hash_opt_expr(h, init);
            h.write_u64(span_bits(*span));
        }
        Stmt::Assign { lhs, rhs, span } => {
            h.write_u64(2);
            hash_lvalue(h, lhs);
            hash_expr(h, rhs);
            h.write_u64(span_bits(*span));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        } => {
            h.write_u64(3);
            hash_expr(h, cond);
            hash_block(h, then_blk);
            match else_blk {
                Some(b) => {
                    h.write_u64(1);
                    hash_block(h, b);
                }
                None => h.write_u64(0),
            }
            h.write_u64(span_bits(*span));
        }
        Stmt::While {
            kind,
            cond,
            body,
            span,
        } => {
            h.write_u64(4);
            h.write_u64(hash_debug(kind));
            hash_expr(h, cond);
            hash_block(h, body);
            h.write_u64(span_bits(*span));
        }
        Stmt::For {
            kind,
            init,
            cond,
            update,
            body,
            span,
        } => {
            h.write_u64(5);
            h.write_u64(hash_debug(kind));
            match init {
                Some(s) => {
                    h.write_u64(1);
                    hash_stmt(h, s);
                }
                None => h.write_u64(0),
            }
            hash_opt_expr(h, cond);
            match update {
                Some(s) => {
                    h.write_u64(1);
                    hash_stmt(h, s);
                }
                None => h.write_u64(0),
            }
            hash_block(h, body);
            h.write_u64(span_bits(*span));
        }
        Stmt::Return { value, span } => {
            h.write_u64(6);
            hash_opt_expr(h, value);
            h.write_u64(span_bits(*span));
        }
        Stmt::Break { span } => {
            h.write_u64(7);
            h.write_u64(span_bits(*span));
        }
        Stmt::Continue { span } => {
            h.write_u64(8);
            h.write_u64(span_bits(*span));
        }
        Stmt::ExprStmt { expr, span } => {
            h.write_u64(9);
            hash_expr(h, expr);
            h.write_u64(span_bits(*span));
        }
        Stmt::Block(b) => {
            h.write_u64(10);
            hash_block(h, b);
        }
    }
}

fn hash_lvalue(h: &mut Fnv64, l: &LValue) {
    match l {
        LValue::Var { name, span } => {
            h.write_u64(1);
            h.write_str(name);
            h.write_u64(span_bits(*span));
        }
        LValue::Field { base, field, span } => {
            h.write_u64(2);
            hash_expr(h, base);
            h.write_str(field);
            h.write_u64(span_bits(*span));
        }
        LValue::Index { base, index, span } => {
            h.write_u64(3);
            hash_expr(h, base);
            hash_expr(h, index);
            h.write_u64(span_bits(*span));
        }
        LValue::StaticField { class, field, span } => {
            h.write_u64(4);
            h.write_str(class);
            h.write_str(field);
            h.write_u64(span_bits(*span));
        }
    }
}

fn hash_expr(h: &mut Fnv64, e: &Expr) {
    match e {
        Expr::IntLit { value, span } => {
            h.write_u64(1);
            h.write_u64(*value as u64);
            h.write_u64(span_bits(*span));
        }
        Expr::FloatLit { value, span } => {
            h.write_u64(2);
            h.write_u64(value.to_bits());
            h.write_u64(span_bits(*span));
        }
        Expr::BoolLit { value, span } => {
            h.write_u64(3);
            h.write_u64(*value as u64);
            h.write_u64(span_bits(*span));
        }
        Expr::StrLit { value, span } => {
            h.write_u64(4);
            h.write_str(value);
            h.write_u64(span_bits(*span));
        }
        Expr::Null { span } => {
            h.write_u64(5);
            h.write_u64(span_bits(*span));
        }
        Expr::This { span } => {
            h.write_u64(6);
            h.write_u64(span_bits(*span));
        }
        Expr::Var { name, span } => {
            h.write_u64(7);
            h.write_str(name);
            h.write_u64(span_bits(*span));
        }
        Expr::Field { base, field, span } => {
            h.write_u64(8);
            hash_expr(h, base);
            h.write_str(field);
            h.write_u64(span_bits(*span));
        }
        Expr::StaticField { class, field, span } => {
            h.write_u64(9);
            h.write_str(class);
            h.write_str(field);
            h.write_u64(span_bits(*span));
        }
        Expr::Index { base, index, span } => {
            h.write_u64(10);
            hash_expr(h, base);
            hash_expr(h, index);
            h.write_u64(span_bits(*span));
        }
        Expr::Length { base, span } => {
            h.write_u64(11);
            hash_expr(h, base);
            h.write_u64(span_bits(*span));
        }
        Expr::Call {
            recv,
            class_recv,
            name,
            args,
            span,
        } => {
            h.write_u64(12);
            match recv {
                Some(r) => {
                    h.write_u64(1);
                    hash_expr(h, r);
                }
                None => h.write_u64(0),
            }
            match class_recv {
                Some(c) => {
                    h.write_u64(1);
                    h.write_str(c);
                }
                None => h.write_u64(0),
            }
            h.write_str(name);
            h.write_usize(args.len());
            for a in args {
                hash_expr(h, a);
            }
            h.write_u64(span_bits(*span));
        }
        Expr::New { class, span } => {
            h.write_u64(13);
            h.write_str(class);
            h.write_u64(span_bits(*span));
        }
        Expr::NewArray { elem, len, span } => {
            h.write_u64(14);
            h.write_u64(hash_debug(elem));
            hash_expr(h, len);
            h.write_u64(span_bits(*span));
        }
        Expr::Unary { op, operand, span } => {
            h.write_u64(15);
            h.write_u64(hash_debug(op));
            hash_expr(h, operand);
            h.write_u64(span_bits(*span));
        }
        Expr::Binary { op, lhs, rhs, span } => {
            h.write_u64(16);
            h.write_u64(hash_debug(op));
            hash_expr(h, lhs);
            hash_expr(h, rhs);
            h.write_u64(span_bits(*span));
        }
        Expr::Cast { ty, operand, span } => {
            h.write_u64(17);
            h.write_u64(hash_debug(ty));
            hash_expr(h, operand);
            h.write_u64(span_bits(*span));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    const SRC: &str = "class A {
        void main() { SSJAVA: while (true) { step(); other(); } }
        void step() { helper(); }
        void other() { int x = 1; }
        void helper() { int y = 2; }
     }";

    fn graph(p: &Program) -> CallGraph {
        let mut d = sjava_syntax::diag::Diagnostics::new();
        sjava_analysis::callgraph::build(p, &mut d).expect("cg")
    }

    fn fps(p: &Program) -> BTreeMap<MethodRef, u64> {
        method_fps(p, &graph(p), iface_hash(p), &mut HashMap::new())
    }

    #[test]
    fn fingerprints_are_reproducible() {
        let p1 = parse(SRC).expect("parses");
        let p2 = parse(SRC).expect("parses");
        assert_eq!(iface_hash(&p1), iface_hash(&p2));
        assert_eq!(fps(&p1), fps(&p2));
    }

    #[test]
    fn body_edit_dirties_exactly_the_caller_cone() {
        let p1 = parse(SRC).expect("parses");
        // Same shape, helper's body differs (same byte length keeps all
        // spans identical, so only the call cone of helper may change).
        let p2 = parse(&SRC.replace("int y = 2;", "int y = 3;")).expect("parses");
        assert_eq!(iface_hash(&p1), iface_hash(&p2));
        let (fps1, fps2) = (fps(&p1), fps(&p2));
        let m = |n: &str| ("A".to_string(), n.to_string());
        // helper, step (its caller), and main (transitive) are dirty...
        for n in ["helper", "step", "main"] {
            assert_ne!(fps1[&m(n)], fps2[&m(n)], "{n} should be dirty");
        }
        // ...but the unrelated leaf is untouched.
        assert_eq!(fps1[&m("other")], fps2[&m("other")]);
    }

    #[test]
    fn lattice_annotation_edit_invalidates_everything() {
        let base = "@LATTICE(\"LO<HI\") class A { void main() { SSJAVA: while (true) { f(); } } void f() { } }";
        let edited = base.replace("LO<HI", "HI<LO");
        let p1 = parse(base).expect("parses");
        let p2 = parse(&edited).expect("parses");
        assert_ne!(iface_hash(&p1), iface_hash(&p2));
        let (fps1, fps2) = (fps(&p1), fps(&p2));
        for (m, fp) in &fps1 {
            assert_ne!(fp, &fps2[m], "{m:?} should be dirty after a lattice edit");
        }
    }

    #[test]
    fn structural_body_hash_sees_every_token() {
        // Pairs of programs differing in exactly one body token must get
        // different local fingerprints (guards against a walker that
        // forgets a field).
        let variants = [
            "class A { void f() { int x = 1; } }",
            "class A { void f() { int x = 2; } }",
            "class A { void f() { int y = 1; } }",
            "class A { void f() { if (true) { } } }",
            "class A { void f() { if (false) { } } }",
            "class A { void f() { return; } }",
        ];
        let mut seen = std::collections::BTreeSet::new();
        for v in variants {
            let p = parse(v).expect("parses");
            let fp = local_fp(&p, &("A".to_string(), "f".to_string()));
            assert!(seen.insert(fp), "collision for {v}");
        }
    }
}
