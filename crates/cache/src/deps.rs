//! Fact fingerprints and the `.deps` wire codec behind red-green
//! revalidation.
//!
//! The recording layer (`sjava_syntax::track`) captures *which* facts a
//! per-method check read as a list of [`DepKey`]s; this module answers
//! *what those facts were worth* on a concrete program. [`FactDb`]
//! evaluates one fingerprint per key — once at admission time against
//! the program the check actually ran on, and again at revalidation time
//! against the edited program. An entry is **green** (replayable without
//! rechecking) iff every recorded `(key, fingerprint)` pair re-evaluates
//! to the same fingerprint; any mismatch makes it **red**.
//!
//! Both sides use the same evaluation function, so the two can never
//! disagree about what a fact's fingerprint covers. The invariant each
//! per-key fingerprint must uphold mirrors the cache-key invariant:
//! *equal fingerprint ⇒ the fact reads back byte-identically*. Every
//! fingerprint is tagged (present/miss) so "the class disappeared" and
//! "the class is empty" never collide.
//!
//! The wire form (`.deps` objects in the artifact store) pairs the dep
//! list with the FNV-64 checksum of the entry payload it was recorded
//! for. A reader adopts a persisted entry only when that pairing matches
//! the entry object it actually read — two independently-published
//! objects cannot be combined across a torn update.

use crate::fingerprints::span_bits;
use sjava_core::model::{effective_method_annots, Lattices};
use sjava_core::shared::SharedMember;
use sjava_lattice::{hash_debug, Fnv64};
use sjava_syntax::ast::Program;
use sjava_syntax::track::DepKey;
use sjava_syntax::wire::{self, Reader};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

/// Evaluates fact fingerprints against one program snapshot, memoizing
/// per key — a wave of revalidations touching the same interface facts
/// hashes each fact once.
pub(crate) struct FactDb<'a> {
    program: &'a Program,
    lattices: &'a Lattices,
    members: &'a BTreeSet<SharedMember>,
    memo: Mutex<HashMap<DepKey, u64>>,
}

impl<'a> FactDb<'a> {
    /// A fact database over one `(program, lattice model, shared
    /// members)` snapshot.
    pub(crate) fn new(
        program: &'a Program,
        lattices: &'a Lattices,
        members: &'a BTreeSet<SharedMember>,
    ) -> Self {
        FactDb {
            program,
            lattices,
            members,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The fingerprint of one fact on this snapshot.
    pub(crate) fn fact_fp(&self, key: &DepKey) -> u64 {
        if let Some(&fp) = self.memo.lock().unwrap().get(key) {
            return fp;
        }
        let fp = self.compute(key);
        self.memo.lock().unwrap().insert(key.clone(), fp);
        fp
    }

    /// Whether every recorded `(key, fingerprint)` still evaluates to
    /// the same fingerprint on this snapshot.
    pub(crate) fn deps_green(&self, deps: &[(DepKey, u64)]) -> bool {
        deps.iter().all(|(k, fp)| self.fact_fp(k) == *fp)
    }

    /// Evaluates a read-set into `(key, fingerprint)` pairs for
    /// admission alongside a fresh entry.
    pub(crate) fn fingerprint(&self, keys: impl IntoIterator<Item = DepKey>) -> Vec<(DepKey, u64)> {
        keys.into_iter()
            .map(|k| {
                let fp = self.fact_fp(&k);
                (k, fp)
            })
            .collect()
    }

    fn compute(&self, key: &DepKey) -> u64 {
        let mut h = Fnv64::new();
        match key {
            DepKey::Iface(class) => match self.program.class_untracked(class) {
                Some(c) => {
                    h.write_u64(1);
                    h.write_u64(sjava_analysis::shard::class_interface_hash(c));
                }
                None => h.write_u64(0),
            },
            DepKey::Resolve(class, method) => {
                // The walk itself is part of the fact: every visited class
                // name is hashed, so re-routing the chain (a superclass
                // edit) perturbs the fingerprint even when the eventual
                // declaration is unchanged.
                let mut cur = self.program.class_untracked(class);
                loop {
                    let Some(c) = cur else {
                        h.write_u64(0);
                        break;
                    };
                    h.write_str(&c.name);
                    if let Some(m) = c.methods.iter().find(|m| m.name == *method) {
                        h.write_u64(1);
                        h.write_u64(hash_debug(&c.annots));
                        h.write_str(&m.name);
                        h.write_u64(m.is_static as u64);
                        h.write_u64(hash_debug(&m.annots));
                        h.write_u64(hash_debug(&m.ret));
                        h.write_u64(hash_debug(&m.params));
                        h.write_u64(span_bits(m.span));
                        break;
                    }
                    cur = c
                        .superclass
                        .as_deref()
                        .and_then(|s| self.program.class_untracked(s));
                }
            }
            DepKey::Field(class, field) => {
                let mut cur = self.program.class_untracked(class);
                loop {
                    let Some(c) = cur else {
                        h.write_u64(0);
                        break;
                    };
                    h.write_str(&c.name);
                    if let Some(f) = c.fields.iter().find(|f| f.name == *field) {
                        h.write_u64(1);
                        h.write_u64(hash_debug(f));
                        break;
                    }
                    cur = c
                        .superclass
                        .as_deref()
                        .and_then(|s| self.program.class_untracked(s));
                }
            }
            DepKey::MethodFacts(class, method) => {
                match self
                    .program
                    .class_untracked(class)
                    .and_then(|c| c.methods.iter().find(|m| m.name == *method).map(|m| (c, m)))
                {
                    Some((c, m)) => {
                        h.write_u64(1);
                        // The effective annotations cover the method's own
                        // lattice/locations and the class @METHODDEFAULT;
                        // the resolved return/pc locations additionally
                        // cover cross-class unqualified-element resolution.
                        h.write_u64(hash_debug(&effective_method_annots(c, m)));
                        h.write_u64(c.annots.trusted as u64);
                        match self.lattices.methods.get(&(class.clone(), method.clone())) {
                            Some(info) => {
                                h.write_u64(1);
                                h.write_u64(hash_debug(&info.return_loc));
                                h.write_u64(hash_debug(&info.pc_loc));
                                h.write_u64(info.trusted as u64);
                            }
                            None => h.write_u64(0),
                        }
                    }
                    None => h.write_u64(0),
                }
            }
            DepKey::ClassLattice(class) => {
                h.write_u64(hash_debug(
                    &self
                        .program
                        .class_untracked(class)
                        .map(|c| &c.annots.lattice),
                ));
            }
            DepKey::LocOwner(name) => {
                // Declaration order matters to the uniqueness rule, so the
                // fold is over class names in source order.
                for c in &self.program.classes {
                    let declares = c
                        .annots
                        .lattice
                        .as_ref()
                        .map(|l| l.names().iter().any(|n| n == name))
                        .unwrap_or(false);
                    if declares {
                        h.write_str(&c.name);
                    }
                }
            }
            DepKey::SharedMember(class, field) => {
                h.write_u64(self.members.contains(&(class.clone(), field.clone())) as u64);
            }
            DepKey::SharedGate => h.write_u64(self.members.is_empty() as u64),
            // Completion is a pure function of its canonical graph key:
            // the fact can never go stale, so its fingerprint is constant.
            DepKey::Completion(_) => h.write_u64(0),
        }
        h.finish()
    }
}

// ---- .deps wire codec --------------------------------------------------

fn tag_of(key: &DepKey) -> u8 {
    match key {
        DepKey::Iface(_) => 1,
        DepKey::Resolve(..) => 2,
        DepKey::Field(..) => 3,
        DepKey::MethodFacts(..) => 4,
        DepKey::ClassLattice(_) => 5,
        DepKey::LocOwner(_) => 6,
        DepKey::SharedMember(..) => 7,
        DepKey::SharedGate => 8,
        DepKey::Completion(_) => 9,
    }
}

/// Deterministic encoding of a recorded read-set: the checksum of the
/// entry payload it pairs with, then each `(key, fingerprint)`.
pub(crate) fn encode_deps(deps: &[(DepKey, u64)], entry_fp: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, entry_fp);
    wire::put_u64(&mut buf, deps.len() as u64);
    for (key, fp) in deps {
        buf.push(tag_of(key));
        match key {
            DepKey::Iface(a) | DepKey::ClassLattice(a) | DepKey::LocOwner(a) => {
                wire::put_str(&mut buf, a);
            }
            DepKey::Resolve(a, b)
            | DepKey::Field(a, b)
            | DepKey::MethodFacts(a, b)
            | DepKey::SharedMember(a, b) => {
                wire::put_str(&mut buf, a);
                wire::put_str(&mut buf, b);
            }
            DepKey::SharedGate => {}
            DepKey::Completion(k) => wire::put_u64(&mut buf, *k),
        }
        wire::put_u64(&mut buf, *fp);
    }
    buf
}

/// Decodes a read-set payload into the dep list and the paired entry
/// checksum; `None` on any truncation, bad tag, or trailing garbage.
pub(crate) fn decode_deps(payload: &[u8]) -> Option<(Vec<(DepKey, u64)>, u64)> {
    let mut r = Reader::new(payload);
    let entry_fp = r.u64()?;
    let n = r.count()?;
    let mut deps = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let key = match r.u8()? {
            1 => DepKey::Iface(r.string()?),
            2 => DepKey::Resolve(r.string()?, r.string()?),
            3 => DepKey::Field(r.string()?, r.string()?),
            4 => DepKey::MethodFacts(r.string()?, r.string()?),
            5 => DepKey::ClassLattice(r.string()?),
            6 => DepKey::LocOwner(r.string()?),
            7 => DepKey::SharedMember(r.string()?, r.string()?),
            8 => DepKey::SharedGate,
            9 => DepKey::Completion(r.u64()?),
            _ => return None,
        };
        deps.push((key, r.u64()?));
    }
    r.is_exhausted().then_some((deps, entry_fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::diag::Diagnostics;
    use sjava_syntax::parse;

    fn snapshot(src: &str) -> (Program, Lattices, BTreeSet<SharedMember>) {
        let p = parse(src).expect("parses");
        let mut d = Diagnostics::new();
        let l = Lattices::build(&p, &mut d);
        let m = sjava_core::shared::shared_members(&p, &l);
        (p, l, m)
    }

    #[test]
    fn deps_round_trip_through_the_codec() {
        let deps = vec![
            (DepKey::Iface("A".into()), 1),
            (DepKey::Resolve("A".into(), "m".into()), 2),
            (DepKey::Field("A".into(), "x".into()), 3),
            (DepKey::MethodFacts("A".into(), "m".into()), 4),
            (DepKey::ClassLattice("A".into()), 5),
            (DepKey::LocOwner("HI".into()), 6),
            (DepKey::SharedMember("A".into(), "x".into()), 7),
            (DepKey::SharedGate, 8),
            (DepKey::Completion(99), 9),
        ];
        let buf = encode_deps(&deps, 0xFEED);
        assert_eq!(decode_deps(&buf), Some((deps, 0xFEED)));
        // Any truncation reads as None.
        for cut in 0..buf.len() {
            assert_eq!(decode_deps(&buf[..cut]), None, "truncation at {cut}");
        }
        // Trailing garbage reads as None.
        let mut long = buf.clone();
        long.push(0);
        assert_eq!(decode_deps(&long), None);
    }

    #[test]
    fn unrelated_edit_keeps_facts_green() {
        let (p1, l1, m1) =
            snapshot(r#"@LATTICE("A<B") class W { @LOC("A") int x; void f() { } void g() { } }"#);
        let (p2, l2, m2) = snapshot(
            r#"@LATTICE("A<B") class W { @LOC("A") int x; void f() { int z = 1; } void g() { } }"#,
        );
        let db1 = FactDb::new(&p1, &l1, &m1);
        let db2 = FactDb::new(&p2, &l2, &m2);
        // Growing `f`'s body never perturbs facts about the declarations
        // at or before `f` — header spans upstream of the edit are fixed.
        for key in [
            DepKey::Field("W".into(), "x".into()),
            DepKey::ClassLattice("W".into()),
            DepKey::Resolve("W".into(), "f".into()),
            DepKey::MethodFacts("W".into(), "f".into()),
            DepKey::SharedGate,
        ] {
            assert_eq!(db1.fact_fp(&key), db2.fact_fp(&key), "{key:?} went red");
        }
        // But the whole-interface fact of the edited class does move
        // (`g`'s header span shifted), which is exactly why per-method
        // checks record the finer keys instead of `Iface`: under the old
        // coarse cutoff this one body edit invalidated every method of
        // every client of `W`.
        assert_ne!(
            db1.fact_fp(&DepKey::Iface("W".into())),
            db2.fact_fp(&DepKey::Iface("W".into()))
        );
    }

    #[test]
    fn loc_edit_reds_exactly_the_touched_field_fact() {
        let (p1, l1, m1) = snapshot(
            r#"@LATTICE("A<B") class W { @LOC("A") int x; @LOC("B") int y; void f() { } }"#,
        );
        let (p2, l2, m2) = snapshot(
            r#"@LATTICE("A<B") class W { @LOC("B") int x; @LOC("B") int y; void f() { } }"#,
        );
        let db1 = FactDb::new(&p1, &l1, &m1);
        let db2 = FactDb::new(&p2, &l2, &m2);
        assert_ne!(
            db1.fact_fp(&DepKey::Field("W".into(), "x".into())),
            db2.fact_fp(&DepKey::Field("W".into(), "x".into())),
            "the edited field's fact must go red"
        );
        assert_eq!(
            db1.fact_fp(&DepKey::Field("W".into(), "y".into())),
            db2.fact_fp(&DepKey::Field("W".into(), "y".into())),
            "the untouched field's fact stays green"
        );
        assert_eq!(
            db1.fact_fp(&DepKey::ClassLattice("W".into())),
            db2.fact_fp(&DepKey::ClassLattice("W".into()))
        );
    }

    #[test]
    fn missing_and_empty_never_collide() {
        let (p, l, m) = snapshot("class A { void f() { } }");
        let db = FactDb::new(&p, &l, &m);
        assert_ne!(
            db.fact_fp(&DepKey::Iface("A".into())),
            db.fact_fp(&DepKey::Iface("Ghost".into())),
        );
        assert_ne!(
            db.fact_fp(&DepKey::Resolve("A".into(), "f".into())),
            db.fact_fp(&DepKey::Resolve("A".into(), "ghost".into())),
        );
    }

    #[test]
    fn superclass_rerouting_perturbs_resolution_facts() {
        let (p1, l1, m1) = snapshot(
            "class P { void f() { } } class Q extends P { } class S extends Q { void g() { } }",
        );
        // Same declaration of f, but S now skips Q.
        let (p2, l2, m2) = snapshot(
            "class P { void f() { } } class Q extends P { } class S extends P { void g() { } }",
        );
        let db1 = FactDb::new(&p1, &l1, &m1);
        let db2 = FactDb::new(&p2, &l2, &m2);
        assert_ne!(
            db1.fact_fp(&DepKey::Resolve("S".into(), "f".into())),
            db2.fact_fp(&DepKey::Resolve("S".into(), "f".into())),
            "a re-routed inheritance chain is a different resolution fact"
        );
    }
}
