//! # sjava-cache
//!
//! Content-addressed incremental layer over the SJava whole-program
//! checker. An [`IncrementalChecker`] session memoizes every per-method
//! analysis result — flow diagnostics, eviction summaries, aliasing
//! diagnostics, shared-location summaries, and termination verdicts —
//! keyed on a stable 64-bit fingerprint of the method's body and its
//! callees' summary hashes (see [`fingerprints`]). A re-check after an
//! edit re-analyzes only the dirtied call-graph cone and replays cached
//! results for everything else, merged in the same topological order as
//! the full pipeline, so the diagnostics are **byte-identical** to a
//! cold [`sjava_core::check_program`] run at any thread count.
//!
//! ## Dependency-tracked invalidation (red-green revalidation)
//!
//! Interface facts — class interface summaries, field `@LOC`
//! declarations, lattice/completion facts, shared-membership probes —
//! are deliberately **not** folded into the entry key. Instead, every
//! fresh per-method computation runs inside a
//! [`sjava_syntax::track::ReadScope`], which records the exact set of
//! interface facts the analyses consulted (as
//! [`sjava_syntax::track::DepKey`]s). The read-set is fingerprinted
//! (`deps` module) and stored alongside the entry — in memory and, for
//! store-backed sessions, as a checksummed `.deps` object published with
//! the same atomic-rename discipline as entries. On the next check, an
//! entry whose key matches is **green** (replayed) iff every recorded
//! fact re-fingerprints byte-identically on the new program, and **red**
//! (rechecked) otherwise. An interface edit therefore re-analyzes only
//! the methods that truly read the changed fact — O(true dependents)
//! instead of the previous whole-program `iface_hash` cutoff's
//! O(program).
//!
//! What is never cached: lattice construction is keyed separately on the
//! interface hash; call-graph assembly, the eviction event-loop check,
//! and the shared-location event-loop check are always recomputed (they
//! read global state and are cheap relative to per-method analysis).
//!
//! Setting `SJAVA_CACHE_DIR` (see [`CACHE_DIR_ENV`]) backs the session
//! with the concurrent content-addressed [`store::ArtifactStore`]:
//! per-method results publish as individual objects with atomic renames,
//! so any number of processes — shard workers, parallel CI jobs — can
//! share one store directory. Corrupt or foreign-format objects (and
//! old monolithic `cache.bin` files from format v3 and earlier) degrade
//! to cache misses, never to an error or a stale result. An unwritable
//! cache directory or a malformed environment value warns once on stderr
//! and degrades to an uncached session.
//!
//! ```
//! let program = sjava_syntax::parse(
//!     "class A { void main() { SSJAVA: while (true) { Out.emit(1); } } }",
//! ).expect("parses");
//! let mut session = sjava_cache::IncrementalChecker::new();
//! let cold = session.check(&program);
//! let warm = session.check(&program);
//! assert_eq!(format!("{}", cold.diagnostics), format!("{}", warm.diagnostics));
//! assert_eq!(warm.cache.expect("incremental").misses, 0);
//! ```

#![warn(missing_docs)]

mod deps;
pub mod edit;
pub mod fingerprints;
pub mod shard;
pub mod store;

use sjava_analysis::callgraph::{self, MethodRef};
use sjava_analysis::shard::ShardInput;
use sjava_analysis::termination;
use sjava_analysis::written::{self, EvictionResult, MethodSummary};
use sjava_core::shared::SharedMember;
use sjava_core::{
    checker, linear, shared, CacheStats, CheckReport, Lattices, ParseFailure, PhaseTimings,
};
use sjava_lattice::{hash_debug, mix, Fnv64};
use sjava_syntax::ast::Program;
use sjava_syntax::diag::{Diagnostic, Diagnostics};
use sjava_syntax::track::{DepKey, ReadScope};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use fingerprints::{iface_hash, local_fp, name_hash};
pub use store::ArtifactStore;

/// Environment variable naming the on-disk cache directory. When set,
/// [`IncrementalChecker::from_env`] opens the content-addressed artifact
/// store under it and serves cross-process warm hits from it. An
/// unwritable directory warns once on stderr and degrades to an uncached
/// session.
pub const CACHE_DIR_ENV: &str = "SJAVA_CACHE_DIR";

/// Environment variable overriding [`PERSIST_MIN_WEIGHT`]. A malformed
/// value warns once on stderr and falls back to the default rather than
/// being silently swallowed.
pub const PERSIST_MIN_ENV: &str = "SJAVA_CACHE_PERSIST_MIN";

/// Minimum total statement weight of the fingerprinted method set before
/// a store-backed session publishes artifacts after a check.
/// Persisting costs a fixed encode + write per fresh entry; a paper-sized
/// app re-checks from scratch faster than that, so persisting it makes
/// every *warm* check slower than a cold one (the `windsensor`
/// warm_speedup-0.72 regression). Below this weight the publish is
/// skipped — the in-memory session still replays hits, and a future
/// process can re-check the tiny program cheaply anyway.
pub const PERSIST_MIN_WEIGHT: u64 = 256;

/// One-time warning latches for environment misconfiguration (one per
/// concern, so a bad cache dir does not mask a bad threshold).
static WARNED_PERSIST_MIN: AtomicBool = AtomicBool::new(false);
static WARNED_CACHE_DIR: AtomicBool = AtomicBool::new(false);
static WARNED_MAX_BYTES: AtomicBool = AtomicBool::new(false);

/// Parses an environment override as a non-negative decimal integer;
/// `None` means "malformed" (empty is malformed, padding is trimmed).
fn parse_env_u64(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

/// The effective persistence threshold: [`PERSIST_MIN_WEIGHT`] unless
/// overridden via [`PERSIST_MIN_ENV`]. `0` persists everything; a
/// malformed value warns once and keeps the default.
fn persist_min_weight() -> u64 {
    match std::env::var(PERSIST_MIN_ENV) {
        Ok(raw) => match parse_env_u64(&raw) {
            Some(v) => v,
            None => {
                if !WARNED_PERSIST_MIN.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sjava-cache: warning: ignoring malformed {PERSIST_MIN_ENV}={raw:?} \
                         (expected a non-negative integer); using the default \
                         ({PERSIST_MIN_WEIGHT})"
                    );
                }
                PERSIST_MIN_WEIGHT
            }
        },
        Err(_) => PERSIST_MIN_WEIGHT,
    }
}

/// The store byte budget from `SJAVA_CACHE_MAX_BYTES`: `None` when unset
/// (unbounded); a malformed value warns once and leaves the store
/// unbounded.
fn max_bytes_budget() -> Option<u64> {
    match std::env::var(store::MAX_BYTES_ENV) {
        Ok(raw) => match parse_env_u64(&raw) {
            Some(v) => Some(v),
            None => {
                if !WARNED_MAX_BYTES.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sjava-cache: warning: ignoring malformed {}={raw:?} \
                         (expected a non-negative integer); store stays unbounded",
                        store::MAX_BYTES_ENV
                    );
                }
                None
            }
        },
        Err(_) => None,
    }
}

/// Every cached per-method result, keyed (in the session maps and the
/// artifact store) by the method's content fingerprint.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MethodEntry {
    /// Eviction read/write summary (`written::summarize`).
    pub summary: MethodSummary,
    /// Flow-down checker diagnostics (`checker::check_method_flows`).
    pub flow: Vec<Diagnostic>,
    /// Aliasing diagnostics (`linear::check_method_aliasing`).
    pub alias: Vec<Diagnostic>,
    /// Whether a shared-location summary was computed for this method
    /// (false when the program has no shared members or the method has
    /// no lattice info — mirrored so replays rebuild the same maps).
    pub shared_present: bool,
    /// Shared members this method definitely clears.
    pub shared_clears: BTreeSet<SharedMember>,
    /// Shared members this method reads.
    pub shared_reads: BTreeSet<SharedMember>,
    /// Termination failure count (`termination::check_method`).
    pub term_failures: usize,
    /// Termination diagnostics, in source order.
    pub term: Vec<Diagnostic>,
}

/// The cached lattice model, valid while the interface hash matches.
struct LatticeEntry {
    iface: u64,
    lattices: Lattices,
    diags: Vec<Diagnostic>,
}

/// An incremental checking session.
///
/// Feed successive revisions of a program to [`IncrementalChecker::check`];
/// each call returns a [`CheckReport`] whose diagnostics are byte-identical
/// to a fresh [`sjava_core::check_program`] run, with
/// [`CheckReport::cache`] describing how much was replayed. Entries are
/// content-addressed, so a session can serve any number of programs (and
/// survives edits being reverted — the old fingerprints hit again).
///
/// A store-backed session ([`IncrementalChecker::with_dir`] /
/// [`IncrementalChecker::from_env`]) additionally probes the shared
/// artifact store for every fingerprint it has not seen in memory, so
/// warm hits flow across processes — shard workers and CI jobs sharing
/// one `SJAVA_CACHE_DIR` replay each other's results.
pub struct IncrementalChecker {
    entries: HashMap<u64, MethodEntry>,
    /// The recorded read-set of each entry, as `(fact, fingerprint)`
    /// pairs evaluated on the program the entry was computed against.
    /// An entry replays only while every pair re-evaluates identically.
    dep_records: HashMap<u64, Vec<(DepKey, u64)>>,
    callee_cache: HashMap<u64, BTreeSet<MethodRef>>,
    lattice_cache: Option<LatticeEntry>,
    last_keys: BTreeMap<MethodRef, u64>,
    /// The methods the most recent check actually re-analyzed (the miss
    /// set, in topological order). Observability only — results never
    /// depend on it; tests use it to prove the re-check set is a subset
    /// of the coarse fingerprint-dirty cone.
    last_rechecked: Vec<MethodRef>,
    /// Measured flow-check nanoseconds per method-name hash; preferred
    /// over the static statement-weight estimate when scheduling warm
    /// fan-outs (scheduling only — results never depend on timings).
    times: HashMap<u64, u64>,
    store: Option<ArtifactStore>,
    persist_min: u64,
}

impl Default for IncrementalChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalChecker {
    /// An empty in-memory session (no disk persistence).
    pub fn new() -> Self {
        IncrementalChecker {
            entries: HashMap::new(),
            dep_records: HashMap::new(),
            callee_cache: HashMap::new(),
            lattice_cache: None,
            last_keys: BTreeMap::new(),
            last_rechecked: Vec::new(),
            times: HashMap::new(),
            store: None,
            persist_min: persist_min_weight(),
        }
    }

    /// A session backed by the content-addressed artifact store under
    /// `dir`: fingerprints missing from memory are probed in the store
    /// during each check (lazily, per key — no up-front bulk load), and
    /// fresh results publish back after the check. An unwritable
    /// directory warns once on stderr and degrades to an uncached
    /// session; corrupt or old-format store contents degrade to misses.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let store = match ArtifactStore::open(&dir) {
            Ok(s) => Some(s),
            Err(e) => {
                if !WARNED_CACHE_DIR.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sjava-cache: warning: cache directory {} is unusable ({e}); \
                         running without a cache",
                        dir.display()
                    );
                }
                None
            }
        };
        IncrementalChecker {
            entries: HashMap::new(),
            dep_records: HashMap::new(),
            callee_cache: HashMap::new(),
            lattice_cache: None,
            last_keys: BTreeMap::new(),
            last_rechecked: Vec::new(),
            times: HashMap::new(),
            store,
            persist_min: persist_min_weight(),
        }
    }

    /// Overrides the persistence weight threshold for this session (`0`
    /// persists every program). Tests use this instead of mutating
    /// [`PERSIST_MIN_ENV`], which would race across test threads.
    pub fn set_persist_min(&mut self, weight: u64) {
        self.persist_min = weight;
    }

    /// [`IncrementalChecker::with_dir`] when [`CACHE_DIR_ENV`] is set,
    /// otherwise [`IncrementalChecker::new`].
    pub fn from_env() -> Self {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => Self::with_dir(dir.trim()),
            _ => Self::new(),
        }
    }

    /// The artifact store backing this session, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The methods the most recent check re-analyzed (its miss set, in
    /// topological order): the red entries plus the plain misses, i.e.
    /// everything that was *not* replayed. Observability for tests and
    /// tooling — results never depend on it.
    pub fn last_rechecked(&self) -> &[MethodRef] {
        &self.last_rechecked
    }

    /// Number of per-method entries held **in memory** (store objects are
    /// probed lazily and are not counted until replayed or computed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the session holds no in-memory entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every in-memory entry. Store objects are untouched — they
    /// are content-addressed and remain valid for any future session.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dep_records.clear();
        self.callee_cache.clear();
        self.lattice_cache = None;
        self.last_keys.clear();
        self.last_rechecked.clear();
        self.times.clear();
    }

    /// Parses and checks source text incrementally, charging parse time
    /// to [`PhaseTimings::parse`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseFailure`] when the source does not parse.
    // The Ok variant (`CheckReport`) is no smaller than the Err variant,
    // so boxing `ParseFailure` would not shrink the `Result`.
    #[allow(clippy::result_large_err)]
    pub fn check_source(&mut self, source: &str) -> Result<CheckReport, ParseFailure> {
        let t = Instant::now();
        let parsed = sjava_syntax::parse(source);
        let parse = t.elapsed();
        match parsed {
            Ok(program) => {
                let mut report = self.check(&program);
                report.timings.parse = parse;
                Ok(report)
            }
            Err(diagnostics) => Err(ParseFailure {
                diagnostics,
                timings: PhaseTimings {
                    parse,
                    threads: sjava_par::num_threads(),
                    ..PhaseTimings::default()
                },
            }),
        }
    }

    /// Checks `program`, replaying cached per-method results wherever the
    /// content fingerprint matches (in memory first, then the artifact
    /// store) and re-analyzing only the dirtied call-graph cone.
    /// Diagnostics are byte-identical to [`sjava_core::check_program`] on
    /// the same program.
    pub fn check(&mut self, program: &Program) -> CheckReport {
        self.check_inner(program, None)
    }

    /// The full incremental pipeline, optionally restricted to a shard.
    ///
    /// With `owned: None` this is [`IncrementalChecker::check`]. With
    /// `owned: Some(set)` the session acts as a **shard worker**: the
    /// global phases (lattice construction, call-graph assembly, eviction
    /// summaries, fingerprint keys) still run whole-program — they are
    /// *inputs* — but their diagnostics are discarded (the merging driver
    /// emits them exactly once), the global event-loop checks are skipped
    /// entirely, and the per-method passes run against a *reduced*
    /// [`ShardInput`] view in which only owned bodies survive. The
    /// returned report carries only the owned methods' flow, aliasing,
    /// and termination diagnostics, and cache stats counted over the
    /// owned set.
    pub(crate) fn check_inner(
        &mut self,
        program: &Program,
        owned: Option<&BTreeSet<MethodRef>>,
    ) -> CheckReport {
        let sharded = owned.is_some();
        let mut diags = Diagnostics::new();
        // Global-phase diagnostics: merged into the report in driver
        // mode, dropped in shard mode (the driver emits them).
        let mut global = Diagnostics::new();
        let mut stats = CacheStats::default();
        let mut timings = PhaseTimings {
            threads: sjava_par::num_threads(),
            ..PhaseTimings::default()
        };
        let iface = iface_hash(program);

        // Lattice model, keyed on the interface hash (replaying its
        // diagnostics in build order).
        let t = Instant::now();
        let lattices = match &self.lattice_cache {
            Some(e) if e.iface == iface => {
                for d in &e.diags {
                    global.push(d.clone());
                }
                e.lattices.clone()
            }
            _ => {
                let mut ld = Diagnostics::new();
                let lattices = Lattices::build(program, &mut ld);
                let cached: Vec<Diagnostic> = ld.iter().cloned().collect();
                for d in &cached {
                    global.push(d.clone());
                }
                self.lattice_cache = Some(LatticeEntry {
                    iface,
                    lattices: lattices.clone(),
                    diags: cached,
                });
                lattices
            }
        };
        timings.lattice_build = t.elapsed();

        // Call graph: assembly is recomputed, per-method callee sets are
        // served from the session (or the store) keyed on (iface, local
        // body) — the set does not depend on callees, so the local
        // fingerprint suffices. Local fingerprints are memoized for the
        // whole check: hashing a method body is the dominant fixed cost
        // of a warm check, so it must happen at most once per method.
        let t = Instant::now();
        let mut local_fps: HashMap<MethodRef, u64> = HashMap::new();
        let callee_cache = &mut self.callee_cache;
        let store = self.store.as_ref();
        let cg = callgraph::build_with(program, &mut global, |mref| {
            let lfp = *local_fps
                .entry(mref.clone())
                .or_insert_with(|| local_fp(program, mref));
            let ckey = mix(iface, lfp);
            callee_cache
                .entry(ckey)
                .or_insert_with(|| {
                    store
                        .and_then(|s| s.get_callees(ckey))
                        .unwrap_or_else(|| callgraph::method_callees(program, mref))
                })
                .clone()
        });
        timings.callgraph = t.elapsed();
        let Some(cg) = cg else {
            if !sharded {
                diags.extend(global);
            }
            diags.sort_stable();
            return CheckReport {
                diagnostics: diags,
                lattices,
                eviction: None,
                termination_failures: 0,
                timings,
                cache: Some(stats),
            };
        };

        // Entry keys and summaries, bottom-up by wave — always
        // whole-program, even in shard mode: summaries are the interface
        // inputs every shard checks against. A method's key folds its own
        // body fingerprint and the *summary hashes* of its direct
        // callees — the eviction and shared-location summary values, NOT
        // the callee bodies. Interface facts are deliberately absent from
        // the key: they live in the entry's recorded read-set, which is
        // revalidated fact-by-fact (red-green) so an interface edit
        // invalidates only the methods that actually read the changed
        // fact. This is the early-cutoff property twice over: flow,
        // aliasing, and termination diagnostics depend only on a method's
        // own body, the interface facts it reads, and its callees'
        // summaries by value.
        let whole = ShardInput::whole(program);
        let t = Instant::now();
        let members = shared::shared_members(program, &lattices);
        // Fact fingerprints are evaluated lazily, memoized across every
        // revalidation in this check.
        let factdb = deps::FactDb::new(program, &lattices, &members);
        let mut keys: BTreeMap<MethodRef, u64> = BTreeMap::new();
        let mut shashes: BTreeMap<MethodRef, u64> = BTreeMap::new();
        let mut summaries: BTreeMap<MethodRef, MethodSummary> = BTreeMap::new();
        let mut shared_clears: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
        let mut shared_reads: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
        // Read-sets of freshly-computed wave results, awaiting the union
        // with the per-method pass read-sets at admission time.
        let mut wave_deps: BTreeMap<MethodRef, Vec<DepKey>> = BTreeMap::new();
        /// How one wave slot resolved against the cache.
        enum Outcome {
            /// In-memory entry, read-set verified green: replay.
            MemGreen,
            /// Store entry + paired read-set verified green: adopt and
            /// replay. Boxed: an entry is ~200 bytes and this variant is
            /// rare relative to the green/fresh ones sized per wave slot.
            StoreGreen(Box<MethodEntry>, Vec<(DepKey, u64)>),
            /// Computed fresh; `red` distinguishes "had an entry whose
            /// read-set went stale" from a plain miss.
            Fresh { red: bool, deps: Vec<DepKey> },
        }
        for wave in cg.levels() {
            // Waves order callees strictly before callers, so every
            // callee's summary hash is final when its callers key.
            type WaveResult = (
                u64,
                Option<MethodSummary>,
                Option<(BTreeSet<SharedMember>, BTreeSet<SharedMember>)>,
                Outcome,
            );
            let results: Vec<WaveResult> = sjava_par::run_indexed(wave.len(), |i| {
                let mref = &wave[i];
                let mut h = Fnv64::new();
                let lfp = local_fps
                    .get(mref)
                    .copied()
                    .unwrap_or_else(|| local_fp(program, mref));
                h.write_u64(lfp);
                if let Some(cs) = cg.calls.get(mref) {
                    h.write_usize(cs.len());
                    for c in cs {
                        h.write_u64(*shashes.get(c).unwrap_or(&0));
                    }
                }
                let key = h.finish();
                // The fresh path, shared by misses and red entries: the
                // whole computation runs inside a recording scope so the
                // exact interface read-set lands in the entry's deps.
                let fresh = || {
                    let scope = ReadScope::begin();
                    // The has-any-shared-members gate is read here, before
                    // the branch it decides — it must be part of every
                    // entry's read-set or a program gaining its first
                    // shared member could replay a gate-skipped result.
                    sjava_syntax::track::record_shared_gate();
                    let summary = written::summarize(&whole, mref, &summaries);
                    let sh = if members.is_empty() {
                        None
                    } else {
                        shared::method_shared_summary(
                            &whole,
                            &lattices,
                            mref,
                            &members,
                            &shared_clears,
                            &shared_reads,
                        )
                    };
                    (summary, sh, scope.finish())
                };
                if let Some(e) = self.entries.get(&key) {
                    // Red-green revalidation: replay only while every
                    // recorded fact fingerprint is byte-unchanged.
                    let green = self
                        .dep_records
                        .get(&key)
                        .is_some_and(|deps| factdb.deps_green(deps));
                    if green {
                        return (
                            key,
                            Some(e.summary.clone()),
                            e.shared_present
                                .then(|| (e.shared_clears.clone(), e.shared_reads.clone())),
                            Outcome::MemGreen,
                        );
                    }
                    let (summary, sh, deps) = fresh();
                    return (key, summary, sh, Outcome::Fresh { red: true, deps });
                }
                // Cross-process warm path: another session (a shard
                // worker, an earlier CI job) may have published this
                // fingerprint; one lock-free store read replays it — but
                // only with its paired read-set (entry checksums must
                // match, so a torn entry/deps update can never combine)
                // and only after that read-set verifies green.
                if let Some((e, efp)) = self.store.as_ref().and_then(|s| s.get_entry_with_fp(key)) {
                    if let Some((deps, rec_efp)) = self.store.as_ref().and_then(|s| s.get_deps(key))
                    {
                        if rec_efp == efp && factdb.deps_green(&deps) {
                            let sh = e
                                .shared_present
                                .then(|| (e.shared_clears.clone(), e.shared_reads.clone()));
                            return (
                                key,
                                Some(e.summary.clone()),
                                sh,
                                Outcome::StoreGreen(Box::new(e), deps),
                            );
                        }
                    }
                    // Unverifiable or stale: fall through to a plain miss —
                    // the store is never trusted without its deps.
                }
                let (summary, sh, deps) = fresh();
                (key, summary, sh, Outcome::Fresh { red: false, deps })
            });
            for (mref, (key, summary, sh, outcome)) in wave.iter().zip(results) {
                let counted = owned.is_none_or(|o| o.contains(mref));
                match outcome {
                    Outcome::MemGreen => {
                        if counted {
                            stats.green += 1;
                        }
                    }
                    Outcome::StoreGreen(e, deps) => {
                        self.entries.insert(key, *e);
                        self.dep_records.insert(key, deps);
                        if counted {
                            stats.green += 1;
                        }
                    }
                    Outcome::Fresh { red, deps } => {
                        if red {
                            // The stale entry must go before the miss set
                            // is computed below, so the method re-enters
                            // the per-method passes and is re-admitted
                            // with its new read-set.
                            self.entries.remove(&key);
                            self.dep_records.remove(&key);
                            if counted {
                                stats.red += 1;
                            }
                        }
                        wave_deps.insert(mref.clone(), deps);
                    }
                }
                let mut h = Fnv64::new();
                match summary {
                    Some(s) => {
                        h.write_u64(1);
                        h.write_u64(hash_debug(&s));
                        summaries.insert(mref.clone(), s);
                    }
                    None => h.write_u64(0),
                }
                match sh {
                    Some((c, r)) => {
                        h.write_u64(1);
                        h.write_u64(hash_debug(&c));
                        h.write_u64(hash_debug(&r));
                        shared_clears.insert(mref.clone(), c);
                        shared_reads.insert(mref.clone(), r);
                    }
                    None => h.write_u64(0),
                }
                shashes.insert(mref.clone(), h.finish());
                keys.insert(mref.clone(), key);
            }
        }
        stats.revalidated = stats.green + stats.red;
        stats.invalidations = self
            .last_keys
            .iter()
            .filter(|(m, key)| keys.get(*m).is_some_and(|now| now != *key))
            .count();
        // The per-method passes cover only the owned cone in shard mode;
        // hit/miss statistics count the same set.
        let relevant: Vec<usize> = (0..cg.topo.len())
            .filter(|&i| owned.is_none_or(|o| o.contains(&cg.topo[i])))
            .collect();
        let missing: Vec<usize> = relevant
            .iter()
            .copied()
            .filter(|&i| !self.entries.contains_key(&keys[&cg.topo[i]]))
            .collect();
        stats.misses = missing.len();
        stats.hits = relevant.len() - missing.len();
        self.last_rechecked = missing.iter().map(|&i| cg.topo[i].clone()).collect();

        // Eviction event-loop check: always recomputed (it reads every
        // summary at once and is cheap relative to per-method analysis);
        // driver-side only in sharded mode.
        if !sharded {
            let (stale_paths, stale_locals) = written::check_loop(program, &cg, &summaries);
            written::report(&stale_paths, &stale_locals, &mut global);
            timings.eviction = t.elapsed();
            let eviction = EvictionResult {
                summaries,
                stale_paths,
                stale_locals,
            };
            self.finish_check(
                program,
                owned,
                diags,
                global,
                stats,
                timings,
                lattices,
                cg,
                eviction,
                members,
                keys,
                shared_clears,
                shared_reads,
                missing,
                relevant,
                wave_deps,
            )
        } else {
            timings.eviction = t.elapsed();
            let eviction = EvictionResult {
                summaries,
                stale_paths: Vec::new(),
                stale_locals: Vec::new(),
            };
            self.finish_check(
                program,
                owned,
                diags,
                global,
                stats,
                timings,
                lattices,
                cg,
                eviction,
                members,
                keys,
                shared_clears,
                shared_reads,
                missing,
                relevant,
                wave_deps,
            )
        }
    }

    /// Second half of [`IncrementalChecker::check_inner`]: the per-method
    /// fan-outs, replay merges, cache admission, and store publication.
    #[allow(clippy::too_many_arguments)]
    fn finish_check(
        &mut self,
        program: &Program,
        owned: Option<&BTreeSet<MethodRef>>,
        mut diags: Diagnostics,
        global: Diagnostics,
        stats: CacheStats,
        mut timings: PhaseTimings,
        lattices: Lattices,
        cg: callgraph::CallGraph,
        eviction: EvictionResult,
        members: BTreeSet<SharedMember>,
        keys: BTreeMap<MethodRef, u64>,
        shared_clears: BTreeMap<MethodRef, BTreeSet<SharedMember>>,
        shared_reads: BTreeMap<MethodRef, BTreeSet<SharedMember>>,
        missing: Vec<usize>,
        relevant: Vec<usize>,
        mut wave_deps: BTreeMap<MethodRef, Vec<DepKey>>,
    ) -> CheckReport {
        let sharded = owned.is_some();
        // The per-method passes run against the shard view: the whole
        // program in driver mode, a reduced interface-summaries-plus-own-
        // bodies view in shard mode. Reducing (rather than borrowing the
        // full program) is what enforces the contract that per-method
        // checking never reads a foreign body.
        let reduced_view: Program;
        let view = match owned {
            None => ShardInput::whole(program),
            Some(o) => {
                reduced_view = sjava_analysis::shard::reduce(program, o);
                ShardInput::new(&reduced_view, o.clone())
            }
        };

        // Flow check: fan out over the dirty indices only, then merge
        // cached and fresh buffers in topological order — the same order
        // the full pipeline merges, so output bytes match. Scheduling
        // prefers each method's *measured* duration from a prior run
        // (session- or store-recorded) over the static statement-weight
        // estimate; timings only order the work queue, never the output.
        let t = Instant::now();
        let mut cost: Vec<u64> = Vec::with_capacity(missing.len());
        for &i in &missing {
            let nh = name_hash(&cg.topo[i]);
            let measured = match self.times.get(&nh) {
                Some(&ns) => Some(ns),
                None => {
                    let fetched = self.store.as_ref().and_then(|s| s.get_time(nh));
                    if let Some(ns) = fetched {
                        self.times.insert(nh, ns);
                    }
                    fetched
                }
            };
            cost.push(match measured {
                Some(ns) => ns.max(1),
                None => checker::method_cost(&view, &lattices, &cg.topo[i]),
            });
        }
        let mut flow_nanos: Vec<(u64, u64)> = Vec::with_capacity(missing.len());
        let mut flow_deps: BTreeMap<usize, Vec<DepKey>> = BTreeMap::new();
        let fresh_flow: BTreeMap<usize, Diagnostics> =
            sjava_par::run_sparse_weighted(&missing, &cost, |i| {
                let scope = ReadScope::begin();
                let t0 = Instant::now();
                let d =
                    checker::check_method_flows(&view, &lattices, &cg.topo[i], &eviction.summaries);
                (d, t0.elapsed().as_nanos() as u64, scope.finish())
            })
            .into_iter()
            .map(|(i, (d, ns, deps))| {
                flow_nanos.push((name_hash(&cg.topo[i]), ns));
                flow_deps.insert(i, deps);
                (i, d)
            })
            .collect();
        for &(nh, ns) in &flow_nanos {
            self.times.insert(nh, ns);
        }
        for &i in &relevant {
            match fresh_flow.get(&i) {
                Some(d) => diags.extend(d.clone()),
                None => {
                    for d in &self.entries[&keys[&cg.topo[i]]].flow {
                        diags.push(d.clone());
                    }
                }
            }
        }
        timings.flow_check = t.elapsed();

        // Aliasing: same dirty-cone fan-out and topo-order merge.
        let t = Instant::now();
        let mut alias_deps: BTreeMap<usize, Vec<DepKey>> = BTreeMap::new();
        let fresh_alias: BTreeMap<usize, Diagnostics> = sjava_par::run_sparse(&missing, |i| {
            let scope = ReadScope::begin();
            let d = linear::check_method_aliasing(&view, &lattices, &cg.topo[i]);
            (d, scope.finish())
        })
        .into_iter()
        .map(|(i, (d, deps))| {
            alias_deps.insert(i, deps);
            (i, d)
        })
        .collect();
        for &i in &relevant {
            match fresh_alias.get(&i) {
                Some(d) => diags.extend(d.clone()),
                None => {
                    for d in &self.entries[&keys[&cg.topo[i]]].alias {
                        diags.push(d.clone());
                    }
                }
            }
        }
        timings.aliasing = t.elapsed();

        // Shared-location event-loop check: the per-method clears/reads
        // summaries were already assembled (replayed or recomputed)
        // alongside the keys; only the global loop walk runs here, and
        // only driver-side — it emits whole-program diagnostics.
        let t = Instant::now();
        if !sharded && !members.is_empty() {
            shared::check_shared_loop(
                program,
                &lattices,
                &cg,
                &members,
                &shared_clears,
                &shared_reads,
                &mut diags,
            );
        }
        timings.shared = t.elapsed();

        // Termination: verdicts depend only on the method body; replay or
        // recompute per method, merged in topological order.
        let t = Instant::now();
        let mut termination_failures = 0usize;
        let mut fresh_term: BTreeMap<usize, (usize, Diagnostics)> = BTreeMap::new();
        let mut term_deps: BTreeMap<usize, Vec<DepKey>> = BTreeMap::new();
        for &i in &relevant {
            let mref = &cg.topo[i];
            match self.entries.get(&keys[mref]) {
                Some(e) => {
                    termination_failures += e.term_failures;
                    for d in &e.term {
                        diags.push(d.clone());
                    }
                }
                None => {
                    let scope = ReadScope::begin();
                    let (n, d) = termination::check_method(&view, mref);
                    term_deps.insert(i, scope.finish());
                    termination_failures += n;
                    diags.extend(d.clone());
                    fresh_term.insert(i, (n, d));
                }
            }
        }
        timings.termination = t.elapsed();

        // Admit the freshly-computed results into the cache, each paired
        // with the union of every read-set its phases recorded (wave
        // summary + shared, flow, aliasing, termination), fingerprinted
        // against *this* program — the admission side of red-green. In
        // shard mode only the owned cone was fully analyzed, and
        // `missing` already covers exactly that.
        let admit_db = deps::FactDb::new(program, &lattices, &members);
        for &i in &missing {
            let mref = &cg.topo[i];
            let (term_failures, term) = fresh_term
                .remove(&i)
                .map(|(n, d)| (n, d.into_vec()))
                .unwrap_or_default();
            let entry = MethodEntry {
                summary: eviction.summaries.get(mref).cloned().unwrap_or_default(),
                flow: fresh_flow
                    .get(&i)
                    .map(|d| d.iter().cloned().collect())
                    .unwrap_or_default(),
                alias: fresh_alias
                    .get(&i)
                    .map(|d| d.iter().cloned().collect())
                    .unwrap_or_default(),
                shared_present: shared_clears.contains_key(mref),
                shared_clears: shared_clears.get(mref).cloned().unwrap_or_default(),
                shared_reads: shared_reads.get(mref).cloned().unwrap_or_default(),
                term_failures,
                term,
            };
            // BTreeSet union: deterministic read-set order regardless of
            // which phase recorded a fact first or on which thread.
            let mut read_set: BTreeSet<DepKey> = BTreeSet::new();
            read_set.extend(wave_deps.remove(mref).unwrap_or_default());
            read_set.extend(flow_deps.remove(&i).unwrap_or_default());
            read_set.extend(alias_deps.remove(&i).unwrap_or_default());
            read_set.extend(term_deps.remove(&i).unwrap_or_default());
            self.dep_records
                .insert(keys[mref], admit_db.fingerprint(read_set));
            self.entries.insert(keys[mref], entry);
        }
        drop(admit_db);
        self.last_keys = keys.clone();
        if let Some(store) = &self.store {
            // Publication is best-effort: an unwritable store must not
            // fail the check. Tiny programs skip the round-trip entirely —
            // below the weight threshold the encode+write costs more than
            // the re-check it would save, turning warm checks slower than
            // cold ones.
            let weight: u64 = cg
                .topo
                .iter()
                .filter_map(|mref| program.resolve_method(&mref.0, &mref.1))
                .map(|(_, m)| checker::block_weight(&m.body))
                .sum();
            if weight >= self.persist_min {
                for &i in &missing {
                    let key = keys[&cg.topo[i]];
                    // The deps object embeds the entry payload's checksum,
                    // pairing the two publishes: a reader that observes
                    // mismatched halves treats the key as a miss.
                    if let Ok(efp) = store.put_entry(key, &self.entries[&key]) {
                        if let Some(deps) = self.dep_records.get(&key) {
                            let _ = store.put_deps(key, deps, efp);
                        }
                    }
                }
                for (ckey, set) in &self.callee_cache {
                    let _ = store.put_callees(*ckey, set);
                }
                for &(nh, ns) in &flow_nanos {
                    let _ = store.put_time(nh, ns);
                }
                if let Some(max) = max_bytes_budget() {
                    store.evict_to(max);
                }
            }
        }

        if !sharded {
            diags.extend(global);
        }
        // Same stable total order as `sjava_core::check_program`, so
        // replayed and freshly-computed reports stay byte-identical.
        diags.sort_stable();
        CheckReport {
            diagnostics: diags,
            lattices,
            eviction: Some(eviction),
            termination_failures,
            timings,
            cache: Some(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parse_rejects_malformed_values() {
        // The pure parser behind every env read: valid decimals parse,
        // padding is trimmed, anything else is rejected (not silently
        // zeroed) so the callers can warn and fall back.
        assert_eq!(parse_env_u64("256"), Some(256));
        assert_eq!(parse_env_u64("  0  "), Some(0));
        assert_eq!(parse_env_u64(""), None);
        assert_eq!(parse_env_u64("lots"), None);
        assert_eq!(parse_env_u64("-1"), None);
        assert_eq!(parse_env_u64("4k"), None);
        assert_eq!(parse_env_u64("1.5"), None);
    }

    #[test]
    fn unwritable_cache_dir_degrades_to_uncached_session() {
        // A path that cannot possibly become a directory: a component of
        // it is a regular file. `with_dir` must warn (once) and hand back
        // a working, uncached session instead of failing the check.
        let base = std::env::temp_dir().join("sjava-cache-unwritable");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).expect("mkdir");
        let file = base.join("not-a-dir");
        std::fs::write(&file, b"x").expect("file");
        let mut session = IncrementalChecker::with_dir(file.join("cache"));
        assert!(session.store().is_none(), "store must be degraded away");
        let program = sjava_syntax::parse(
            "class A { void main() { SSJAVA: while (true) { Out.emit(1); } } }",
        )
        .expect("parses");
        let report = session.check(&program);
        assert!(report.is_ok(), "{}", report.diagnostics);
        assert_eq!(
            format!("{}", report.diagnostics),
            format!("{}", sjava_core::check_program(&program).diagnostics),
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn malformed_persist_min_env_falls_back_to_default() {
        // The latch only suppresses the warning, never the fallback. This
        // test owns PERSIST_MIN_ENV (no other test in this crate mutates
        // it), so the mutation cannot race.
        std::env::set_var(PERSIST_MIN_ENV, "not-a-number");
        assert_eq!(persist_min_weight(), PERSIST_MIN_WEIGHT);
        assert!(WARNED_PERSIST_MIN.load(Ordering::Relaxed));
        assert_eq!(persist_min_weight(), PERSIST_MIN_WEIGHT);
        std::env::set_var(PERSIST_MIN_ENV, "512");
        assert_eq!(persist_min_weight(), 512);
        std::env::remove_var(PERSIST_MIN_ENV);
        assert_eq!(persist_min_weight(), PERSIST_MIN_WEIGHT);
    }

    #[test]
    fn malformed_max_bytes_env_leaves_store_unbounded() {
        // This test owns MAX_BYTES_ENV; see above.
        std::env::set_var(store::MAX_BYTES_ENV, "a-lot");
        assert_eq!(max_bytes_budget(), None);
        assert!(WARNED_MAX_BYTES.load(Ordering::Relaxed));
        std::env::set_var(store::MAX_BYTES_ENV, "1048576");
        assert_eq!(max_bytes_budget(), Some(1 << 20));
        std::env::remove_var(store::MAX_BYTES_ENV);
        assert_eq!(max_bytes_budget(), None);
    }
}
