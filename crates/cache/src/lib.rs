//! # sjava-cache
//!
//! Content-addressed incremental layer over the SJava whole-program
//! checker. An [`IncrementalChecker`] session memoizes every per-method
//! analysis result — flow diagnostics, eviction summaries, aliasing
//! diagnostics, shared-location summaries, and termination verdicts —
//! keyed on a stable 64-bit fingerprint of the method's body, the class
//! interfaces (lattices included), and its callees' fingerprints (see
//! [`fingerprints`]). A re-check after an edit re-analyzes only the
//! dirtied call-graph cone and replays cached results for everything
//! else, merged in the same topological order as the full pipeline, so
//! the diagnostics are **byte-identical** to a cold
//! [`sjava_core::check_program`] run at any thread count.
//!
//! What is never cached: lattice construction is keyed separately on the
//! interface hash; call-graph assembly, the eviction event-loop check,
//! and the shared-location event-loop check are always recomputed (they
//! read global state and are cheap relative to per-method analysis).
//!
//! Setting `SJAVA_CACHE_DIR` (see [`CACHE_DIR_ENV`]) persists entries to
//! disk with a versioned header; a corrupt or mismatched file degrades
//! to cache misses, never to an error or a stale result.
//!
//! ```
//! let program = sjava_syntax::parse(
//!     "class A { void main() { SSJAVA: while (true) { Out.emit(1); } } }",
//! ).expect("parses");
//! let mut session = sjava_cache::IncrementalChecker::new();
//! let cold = session.check(&program);
//! let warm = session.check(&program);
//! assert_eq!(format!("{}", cold.diagnostics), format!("{}", warm.diagnostics));
//! assert_eq!(warm.cache.expect("incremental").misses, 0);
//! ```

#![warn(missing_docs)]

mod disk;
pub mod edit;
pub mod fingerprints;

use sjava_analysis::callgraph::{self, MethodRef};
use sjava_analysis::termination;
use sjava_analysis::written::{self, EvictionResult, MethodSummary};
use sjava_core::shared::SharedMember;
use sjava_core::{
    checker, linear, shared, CacheStats, CheckReport, Lattices, ParseFailure, PhaseTimings,
};
use sjava_lattice::{hash_debug, mix, Fnv64};
use sjava_syntax::ast::Program;
use sjava_syntax::diag::{Diagnostic, Diagnostics};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::time::Instant;

use fingerprints::{iface_hash, local_fp};

/// Environment variable naming the on-disk cache directory. When set,
/// [`IncrementalChecker::from_env`] loads persisted entries from
/// `$SJAVA_CACHE_DIR/cache.bin` and writes them back after every check.
pub const CACHE_DIR_ENV: &str = "SJAVA_CACHE_DIR";

/// Environment variable overriding [`PERSIST_MIN_WEIGHT`].
pub const PERSIST_MIN_ENV: &str = "SJAVA_CACHE_PERSIST_MIN";

/// Minimum total statement weight of the fingerprinted method set before
/// a directory-backed session rewrites its cache file after a check.
/// Serializing the cache costs a fixed ~0.2–0.5 ms of encode + write; a
/// paper-sized app re-checks from scratch faster than that, so
/// persisting it makes every *warm* check slower than a cold one (the
/// `windsensor` warm_speedup-0.72 regression). Below this weight the
/// round-trip is skipped — the in-memory session still replays hits, and
/// a future process can re-check the tiny program cheaply anyway.
pub const PERSIST_MIN_WEIGHT: u64 = 256;

/// The effective persistence threshold: [`PERSIST_MIN_WEIGHT`] unless
/// overridden via [`PERSIST_MIN_ENV`] (`0` persists everything).
fn persist_min_weight() -> u64 {
    std::env::var(PERSIST_MIN_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(PERSIST_MIN_WEIGHT)
}

/// Every cached per-method result, keyed (in the session maps) by the
/// method's content fingerprint.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MethodEntry {
    /// Eviction read/write summary (`written::summarize`).
    pub summary: MethodSummary,
    /// Flow-down checker diagnostics (`checker::check_method_flows`).
    pub flow: Vec<Diagnostic>,
    /// Aliasing diagnostics (`linear::check_method_aliasing`).
    pub alias: Vec<Diagnostic>,
    /// Whether a shared-location summary was computed for this method
    /// (false when the program has no shared members or the method has
    /// no lattice info — mirrored so replays rebuild the same maps).
    pub shared_present: bool,
    /// Shared members this method definitely clears.
    pub shared_clears: BTreeSet<SharedMember>,
    /// Shared members this method reads.
    pub shared_reads: BTreeSet<SharedMember>,
    /// Termination failure count (`termination::check_method`).
    pub term_failures: usize,
    /// Termination diagnostics, in source order.
    pub term: Vec<Diagnostic>,
}

/// The cached lattice model, valid while the interface hash matches.
struct LatticeEntry {
    iface: u64,
    lattices: Lattices,
    diags: Vec<Diagnostic>,
}

/// An incremental checking session.
///
/// Feed successive revisions of a program to [`IncrementalChecker::check`];
/// each call returns a [`CheckReport`] whose diagnostics are byte-identical
/// to a fresh [`sjava_core::check_program`] run, with
/// [`CheckReport::cache`] describing how much was replayed. Entries are
/// content-addressed, so a session can serve any number of programs (and
/// survives edits being reverted — the old fingerprints hit again).
pub struct IncrementalChecker {
    entries: HashMap<u64, MethodEntry>,
    callee_cache: HashMap<u64, BTreeSet<MethodRef>>,
    lattice_cache: Option<LatticeEntry>,
    last_keys: BTreeMap<MethodRef, u64>,
    dir: Option<PathBuf>,
    persist_min: u64,
}

impl Default for IncrementalChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalChecker {
    /// An empty in-memory session (no disk persistence).
    pub fn new() -> Self {
        IncrementalChecker {
            entries: HashMap::new(),
            callee_cache: HashMap::new(),
            lattice_cache: None,
            last_keys: BTreeMap::new(),
            dir: None,
            persist_min: persist_min_weight(),
        }
    }

    /// A session backed by an on-disk cache under `dir`: existing entries
    /// are loaded (corrupt or version-mismatched data is silently treated
    /// as missing) and the cache file is rewritten after every check.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let (entries, callee_cache) = disk::load(&dir);
        IncrementalChecker {
            entries,
            callee_cache,
            lattice_cache: None,
            last_keys: BTreeMap::new(),
            dir: Some(dir),
            persist_min: persist_min_weight(),
        }
    }

    /// Overrides the persistence weight threshold for this session (`0`
    /// persists every program). Tests use this instead of mutating
    /// [`PERSIST_MIN_ENV`], which would race across test threads.
    pub fn set_persist_min(&mut self, weight: u64) {
        self.persist_min = weight;
    }

    /// [`IncrementalChecker::with_dir`] when [`CACHE_DIR_ENV`] is set,
    /// otherwise [`IncrementalChecker::new`].
    pub fn from_env() -> Self {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => Self::with_dir(dir.trim()),
            _ => Self::new(),
        }
    }

    /// Number of cached per-method entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the session holds no cached entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached entry (the disk file, if any, is overwritten on
    /// the next check).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.callee_cache.clear();
        self.lattice_cache = None;
        self.last_keys.clear();
    }

    /// Parses and checks source text incrementally, charging parse time
    /// to [`PhaseTimings::parse`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseFailure`] when the source does not parse.
    // The Ok variant (`CheckReport`) is no smaller than the Err variant,
    // so boxing `ParseFailure` would not shrink the `Result`.
    #[allow(clippy::result_large_err)]
    pub fn check_source(&mut self, source: &str) -> Result<CheckReport, ParseFailure> {
        let t = Instant::now();
        let parsed = sjava_syntax::parse(source);
        let parse = t.elapsed();
        match parsed {
            Ok(program) => {
                let mut report = self.check(&program);
                report.timings.parse = parse;
                Ok(report)
            }
            Err(diagnostics) => Err(ParseFailure {
                diagnostics,
                timings: PhaseTimings {
                    parse,
                    threads: sjava_par::num_threads(),
                    ..PhaseTimings::default()
                },
            }),
        }
    }

    /// Checks `program`, replaying cached per-method results wherever the
    /// content fingerprint matches and re-analyzing only the dirtied
    /// call-graph cone. Diagnostics are byte-identical to
    /// [`sjava_core::check_program`] on the same program.
    pub fn check(&mut self, program: &Program) -> CheckReport {
        let mut diags = Diagnostics::new();
        let mut stats = CacheStats::default();
        let mut timings = PhaseTimings {
            threads: sjava_par::num_threads(),
            ..PhaseTimings::default()
        };
        let iface = iface_hash(program);

        // Lattice model, keyed on the interface hash (replaying its
        // diagnostics in build order).
        let t = Instant::now();
        let lattices = match &self.lattice_cache {
            Some(e) if e.iface == iface => {
                for d in &e.diags {
                    diags.push(d.clone());
                }
                e.lattices.clone()
            }
            _ => {
                let mut ld = Diagnostics::new();
                let lattices = Lattices::build(program, &mut ld);
                let cached: Vec<Diagnostic> = ld.iter().cloned().collect();
                for d in &cached {
                    diags.push(d.clone());
                }
                self.lattice_cache = Some(LatticeEntry {
                    iface,
                    lattices: lattices.clone(),
                    diags: cached,
                });
                lattices
            }
        };
        timings.lattice_build = t.elapsed();

        // Call graph: assembly is recomputed, per-method callee sets are
        // served from the cache keyed on (iface, local body) — the set
        // does not depend on callees, so the local fingerprint suffices.
        // Local fingerprints are memoized for the whole check: hashing a
        // method body is the dominant fixed cost of a warm check, so it
        // must happen at most once per method.
        let t = Instant::now();
        let mut local_fps: HashMap<MethodRef, u64> = HashMap::new();
        let callee_cache = &mut self.callee_cache;
        let cg = callgraph::build_with(program, &mut diags, |mref| {
            let lfp = *local_fps
                .entry(mref.clone())
                .or_insert_with(|| local_fp(program, mref));
            callee_cache
                .entry(mix(iface, lfp))
                .or_insert_with(|| callgraph::method_callees(program, mref))
                .clone()
        });
        timings.callgraph = t.elapsed();
        let Some(cg) = cg else {
            diags.sort_stable();
            return CheckReport {
                diagnostics: diags,
                lattices,
                eviction: None,
                termination_failures: 0,
                timings,
                cache: Some(stats),
            };
        };

        // Entry keys and summaries, bottom-up by wave. A method's key
        // folds the interface hash, its own body fingerprint, and the
        // *summary hashes* of its direct callees — the eviction and
        // shared-location summary values, NOT the callee bodies. This is
        // the early-cutoff property: flow, aliasing, and termination
        // diagnostics depend only on a method's own body, the class
        // interfaces, and its callees' summaries, so an edit that leaves
        // every callee summary unchanged by value lets all callers
        // replay their cached results.
        let t = Instant::now();
        let members = shared::shared_members(program, &lattices);
        let mut keys: BTreeMap<MethodRef, u64> = BTreeMap::new();
        let mut shashes: BTreeMap<MethodRef, u64> = BTreeMap::new();
        let mut summaries: BTreeMap<MethodRef, MethodSummary> = BTreeMap::new();
        let mut shared_clears: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
        let mut shared_reads: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
        for wave in cg.levels() {
            // Waves order callees strictly before callers, so every
            // callee's summary hash is final when its callers key.
            type WaveResult = (
                u64,
                Option<MethodSummary>,
                Option<(BTreeSet<SharedMember>, BTreeSet<SharedMember>)>,
            );
            let results: Vec<WaveResult> = sjava_par::run_indexed(wave.len(), |i| {
                let mref = &wave[i];
                let mut h = Fnv64::new();
                h.write_u64(iface);
                let lfp = local_fps
                    .get(mref)
                    .copied()
                    .unwrap_or_else(|| local_fp(program, mref));
                h.write_u64(lfp);
                if let Some(cs) = cg.calls.get(mref) {
                    h.write_usize(cs.len());
                    for c in cs {
                        h.write_u64(*shashes.get(c).unwrap_or(&0));
                    }
                }
                let key = h.finish();
                match self.entries.get(&key) {
                    Some(e) => (
                        key,
                        Some(e.summary.clone()),
                        e.shared_present
                            .then(|| (e.shared_clears.clone(), e.shared_reads.clone())),
                    ),
                    None => (
                        key,
                        written::summarize(program, mref, &summaries),
                        if members.is_empty() {
                            None
                        } else {
                            shared::method_shared_summary(
                                program,
                                &lattices,
                                mref,
                                &members,
                                &shared_clears,
                                &shared_reads,
                            )
                        },
                    ),
                }
            });
            for (mref, (key, summary, sh)) in wave.iter().zip(results) {
                let mut h = Fnv64::new();
                match summary {
                    Some(s) => {
                        h.write_u64(1);
                        h.write_u64(hash_debug(&s));
                        summaries.insert(mref.clone(), s);
                    }
                    None => h.write_u64(0),
                }
                match sh {
                    Some((c, r)) => {
                        h.write_u64(1);
                        h.write_u64(hash_debug(&c));
                        h.write_u64(hash_debug(&r));
                        shared_clears.insert(mref.clone(), c);
                        shared_reads.insert(mref.clone(), r);
                    }
                    None => h.write_u64(0),
                }
                shashes.insert(mref.clone(), h.finish());
                keys.insert(mref.clone(), key);
            }
        }
        stats.invalidations = self
            .last_keys
            .iter()
            .filter(|(m, key)| keys.get(*m).is_some_and(|now| now != *key))
            .count();
        let missing: Vec<usize> = (0..cg.topo.len())
            .filter(|&i| !self.entries.contains_key(&keys[&cg.topo[i]]))
            .collect();
        stats.misses = missing.len();
        stats.hits = cg.topo.len() - missing.len();

        // Eviction event-loop check: always recomputed (it reads every
        // summary at once and is cheap relative to per-method analysis).
        let (stale_paths, stale_locals) = written::check_loop(program, &cg, &summaries);
        written::report(&stale_paths, &stale_locals, &mut diags);
        timings.eviction = t.elapsed();
        let eviction = EvictionResult {
            summaries,
            stale_paths,
            stale_locals,
        };

        // Flow check: fan out over the dirty indices only, then merge
        // cached and fresh buffers in topological order — the same order
        // the full pipeline merges, so output bytes match.
        let t = Instant::now();
        let fresh_flow: BTreeMap<usize, Diagnostics> = sjava_par::run_sparse(&missing, |i| {
            checker::check_method_flows(program, &lattices, &cg.topo[i], &eviction.summaries)
        })
        .into_iter()
        .collect();
        for i in 0..cg.topo.len() {
            match fresh_flow.get(&i) {
                Some(d) => diags.extend(d.clone()),
                None => {
                    for d in &self.entries[&keys[&cg.topo[i]]].flow {
                        diags.push(d.clone());
                    }
                }
            }
        }
        timings.flow_check = t.elapsed();

        // Aliasing: same dirty-cone fan-out and topo-order merge.
        let t = Instant::now();
        let fresh_alias: BTreeMap<usize, Diagnostics> = sjava_par::run_sparse(&missing, |i| {
            linear::check_method_aliasing(program, &lattices, &cg.topo[i])
        })
        .into_iter()
        .collect();
        for i in 0..cg.topo.len() {
            match fresh_alias.get(&i) {
                Some(d) => diags.extend(d.clone()),
                None => {
                    for d in &self.entries[&keys[&cg.topo[i]]].alias {
                        diags.push(d.clone());
                    }
                }
            }
        }
        timings.aliasing = t.elapsed();

        // Shared-location event-loop check: the per-method clears/reads
        // summaries were already assembled (replayed or recomputed)
        // alongside the keys; only the global loop walk runs here.
        let t = Instant::now();
        if !members.is_empty() {
            shared::check_shared_loop(
                program,
                &lattices,
                &cg,
                &members,
                &shared_clears,
                &shared_reads,
                &mut diags,
            );
        }
        timings.shared = t.elapsed();

        // Termination: verdicts depend only on the method body; replay or
        // recompute per method, merged in topological order.
        let t = Instant::now();
        let mut termination_failures = 0usize;
        let mut fresh_term: BTreeMap<usize, (usize, Diagnostics)> = BTreeMap::new();
        for (i, mref) in cg.topo.iter().enumerate() {
            match self.entries.get(&keys[mref]) {
                Some(e) => {
                    termination_failures += e.term_failures;
                    for d in &e.term {
                        diags.push(d.clone());
                    }
                }
                None => {
                    let (n, d) = termination::check_method(program, mref);
                    termination_failures += n;
                    diags.extend(d.clone());
                    fresh_term.insert(i, (n, d));
                }
            }
        }
        timings.termination = t.elapsed();

        // Admit the freshly-computed results into the cache.
        for &i in &missing {
            let mref = &cg.topo[i];
            let (term_failures, term) = fresh_term
                .remove(&i)
                .map(|(n, d)| (n, d.into_vec()))
                .unwrap_or_default();
            let entry = MethodEntry {
                summary: eviction.summaries.get(mref).cloned().unwrap_or_default(),
                flow: fresh_flow
                    .get(&i)
                    .map(|d| d.iter().cloned().collect())
                    .unwrap_or_default(),
                alias: fresh_alias
                    .get(&i)
                    .map(|d| d.iter().cloned().collect())
                    .unwrap_or_default(),
                shared_present: shared_clears.contains_key(mref),
                shared_clears: shared_clears.get(mref).cloned().unwrap_or_default(),
                shared_reads: shared_reads.get(mref).cloned().unwrap_or_default(),
                term_failures,
                term,
            };
            self.entries.insert(keys[mref], entry);
        }
        self.last_keys = keys;
        if let Some(dir) = &self.dir {
            // Persistence is best-effort: an unwritable directory must not
            // fail the check. Tiny programs skip the round-trip entirely —
            // below the weight threshold the encode+write costs more than
            // the re-check it would save, turning warm checks slower than
            // cold ones.
            let weight: u64 = cg
                .topo
                .iter()
                .filter_map(|mref| program.resolve_method(&mref.0, &mref.1))
                .map(|(_, m)| checker::block_weight(&m.body))
                .sum();
            if weight >= self.persist_min {
                let _ = disk::save(dir, &self.entries, &self.callee_cache);
            }
        }

        // Same stable total order as `sjava_core::check_program`, so
        // replayed and freshly-computed reports stay byte-identical.
        diags.sort_stable();
        CheckReport {
            diagnostics: diags,
            lattices,
            eviction: Some(eviction),
            termination_failures,
            timings,
            cache: Some(stats),
        }
    }
}

/// The on-disk cache file a directory-backed session reads and writes.
pub fn cache_file(dir: &Path) -> PathBuf {
    disk::cache_file(dir)
}
