//! Minimal AST edits for exercising the incremental cache.
//!
//! The benchmark and the correctness tests both need "the smallest edit a
//! developer could make": mutating one literal in one method, in place.
//! Because the edit is applied to the AST (spans untouched) it changes the
//! method's content fingerprint without perturbing any other method's
//! diagnostics — dirtying exactly the edited method's caller cone.
//!
//! [`bump_first_int_literal`] is the verdict-preserving variant the
//! benchmark uses (integer literals type at ⊤, so the checker's verdict
//! cannot change). [`mutate_first_literal`] also accepts float, boolean,
//! and string literals for programs that contain no integer literal; it
//! may change the verdict, which is fine for tests that compare the
//! incremental output against a full re-check of the same mutated AST.

use sjava_syntax::ast::{Block, Expr, LValue, Program, Stmt};

/// Increments the first integer literal (in statement order) found in the
/// body of `class::method`. Returns `true` if a literal was found and
/// bumped, `false` if the method is missing or contains no integer
/// literal. Spans are left untouched, so a re-parse is not required and
/// sibling methods keep identical fingerprints.
///
/// A `false` return means the program was **not** edited — benchmarks
/// and oracles that ignore it would silently measure a no-op run, so the
/// result must be checked.
#[must_use = "a false return means no edit was applied"]
pub fn bump_first_int_literal(program: &mut Program, class: &str, method: &str) -> bool {
    mutate_method(program, class, method, &mut |e| match e {
        Expr::IntLit { value, .. } => {
            *value = value.wrapping_add(1);
            true
        }
        _ => false,
    })
}

/// Mutates the first literal of any kind (int, float, bool, string) in
/// the body of `class::method`: integers and floats are incremented,
/// booleans flipped, strings extended. Returns `false` if the method is
/// missing or literal-free. Like [`bump_first_int_literal`], a `false`
/// return means nothing was edited and must not be ignored.
#[must_use = "a false return means no edit was applied"]
pub fn mutate_first_literal(program: &mut Program, class: &str, method: &str) -> bool {
    mutate_method(program, class, method, &mut |e| match e {
        Expr::IntLit { value, .. } => {
            *value = value.wrapping_add(1);
            true
        }
        Expr::FloatLit { value, .. } => {
            *value += 1.0;
            true
        }
        Expr::BoolLit { value, .. } => {
            *value = !*value;
            true
        }
        Expr::StrLit { value, .. } => {
            value.push('x');
            true
        }
        _ => false,
    })
}

/// The smallest *interface* edit: widens the header span of
/// `class::method` by one byte, as if the developer renamed a parameter
/// or adjusted whitespace inside the signature. The method's own content
/// fingerprint moves (header spans are part of it) and the recorded
/// `Resolve` fact of every direct caller goes red — but no other fact in
/// the dependency map changes, so red-green revalidation rechecks
/// exactly the edited method plus its direct callers. Under the old
/// whole-interface cutoff this same edit invalidated every cached method
/// in the program.
#[must_use = "a false return means no edit was applied"]
pub fn shift_method_span(program: &mut Program, class: &str, method: &str) -> bool {
    let Some(c) = program.classes.iter_mut().find(|c| c.name == class) else {
        return false;
    };
    let Some(m) = c.methods.iter_mut().find(|m| m.name == method) else {
        return false;
    };
    m.span.end += 1;
    true
}

/// An interface edit with an **empty** true-dependent set: appends a
/// fresh, never-referenced field to `class`, cloning the annotations and
/// type of its last declared field so the class still lattice-checks
/// identically. The class's whole-interface hash moves (field count
/// changed), but no method recorded a fact about a field that did not
/// exist, so red-green revalidation rechecks zero methods. Returns
/// `false` when the class is missing or has no field to clone.
#[must_use = "a false return means no edit was applied"]
pub fn add_unused_field(program: &mut Program, class: &str) -> bool {
    let Some(c) = program.classes.iter_mut().find(|c| c.name == class) else {
        return false;
    };
    let Some(template) = c.fields.last() else {
        return false;
    };
    let mut field = template.clone();
    field.name = format!("unusedPad{}", c.fields.len());
    field.init = None;
    c.fields.push(field);
    true
}

/// The shared walker: applies `mutate` to expressions in statement order
/// until it reports success.
fn mutate_method(
    program: &mut Program,
    class: &str,
    method: &str,
    mutate: &mut dyn FnMut(&mut Expr) -> bool,
) -> bool {
    let Some(c) = program.classes.iter_mut().find(|c| c.name == class) else {
        return false;
    };
    let Some(m) = c.methods.iter_mut().find(|m| m.name == method) else {
        return false;
    };
    walk_block(&mut m.body, mutate)
}

fn walk_block(block: &mut Block, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    block.stmts.iter_mut().any(|s| walk_stmt(s, mutate))
}

fn walk_stmt(stmt: &mut Stmt, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    match stmt {
        Stmt::VarDecl { init, .. } => init.as_mut().is_some_and(|e| walk_expr(e, mutate)),
        Stmt::Assign { lhs, rhs, .. } => walk_lvalue(lhs, mutate) || walk_expr(rhs, mutate),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            walk_expr(cond, mutate)
                || walk_block(then_blk, mutate)
                || else_blk.as_mut().is_some_and(|b| walk_block(b, mutate))
        }
        Stmt::While { cond, body, .. } => walk_expr(cond, mutate) || walk_block(body, mutate),
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            init.as_mut().is_some_and(|s| walk_stmt(s, mutate))
                || cond.as_mut().is_some_and(|e| walk_expr(e, mutate))
                || update.as_mut().is_some_and(|s| walk_stmt(s, mutate))
                || walk_block(body, mutate)
        }
        Stmt::Return { value, .. } => value.as_mut().is_some_and(|e| walk_expr(e, mutate)),
        Stmt::Break { .. } | Stmt::Continue { .. } => false,
        Stmt::ExprStmt { expr, .. } => walk_expr(expr, mutate),
        Stmt::Block(b) => walk_block(b, mutate),
    }
}

fn walk_lvalue(lvalue: &mut LValue, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    match lvalue {
        LValue::Var { .. } | LValue::StaticField { .. } => false,
        LValue::Field { base, .. } => walk_expr(base, mutate),
        LValue::Index { base, index, .. } => walk_expr(base, mutate) || walk_expr(index, mutate),
    }
}

fn walk_expr(expr: &mut Expr, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    if mutate(expr) {
        return true;
    }
    match expr {
        Expr::IntLit { .. }
        | Expr::FloatLit { .. }
        | Expr::BoolLit { .. }
        | Expr::StrLit { .. }
        | Expr::Null { .. }
        | Expr::This { .. }
        | Expr::Var { .. }
        | Expr::StaticField { .. }
        | Expr::New { .. } => false,
        Expr::Field { base, .. } | Expr::Length { base, .. } => walk_expr(base, mutate),
        Expr::Index { base, index, .. } => walk_expr(base, mutate) || walk_expr(index, mutate),
        Expr::Call { recv, args, .. } => {
            recv.as_mut().is_some_and(|r| walk_expr(r, mutate))
                || args.iter_mut().any(|a| walk_expr(a, mutate))
        }
        Expr::NewArray { len, .. } => walk_expr(len, mutate),
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => walk_expr(operand, mutate),
        Expr::Binary { lhs, rhs, .. } => walk_expr(lhs, mutate) || walk_expr(rhs, mutate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    #[test]
    fn bumps_exactly_one_literal() {
        let mut p = parse("class A { void f() { int x = 1; int y = 2; } void g() { int z = 7; } }")
            .expect("parses");
        assert!(bump_first_int_literal(&mut p, "A", "f"));
        let expected =
            parse("class A { void f() { int x = 2; int y = 2; } void g() { int z = 7; } }")
                .expect("parses");
        assert_eq!(p, expected, "only the first literal of A::f changes");
    }

    #[test]
    fn missing_method_or_literal_is_reported() {
        let mut p = parse("class A { void f() { } }").expect("parses");
        assert!(!bump_first_int_literal(&mut p, "A", "nope"));
        assert!(!bump_first_int_literal(&mut p, "B", "f"));
        assert!(!bump_first_int_literal(&mut p, "A", "f"));
    }

    #[test]
    fn span_shift_touches_only_the_named_header() {
        let src = "class A { void f() { } void g() { } }";
        let mut p = parse(src).expect("parses");
        let before = parse(src).expect("parses");
        assert!(shift_method_span(&mut p, "A", "f"));
        assert!(!shift_method_span(&mut p, "A", "nope"));
        assert!(!shift_method_span(&mut p, "B", "f"));
        let (f0, g0) = (
            before.classes[0].methods[0].span,
            before.classes[0].methods[1].span,
        );
        let (f1, g1) = (p.classes[0].methods[0].span, p.classes[0].methods[1].span);
        assert_eq!(f1.end, f0.end + 1, "f's header widened by one byte");
        assert_eq!(g1, g0, "g's header untouched");
    }

    #[test]
    fn unused_field_clones_the_last_declared_one() {
        let mut p =
            parse(r#"@LATTICE("L<H") class A { @LOC("L") int x; void f() { } }"#).expect("parses");
        assert!(add_unused_field(&mut p, "A"));
        assert!(!add_unused_field(&mut p, "Missing"));
        let fields = &p.classes[0].fields;
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].name, "unusedPad1");
        assert_eq!(fields[1].annots, fields[0].annots, "annotations cloned");
        assert_eq!(fields[1].init, None, "no initializer to re-check");
        // A field-free class has nothing to clone.
        let mut bare = parse("class B { void f() { } }").expect("parses");
        assert!(!add_unused_field(&mut bare, "B"));
    }

    #[test]
    fn general_mutation_handles_bool_only_methods() {
        let src = "class A { void f() { boolean b = true; } }";
        let mut p = parse(src).expect("parses");
        assert!(!bump_first_int_literal(&mut p, "A", "f"));
        assert!(mutate_first_literal(&mut p, "A", "f"));
        assert_ne!(p, parse(src).expect("parses"), "the bool literal flipped");
    }
}
