//! Minimal AST edits for exercising the incremental cache.
//!
//! The benchmark and the correctness tests both need "the smallest edit a
//! developer could make": mutating one literal in one method, in place.
//! Because the edit is applied to the AST (spans untouched) it changes the
//! method's content fingerprint without perturbing any other method's
//! diagnostics — dirtying exactly the edited method's caller cone.
//!
//! [`bump_first_int_literal`] is the verdict-preserving variant the
//! benchmark uses (integer literals type at ⊤, so the checker's verdict
//! cannot change). [`mutate_first_literal`] also accepts float, boolean,
//! and string literals for programs that contain no integer literal; it
//! may change the verdict, which is fine for tests that compare the
//! incremental output against a full re-check of the same mutated AST.

use sjava_syntax::ast::{Block, Expr, LValue, Program, Stmt};

/// Increments the first integer literal (in statement order) found in the
/// body of `class::method`. Returns `true` if a literal was found and
/// bumped, `false` if the method is missing or contains no integer
/// literal. Spans are left untouched, so a re-parse is not required and
/// sibling methods keep identical fingerprints.
pub fn bump_first_int_literal(program: &mut Program, class: &str, method: &str) -> bool {
    mutate_method(program, class, method, &mut |e| match e {
        Expr::IntLit { value, .. } => {
            *value = value.wrapping_add(1);
            true
        }
        _ => false,
    })
}

/// Mutates the first literal of any kind (int, float, bool, string) in
/// the body of `class::method`: integers and floats are incremented,
/// booleans flipped, strings extended. Returns `false` if the method is
/// missing or literal-free.
pub fn mutate_first_literal(program: &mut Program, class: &str, method: &str) -> bool {
    mutate_method(program, class, method, &mut |e| match e {
        Expr::IntLit { value, .. } => {
            *value = value.wrapping_add(1);
            true
        }
        Expr::FloatLit { value, .. } => {
            *value += 1.0;
            true
        }
        Expr::BoolLit { value, .. } => {
            *value = !*value;
            true
        }
        Expr::StrLit { value, .. } => {
            value.push('x');
            true
        }
        _ => false,
    })
}

/// The shared walker: applies `mutate` to expressions in statement order
/// until it reports success.
fn mutate_method(
    program: &mut Program,
    class: &str,
    method: &str,
    mutate: &mut dyn FnMut(&mut Expr) -> bool,
) -> bool {
    let Some(c) = program.classes.iter_mut().find(|c| c.name == class) else {
        return false;
    };
    let Some(m) = c.methods.iter_mut().find(|m| m.name == method) else {
        return false;
    };
    walk_block(&mut m.body, mutate)
}

fn walk_block(block: &mut Block, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    block.stmts.iter_mut().any(|s| walk_stmt(s, mutate))
}

fn walk_stmt(stmt: &mut Stmt, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    match stmt {
        Stmt::VarDecl { init, .. } => init.as_mut().is_some_and(|e| walk_expr(e, mutate)),
        Stmt::Assign { lhs, rhs, .. } => walk_lvalue(lhs, mutate) || walk_expr(rhs, mutate),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            walk_expr(cond, mutate)
                || walk_block(then_blk, mutate)
                || else_blk.as_mut().is_some_and(|b| walk_block(b, mutate))
        }
        Stmt::While { cond, body, .. } => walk_expr(cond, mutate) || walk_block(body, mutate),
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            init.as_mut().is_some_and(|s| walk_stmt(s, mutate))
                || cond.as_mut().is_some_and(|e| walk_expr(e, mutate))
                || update.as_mut().is_some_and(|s| walk_stmt(s, mutate))
                || walk_block(body, mutate)
        }
        Stmt::Return { value, .. } => value.as_mut().is_some_and(|e| walk_expr(e, mutate)),
        Stmt::Break { .. } | Stmt::Continue { .. } => false,
        Stmt::ExprStmt { expr, .. } => walk_expr(expr, mutate),
        Stmt::Block(b) => walk_block(b, mutate),
    }
}

fn walk_lvalue(lvalue: &mut LValue, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    match lvalue {
        LValue::Var { .. } | LValue::StaticField { .. } => false,
        LValue::Field { base, .. } => walk_expr(base, mutate),
        LValue::Index { base, index, .. } => walk_expr(base, mutate) || walk_expr(index, mutate),
    }
}

fn walk_expr(expr: &mut Expr, mutate: &mut dyn FnMut(&mut Expr) -> bool) -> bool {
    if mutate(expr) {
        return true;
    }
    match expr {
        Expr::IntLit { .. }
        | Expr::FloatLit { .. }
        | Expr::BoolLit { .. }
        | Expr::StrLit { .. }
        | Expr::Null { .. }
        | Expr::This { .. }
        | Expr::Var { .. }
        | Expr::StaticField { .. }
        | Expr::New { .. } => false,
        Expr::Field { base, .. } | Expr::Length { base, .. } => walk_expr(base, mutate),
        Expr::Index { base, index, .. } => walk_expr(base, mutate) || walk_expr(index, mutate),
        Expr::Call { recv, args, .. } => {
            recv.as_mut().is_some_and(|r| walk_expr(r, mutate))
                || args.iter_mut().any(|a| walk_expr(a, mutate))
        }
        Expr::NewArray { len, .. } => walk_expr(len, mutate),
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => walk_expr(operand, mutate),
        Expr::Binary { lhs, rhs, .. } => walk_expr(lhs, mutate) || walk_expr(rhs, mutate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    #[test]
    fn bumps_exactly_one_literal() {
        let mut p = parse("class A { void f() { int x = 1; int y = 2; } void g() { int z = 7; } }")
            .expect("parses");
        assert!(bump_first_int_literal(&mut p, "A", "f"));
        let expected =
            parse("class A { void f() { int x = 2; int y = 2; } void g() { int z = 7; } }")
                .expect("parses");
        assert_eq!(p, expected, "only the first literal of A::f changes");
    }

    #[test]
    fn missing_method_or_literal_is_reported() {
        let mut p = parse("class A { void f() { } }").expect("parses");
        assert!(!bump_first_int_literal(&mut p, "A", "nope"));
        assert!(!bump_first_int_literal(&mut p, "B", "f"));
        assert!(!bump_first_int_literal(&mut p, "A", "f"));
    }

    #[test]
    fn general_mutation_handles_bool_only_methods() {
        let src = "class A { void f() { boolean b = true; } }";
        let mut p = parse(src).expect("parses");
        assert!(!bump_first_int_literal(&mut p, "A", "f"));
        assert!(mutate_first_literal(&mut p, "A", "f"));
        assert_ne!(p, parse(src).expect("parses"), "the bool literal flipped");
    }
}
