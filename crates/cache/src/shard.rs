//! Sharded whole-program checking: the `sjava check --shards=N` driver
//! and the `--shard=i/N` worker protocol.
//!
//! The pipeline splits along the diagnostic ownership line that
//! [`crate::IncrementalChecker::check_inner`] already draws:
//!
//! - **Global phases** — lattice construction, call-graph assembly, the
//!   eviction event-loop check, and the shared-location event-loop
//!   check — read whole-program state and run exactly once, in the
//!   driver ([`check_sharded`]).
//! - **Per-method phases** — flow-down typing, aliasing, and
//!   termination — depend only on a method's own body, the class
//!   interface summaries, and its callees' effect summaries, so they
//!   partition. Each worker ([`check_shard`]) checks its owned methods
//!   against a *reduced* [`sjava_analysis::shard::ShardInput`] view and
//!   ships the diagnostics back in an outcome file ([`write_outcome`]).
//!
//! Workers never receive the partition over a wire: the driver and every
//! worker recompute [`plan`] from the same source, and the plan uses only
//! **static** costs (statement weight × lattice height), so all processes
//! agree on ownership without coordination. (Store-recorded timings do
//! feed the intra-process scheduler, but scheduling cannot change which
//! diagnostics exist — only the order work was done in, which the stable
//! sort erases.) The driver merges worker diagnostics with its own global
//! ones and applies the same `(file, span, code)` stable total order as
//! `sjava_core::check_program`, making `--shards=N` byte-identical to the
//! unsharded run for every N.

use crate::IncrementalChecker;
use sjava_analysis::callgraph::{self, MethodRef};
use sjava_core::{checker, shared, CacheStats, CheckReport, Lattices, PhaseTimings};
use sjava_lattice::Fnv64;
use sjava_syntax::ast::Program;
use sjava_syntax::diag::{Diagnostic, Diagnostics};
use sjava_syntax::wire::{self, Reader};
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Instant;

/// Outcome-file magic; distinguishes shard outcomes from store objects.
const MAGIC: &[u8; 10] = b"SJAVASHARD";
/// Outcome-file format version. Version 2 added the red-green
/// revalidation counters (`green`/`red`/`revalidated`) to the cache
/// stats block.
const VERSION: u32 = 2;

/// What one shard worker reports back to the merging driver: the
/// per-method diagnostics of its owned cone, its termination-failure
/// count, and its cache counters (merged into the driver's stats so
/// `--explain`-style output still describes the whole run).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Flow, aliasing, and termination diagnostics of the owned methods.
    pub diagnostics: Vec<Diagnostic>,
    /// Loops in owned methods the termination analysis could not verify.
    pub termination_failures: usize,
    /// Cache counters over the owned method set.
    pub cache: CacheStats,
}

/// Computes the shard partition: SCC-condense the call graph, then cut
/// the condensation into `n` balanced shards by greedy
/// longest-processing-time assignment. Costs are the **static** estimate
/// ([`checker::method_cost`]: statement weight × lattice height) — never
/// measured timings — because every worker recomputes this plan
/// independently and all processes must produce the same partition.
pub fn plan(
    program: &Program,
    cg: &callgraph::CallGraph,
    lattices: &Lattices,
    n: usize,
) -> Vec<BTreeSet<MethodRef>> {
    let whole = sjava_analysis::shard::ShardInput::whole(program);
    cg.cut_shards(n, |mref| checker::method_cost(&whole, lattices, mref))
}

/// Target per-shard budget for [`auto_shards`]: enough measured work to
/// amortize a worker process's startup (parse + lattice build + plan)
/// many times over, so `--shards=auto` never splits a program that a
/// single process finishes in tens of milliseconds.
const TARGET_SHARD_NANOS: u64 = 50_000_000;

/// Picks a shard count from **persisted measured timings**: sums the
/// store-recorded per-method check times ([`ArtifactStore`] `time`
/// objects, keyed by [`crate::fingerprints::name_hash`]) over every
/// declared method, then divides by [`TARGET_SHARD_NANOS`] and clamps to
/// the machine's core count. Methods without a recorded timing
/// contribute zero — and when *no* method has one (cold store, or no
/// store at all), returns 1: with nothing measured there is no evidence
/// that sharding pays for its process overhead.
///
/// This is deliberately *not* part of [`plan`]: the partition must be
/// recomputable by every worker from static costs alone, but the shard
/// *count* is chosen once by the driver, so it can consult measurements.
pub fn auto_shards(program: &Program, store: Option<&crate::ArtifactStore>) -> usize {
    let Some(store) = store else { return 1 };
    let mut total: u64 = 0;
    let mut measured = 0usize;
    for class in &program.classes {
        for method in &class.methods {
            let mref: MethodRef = (class.name.clone(), method.name.clone());
            if let Some(ns) = store.get_time(crate::fingerprints::name_hash(&mref)) {
                total = total.saturating_add(ns);
                measured += 1;
            }
        }
    }
    if measured == 0 {
        return 1;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    (total.div_ceil(TARGET_SHARD_NANOS) as usize).clamp(1, cores)
}

/// Runs one shard worker in-process: recompute the partition, take shard
/// `index` of `n`, and check exactly those methods through `session`
/// (replaying store hits and publishing fresh results when the session is
/// store-backed). Programs without a resolvable event loop yield an empty
/// outcome — the driver's own call-graph pass reports the error.
pub fn check_shard(
    session: &mut IncrementalChecker,
    program: &Program,
    index: usize,
    n: usize,
) -> ShardOutcome {
    let mut scratch = Diagnostics::new();
    let lattices = Lattices::build(program, &mut scratch);
    let mut scratch = Diagnostics::new();
    let Some(cg) = callgraph::build(program, &mut scratch) else {
        return ShardOutcome {
            diagnostics: Vec::new(),
            termination_failures: 0,
            cache: CacheStats::default(),
        };
    };
    let owned = plan(program, &cg, &lattices, n)
        .into_iter()
        .nth(index)
        .unwrap_or_default();
    let report = session.check_inner(program, Some(&owned));
    ShardOutcome {
        diagnostics: report.diagnostics.iter().cloned().collect(),
        termination_failures: report.termination_failures,
        cache: report.cache.unwrap_or_default(),
    }
}

/// Serializes an outcome for `--out=PATH`: magic, version, FNV-64
/// payload checksum, then counters and diagnostics in wire format.
///
/// # Errors
///
/// Propagates I/O failures — the driver treats an unwritable outcome as
/// a failed worker and falls back to checking the shard in-process.
pub fn write_outcome(path: &Path, outcome: &ShardOutcome) -> std::io::Result<()> {
    let mut payload = Vec::new();
    wire::put_u64(&mut payload, outcome.cache.hits as u64);
    wire::put_u64(&mut payload, outcome.cache.misses as u64);
    wire::put_u64(&mut payload, outcome.cache.invalidations as u64);
    wire::put_u64(&mut payload, outcome.cache.green as u64);
    wire::put_u64(&mut payload, outcome.cache.red as u64);
    wire::put_u64(&mut payload, outcome.cache.revalidated as u64);
    wire::put_u64(&mut payload, outcome.termination_failures as u64);
    wire::put_diags(&mut payload, &outcome.diagnostics);
    let mut buf = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    buf.extend_from_slice(MAGIC);
    wire::put_u32(&mut buf, VERSION);
    let mut h = Fnv64::new();
    h.write(&payload);
    wire::put_u64(&mut buf, h.finish());
    buf.extend_from_slice(&payload);
    std::fs::write(path, buf)
}

/// Reads an outcome file back; `None` on any truncation, corruption, or
/// format mismatch (the driver then re-checks that shard in-process
/// rather than merging a partial result).
pub fn read_outcome(path: &Path) -> Option<ShardOutcome> {
    let buf = std::fs::read(path).ok()?;
    let mut r = Reader::new(&buf);
    if r.bytes(MAGIC.len())? != MAGIC || r.u32()? != VERSION {
        return None;
    }
    let expected = r.u64()?;
    let payload = r.rest();
    let mut h = Fnv64::new();
    h.write(payload);
    if h.finish() != expected {
        return None;
    }
    let mut r = Reader::new(payload);
    let hits = r.u64()? as usize;
    let misses = r.u64()? as usize;
    let invalidations = r.u64()? as usize;
    let green = r.u64()? as usize;
    let red = r.u64()? as usize;
    let revalidated = r.u64()? as usize;
    let termination_failures = r.u64()? as usize;
    let diagnostics = r.diags()?;
    r.is_exhausted().then_some(ShardOutcome {
        diagnostics,
        termination_failures,
        cache: CacheStats {
            hits,
            misses,
            invalidations,
            green,
            red,
            revalidated,
        },
    })
}

/// The sharded driver: runs the global phases once, obtains each shard's
/// outcome through `run_shard` (the CLI spawns a `--shard=i/N` worker
/// process; returning `None` falls back to checking that shard
/// in-process through a fresh [`IncrementalChecker::from_env`] session),
/// merges everything, and applies the same stable `(file, span, code)`
/// total order as `sjava_core::check_program` — the merged report is
/// byte-identical to the unsharded one for any shard count.
pub fn check_sharded(
    program: &Program,
    shards: usize,
    mut run_shard: impl FnMut(usize, usize) -> Option<ShardOutcome>,
) -> CheckReport {
    let shards = shards.max(1);
    let mut diags = Diagnostics::new();
    let mut timings = PhaseTimings {
        threads: sjava_par::num_threads(),
        ..PhaseTimings::default()
    };
    let t = Instant::now();
    let lattices = Lattices::build(program, &mut diags);
    timings.lattice_build = t.elapsed();
    let t = Instant::now();
    let cg = callgraph::build(program, &mut diags);
    timings.callgraph = t.elapsed();
    let Some(cg) = cg else {
        diags.sort_stable();
        return CheckReport {
            diagnostics: diags,
            lattices,
            eviction: None,
            termination_failures: 0,
            timings,
            cache: None,
        };
    };
    let t = Instant::now();
    let eviction = sjava_analysis::written::analyze(program, &cg, &mut diags);
    timings.eviction = t.elapsed();
    let t = Instant::now();
    let whole = sjava_analysis::shard::ShardInput::whole(program);
    shared::check_shared(&whole, &lattices, &cg, &mut diags);
    timings.shared = t.elapsed();

    // Per-method phases: one outcome per shard, merged in shard order
    // (the stable sort below erases the arrival order anyway).
    let t = Instant::now();
    let mut termination_failures = 0usize;
    let mut stats = CacheStats::default();
    for index in 0..shards {
        let outcome = run_shard(index, shards).unwrap_or_else(|| {
            let mut session = IncrementalChecker::from_env();
            check_shard(&mut session, program, index, shards)
        });
        for d in outcome.diagnostics {
            diags.push(d);
        }
        termination_failures += outcome.termination_failures;
        stats.hits += outcome.cache.hits;
        stats.misses += outcome.cache.misses;
        stats.invalidations += outcome.cache.invalidations;
        stats.green += outcome.cache.green;
        stats.red += outcome.cache.red;
        stats.revalidated += outcome.cache.revalidated;
    }
    timings.flow_check = t.elapsed();

    diags.sort_stable();
    CheckReport {
        diagnostics: diags,
        lattices,
        eviction: Some(eviction),
        termination_failures,
        timings,
        cache: Some(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    /// A failing program exercising every per-method diagnostic family:
    /// a flow-up assignment plus an unprovable loop.
    const FAILING: &str = r#"@LATTICE("LO<HI") @METHODDEFAULT("V<IN") @THISLOC("V")
        class A {
            @LOC("HI") int hi; @LOC("LO") int lo;
            void main() {
                SSJAVA: while (true) {
                    @LOC("IN") int x = Device.read();
                    hi = x;
                    lo = hi;
                    hi = lo;
                    step(x);
                    while (x != 0) { x = Device.read(); }
                    Out.emit(lo);
                }
            }
            @LATTICE("S<P") @THISLOC("S")
            void step(@LOC("P") int p) { @LOC("S") int y = p; Out.emit(y); }
        }"#;

    #[test]
    fn plan_partitions_every_reachable_method_exactly_once() {
        let p = parse(FAILING).expect("parses");
        let mut d = Diagnostics::new();
        let lattices = Lattices::build(&p, &mut d);
        let cg = callgraph::build(&p, &mut Diagnostics::new()).expect("event loop");
        for n in 1..=4 {
            let shards = plan(&p, &cg, &lattices, n);
            assert_eq!(shards.len(), n);
            let mut seen = BTreeSet::new();
            for shard in &shards {
                for m in shard {
                    assert!(seen.insert(m.clone()), "{m:?} owned twice");
                }
            }
            let reachable: BTreeSet<_> = cg.topo.iter().cloned().collect();
            assert_eq!(seen, reachable, "partition must cover exactly topo");
        }
    }

    #[test]
    fn sharded_report_is_byte_identical_to_unsharded() {
        let p = parse(FAILING).expect("parses");
        let reference = format!("{}", sjava_core::check_program(&p).diagnostics);
        for n in [1usize, 2, 3, 4, 7] {
            let report = check_sharded(&p, n, |_, _| None);
            assert_eq!(
                format!("{}", report.diagnostics),
                reference,
                "--shards={n} must not change output"
            );
            assert_eq!(
                report.termination_failures,
                sjava_core::check_program(&p).termination_failures
            );
        }
    }

    #[test]
    fn outcome_files_round_trip_and_reject_corruption() {
        let p = parse(FAILING).expect("parses");
        let mut session = IncrementalChecker::new();
        let outcome = check_shard(&mut session, &p, 0, 1);
        assert!(!outcome.diagnostics.is_empty());
        let dir = std::env::temp_dir().join("sjava-shard-outcome");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("outcome.bin");
        write_outcome(&path, &outcome).expect("write");
        assert_eq!(read_outcome(&path).expect("read"), outcome);
        let clean = std::fs::read(&path).expect("bytes");
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).expect("truncate");
            assert_eq!(read_outcome(&path), None, "truncation at {cut}");
        }
        let mut flipped = clean.clone();
        flipped[clean.len() / 2] ^= 0x40;
        std::fs::write(&path, &flipped).expect("flip");
        assert_eq!(read_outcome(&path), None, "bit flip must be rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn driver_falls_back_when_a_worker_fails() {
        let p = parse(FAILING).expect("parses");
        let reference = format!("{}", sjava_core::check_program(&p).diagnostics);
        // Worker 0 "succeeds", worker 1 "fails" → in-process fallback.
        let mut session = IncrementalChecker::new();
        let report = check_sharded(&p, 2, |i, n| {
            (i == 0).then(|| check_shard(&mut session, &p, i, n))
        });
        assert_eq!(format!("{}", report.diagnostics), reference);
    }
}
