//! Versioned on-disk persistence for cache entries.
//!
//! The format is a single `cache.bin` file: a magic string, a `u32`
//! version, an FNV-64 checksum of the payload, then length-prefixed,
//! deterministic (key-sorted) encodings of the per-method entry map and
//! the callee-set map. Decoding is strictly bounds-checked **and**
//! checksum-gated: a wrong magic, a version mismatch, a truncated
//! buffer, a flipped payload bit, an out-of-range tag, or an implausible
//! length (see [`MAX_ITEMS`]) aborts the load with zero entries — a
//! corrupt file degrades to cache misses, never to an error or (the
//! checksum's job) to replaying a plausibly-decodable-but-wrong
//! diagnostic. Diagnostics are content the checker trusts verbatim, so
//! "mostly intact" is not good enough: without the checksum a single
//! flipped byte inside a cached message string would decode cleanly and
//! be replayed as a wrong diagnostic under a still-matching fingerprint.
//!
//! `last_fps` is deliberately **not** persisted: invalidation counts are a
//! per-session statistic, while entries are content-addressed and valid
//! forever. Entries are never pruned; the file is rewritten wholesale
//! after each check, so stale fingerprints cost only disk space.

use crate::MethodEntry;
use sjava_analysis::callgraph::MethodRef;
use sjava_analysis::heappath::HeapPath;
use sjava_analysis::written::MethodSummary;
use sjava_core::shared::SharedMember;
use sjava_syntax::codes::Code;
use sjava_syntax::diag::{Diagnostic, Label, Severity, Suggestion};
use sjava_syntax::span::Span;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// File magic; anything else is ignored wholesale.
const MAGIC: &[u8; 10] = b"SJAVACACHE";
/// Format version; bump on any layout change. Version 2 added the
/// structured diagnostic fields (code, file, labels, suggestion);
/// version 3 added the payload checksum. Version-1 and version-2 files
/// fail the version check and degrade to misses.
const VERSION: u32 = 3;
/// Cache file name inside the cache directory.
const FILE_NAME: &str = "cache.bin";
/// Upper bound on any decoded count or string length. Real programs stay
/// far below this; anything larger is treated as corruption rather than
/// letting a flipped length byte drive a multi-gigabyte allocation.
const MAX_ITEMS: u64 = 1 << 22;

/// Path of the cache file inside `dir`.
pub fn cache_file(dir: &Path) -> PathBuf {
    dir.join(FILE_NAME)
}

/// Serializes the caches to `dir/cache.bin`, creating `dir` if needed.
/// Keys are written in sorted order so equal caches produce equal bytes.
///
/// # Errors
///
/// Propagates I/O failures from directory creation or the file write.
pub fn save(
    dir: &Path,
    entries: &HashMap<u64, MethodEntry>,
    callees: &HashMap<u64, BTreeSet<MethodRef>>,
) -> std::io::Result<()> {
    let mut payload: Vec<u8> = Vec::new();

    let mut keys: Vec<u64> = entries.keys().copied().collect();
    keys.sort_unstable();
    put_u64(&mut payload, keys.len() as u64);
    for fp in keys {
        put_u64(&mut payload, fp);
        put_entry(&mut payload, &entries[&fp]);
    }

    let mut keys: Vec<u64> = callees.keys().copied().collect();
    keys.sort_unstable();
    put_u64(&mut payload, keys.len() as u64);
    for key in keys {
        put_u64(&mut payload, key);
        let set = &callees[&key];
        put_u64(&mut payload, set.len() as u64);
        for mref in set {
            put_str(&mut payload, &mref.0);
            put_str(&mut payload, &mref.1);
        }
    }

    let mut buf: Vec<u8> = Vec::with_capacity(payload.len() + MAGIC.len() + 12);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, checksum(&payload));
    buf.extend_from_slice(&payload);

    std::fs::create_dir_all(dir)?;
    std::fs::write(cache_file(dir), buf)
}

/// FNV-64 digest of the payload bytes, stored in the header and verified
/// before any decoding happens.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = sjava_lattice::Fnv64::new();
    h.write(payload);
    h.finish()
}

/// Loads the entries of `dir/cache.bin`. A missing file, foreign magic,
/// version mismatch, checksum mismatch (truncation or any flipped
/// payload bit), or corruption mid-stream all degrade to zero entries —
/// never an error, and never a partially-trusted payload: the checksum
/// is verified over the full payload before anything is decoded.
pub fn load(dir: &Path) -> (HashMap<u64, MethodEntry>, HashMap<u64, BTreeSet<MethodRef>>) {
    let mut entries = HashMap::new();
    let mut callees = HashMap::new();
    let Ok(buf) = std::fs::read(cache_file(dir)) else {
        return (entries, callees);
    };
    let mut r = Reader { buf: &buf, pos: 0 };
    // On any decode failure the closure bails with `None`; the maps it
    // was filling are discarded wholesale below, so a file the checksum
    // somehow vouched for but that still fails a bounds check cannot
    // leak a half-decoded state.
    let complete = (|| -> Option<()> {
        if r.bytes(MAGIC.len())? != MAGIC || r.u32()? != VERSION {
            return None;
        }
        let expected = r.u64()?;
        if checksum(&buf[r.pos..]) != expected {
            return None;
        }
        let n = r.count()?;
        for _ in 0..n {
            let fp = r.u64()?;
            let entry = r.entry()?;
            entries.insert(fp, entry);
        }
        let n = r.count()?;
        for _ in 0..n {
            let key = r.u64()?;
            let m = r.count()?;
            let mut set = BTreeSet::new();
            for _ in 0..m {
                set.insert((r.string()?, r.string()?));
            }
            callees.insert(key, set);
        }
        Some(())
    })()
    .is_some();
    if !complete {
        entries.clear();
        callees.clear();
    }
    (entries, callees)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

fn put_span(buf: &mut Vec<u8>, span: Span) {
    put_u32(buf, span.start);
    put_u32(buf, span.end);
}

fn put_diags(buf: &mut Vec<u8>, diags: &[Diagnostic]) {
    put_u64(buf, diags.len() as u64);
    for d in diags {
        buf.push(match d.severity {
            Severity::Warning => 0,
            Severity::Error => 1,
        });
        buf.extend_from_slice(&d.code.number().to_le_bytes());
        put_str(buf, &d.message);
        put_span(buf, d.span);
        put_opt_str(buf, &d.file);
        put_u64(buf, d.labels.len() as u64);
        for l in &d.labels {
            put_span(buf, l.span);
            put_str(buf, &l.message);
            put_opt_str(buf, &l.file);
        }
        match &d.suggestion {
            None => buf.push(0),
            Some(s) => {
                buf.push(1);
                put_span(buf, s.span);
                put_str(buf, &s.replacement);
                put_str(buf, &s.message);
            }
        }
        put_u64(buf, d.notes.len() as u64);
        for n in &d.notes {
            put_str(buf, n);
        }
    }
}

fn put_paths(buf: &mut Vec<u8>, paths: &BTreeSet<HeapPath>) {
    put_u64(buf, paths.len() as u64);
    for p in paths {
        put_u64(buf, p.0.len() as u64);
        for seg in &p.0 {
            put_str(buf, seg);
        }
    }
}

fn put_members(buf: &mut Vec<u8>, members: &BTreeSet<SharedMember>) {
    put_u64(buf, members.len() as u64);
    for (class, field) in members {
        put_str(buf, class);
        put_str(buf, field);
    }
}

fn put_entry(buf: &mut Vec<u8>, e: &MethodEntry) {
    put_paths(buf, &e.summary.reads);
    put_paths(buf, &e.summary.may_writes);
    put_paths(buf, &e.summary.must_writes);
    put_diags(buf, &e.flow);
    put_diags(buf, &e.alias);
    buf.push(e.shared_present as u8);
    put_members(buf, &e.shared_clears);
    put_members(buf, &e.shared_reads);
    put_u64(buf, e.term_failures as u64);
    put_diags(buf, &e.term);
}

/// Bounds-checked cursor over the raw cache bytes; every accessor returns
/// `None` on truncation or implausible data so the loader can bail.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    /// A length/count, rejected when implausibly large.
    fn count(&mut self) -> Option<u64> {
        let n = self.u64()?;
        (n <= MAX_ITEMS).then_some(n)
    }

    fn string(&mut self) -> Option<String> {
        let n = self.count()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }

    fn span(&mut self) -> Option<Span> {
        Some(Span {
            start: self.u32()?,
            end: self.u32()?,
        })
    }

    fn opt_string(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.string()?)),
            _ => None,
        }
    }

    fn diags(&mut self) -> Option<Vec<Diagnostic>> {
        let n = self.count()?;
        let mut out = Vec::new();
        for _ in 0..n {
            let severity = match self.u8()? {
                0 => Severity::Warning,
                1 => Severity::Error,
                _ => return None,
            };
            // An unregistered code number means a foreign or future
            // format: bail, degrading the entry to a miss.
            let code = Code::from_number(self.u16()?)?;
            let message = self.string()?;
            let span = self.span()?;
            let file = self.opt_string()?;
            let labels_n = self.count()?;
            let mut labels = Vec::new();
            for _ in 0..labels_n {
                labels.push(Label {
                    span: self.span()?,
                    message: self.string()?,
                    file: self.opt_string()?,
                });
            }
            let suggestion = match self.u8()? {
                0 => None,
                1 => Some(Suggestion {
                    span: self.span()?,
                    replacement: self.string()?,
                    message: self.string()?,
                }),
                _ => return None,
            };
            let notes_n = self.count()?;
            let mut notes = Vec::new();
            for _ in 0..notes_n {
                notes.push(self.string()?);
            }
            out.push(Diagnostic {
                severity,
                code,
                message,
                span,
                file,
                labels,
                suggestion,
                notes,
            });
        }
        Some(out)
    }

    fn paths(&mut self) -> Option<BTreeSet<HeapPath>> {
        let n = self.count()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            let segs = self.count()?;
            let mut path = Vec::new();
            for _ in 0..segs {
                path.push(self.string()?);
            }
            out.insert(HeapPath(path));
        }
        Some(out)
    }

    fn members(&mut self) -> Option<BTreeSet<SharedMember>> {
        let n = self.count()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert((self.string()?, self.string()?));
        }
        Some(out)
    }

    fn entry(&mut self) -> Option<MethodEntry> {
        Some(MethodEntry {
            summary: MethodSummary {
                reads: self.paths()?,
                may_writes: self.paths()?,
                must_writes: self.paths()?,
            },
            flow: self.diags()?,
            alias: self.diags()?,
            shared_present: match self.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
            shared_clears: self.members()?,
            shared_reads: self.members()?,
            term_failures: self.u64()? as usize,
            term: self.diags()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> MethodEntry {
        MethodEntry {
            summary: MethodSummary {
                reads: [HeapPath(vec!["a".into(), "b".into()])].into(),
                may_writes: [HeapPath::root("x")].into(),
                must_writes: BTreeSet::new(),
            },
            flow: vec![
                sjava_syntax::diag::Diag::flow_up("flow violation", Span::new(3, 9))
                    .with_note("note")
                    .with_label(Span::new(0, 2), "lattice declared here")
                    .with_suggestion(Span::new(3, 3), "fix ", "insert fix"),
            ],
            alias: vec![],
            shared_present: true,
            shared_clears: [("C".to_string(), "f".to_string())].into(),
            shared_reads: BTreeSet::new(),
            term_failures: 2,
            term: vec![sjava_syntax::diag::Diag::unprovable_loop(
                "loop may not terminate",
                Span::new(10, 20),
            )],
        }
    }

    #[test]
    fn round_trips_entries_and_callees() {
        let dir = std::env::temp_dir().join("sjava-cache-disk-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut entries = HashMap::new();
        entries.insert(42u64, sample_entry());
        entries.insert(7u64, MethodEntry::default());
        let mut callees = HashMap::new();
        callees.insert(9u64, BTreeSet::from([("A".to_string(), "f".to_string())]));
        save(&dir, &entries, &callees).expect("save");
        let (e2, c2) = load(&dir);
        assert_eq!(entries, e2);
        assert_eq!(callees, c2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_degrades_to_misses() {
        let dir = std::env::temp_dir().join("sjava-cache-disk-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut entries = HashMap::new();
        entries.insert(1u64, sample_entry());
        save(&dir, &entries, &HashMap::new()).expect("save");
        // Truncate the file mid-entry: the checksum no longer matches,
        // so the loader must degrade to zero entries.
        let path = cache_file(&dir);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let (e2, c2) = load(&dir);
        assert!(e2.is_empty(), "truncated entry must not be resurrected");
        assert!(c2.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_bit_degrades_to_misses() {
        // A flipped bit inside a cached diagnostic message would decode
        // cleanly under the pre-checksum format and be replayed as a
        // *wrong* diagnostic; the checksum must reject every such file.
        let dir = std::env::temp_dir().join("sjava-cache-disk-bitflip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut entries = HashMap::new();
        entries.insert(1u64, sample_entry());
        save(&dir, &entries, &HashMap::new()).expect("save");
        let path = cache_file(&dir);
        let clean = std::fs::read(&path).expect("read");
        let header = MAGIC.len() + 4 + 8;
        for pos in header..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x10;
            std::fs::write(&path, &corrupt).expect("write");
            let (e, c) = load(&dir);
            assert!(
                e.is_empty() && c.is_empty(),
                "flipped byte at {pos} must invalidate the whole file"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_magic_or_version_is_ignored() {
        let dir = std::env::temp_dir().join("sjava-cache-disk-magic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(cache_file(&dir), b"NOTACACHEFILE").expect("write");
        let (e, c) = load(&dir);
        assert!(e.is_empty() && c.is_empty());
        // Right magic, wrong version.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(VERSION + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(cache_file(&dir), buf).expect("write");
        let (e, c) = load(&dir);
        assert!(e.is_empty() && c.is_empty());
        // Pre-checksum version-1 and version-2 files degrade to misses.
        for old in [1u32, 2] {
            let mut buf = MAGIC.to_vec();
            buf.extend_from_slice(&old.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes());
            std::fs::write(cache_file(&dir), buf).expect("write");
            let (e, c) = load(&dir);
            assert!(e.is_empty() && c.is_empty(), "version {old} must miss");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
