//! Cache correctness: an incremental re-check must be byte-identical to a
//! cold full check, for every benchmark application and for every kind of
//! edit — method bodies (fine-grained reuse), lattice annotations
//! (whole-program invalidation), and corrupt on-disk entries (silent
//! misses).

use sjava_cache::edit::mutate_first_literal;
use sjava_cache::IncrementalChecker;
use sjava_core::{check_program, CheckReport};
use sjava_syntax::ast::Program;

fn apps() -> Vec<(&'static str, String)> {
    vec![
        ("windsensor", sjava_apps::windsensor::SOURCE.to_string()),
        ("eyetrack", sjava_apps::eyetrack::SOURCE.to_string()),
        ("sumobot", sjava_apps::sumobot::SOURCE.to_string()),
        ("mp3dec", sjava_apps::mp3dec::source().to_string()),
        ("weather", sjava_apps::weather::SOURCE.to_string()),
    ]
}

/// Mutates the first literal anywhere in the program (first class, first
/// method with one, in source order). Panics if none exists.
fn bump_somewhere(program: &mut Program) -> (String, String) {
    let targets: Vec<(String, String)> = program
        .classes
        .iter()
        .flat_map(|c| c.methods.iter().map(|m| (c.name.clone(), m.name.clone())))
        .collect();
    for (class, method) in targets {
        if mutate_first_literal(program, &class, &method) {
            return (class, method);
        }
    }
    panic!("no literal to mutate");
}

/// The parts of a report that must match a cold check byte-for-byte.
fn digest(report: &CheckReport) -> (String, usize, bool) {
    (
        format!("{}", report.diagnostics),
        report.termination_failures,
        report.eviction.as_ref().is_some_and(|e| e.is_ok()),
    )
}

#[test]
fn warm_recheck_replays_everything() {
    for (name, source) in apps() {
        let program = sjava_syntax::parse(&source).unwrap_or_else(|d| panic!("{name}: {d}"));
        let mut session = IncrementalChecker::new();
        let cold = session.check(&program);
        let warm = session.check(&program);
        assert_eq!(digest(&cold), digest(&warm), "{name}: warm check differs");
        let stats = warm.cache.expect("incremental check reports stats");
        assert_eq!(stats.misses, 0, "{name}: warm check must not recompute");
        assert!(stats.hits > 0, "{name}: warm check must replay methods");
        assert_eq!(stats.invalidations, 0, "{name}: nothing changed");
    }
}

#[test]
fn method_edit_matches_full_recheck() {
    for (name, source) in apps() {
        let mut program = sjava_syntax::parse(&source).unwrap_or_else(|d| panic!("{name}: {d}"));
        let mut session = IncrementalChecker::new();
        session.check(&program);

        let (class, method) = bump_somewhere(&mut program);
        let incremental = session.check(&program);
        let full = check_program(&program);
        assert_eq!(
            digest(&incremental),
            digest(&full),
            "{name}: incremental check after editing {class}::{method} diverges from full check"
        );
    }
}

#[test]
fn edit_in_reachable_method_dirties_only_its_cone() {
    // windsensor's event loop: mutate a method the call graph reaches and
    // confirm the re-check recomputes strictly fewer methods than a cold
    // run, while unrelated entries replay.
    let source = sjava_apps::windsensor::SOURCE;
    let mut program = sjava_syntax::parse(source).expect("parses");
    let mut session = IncrementalChecker::new();
    let cold = session.check(&program);
    let total = cold.cache.expect("stats").misses;
    assert!(total > 1, "windsensor has more than one reachable method");

    bump_somewhere(&mut program);
    let warm = session.check(&program);
    let stats = warm.cache.expect("stats");
    // The edit either hit an unreachable method (0 invalidations, full
    // replay) or a reachable one (its cone recomputes). Either way the
    // re-check must not recompute the whole program.
    assert!(
        stats.misses < total,
        "1-method edit recomputed {}/{} methods",
        stats.misses,
        total
    );
    assert_eq!(stats.hits + stats.misses, total);
}

#[test]
fn lattice_edit_invalidates_every_method() {
    let base = "@LATTICE(\"LO<HI\") class A {
        @LOC(\"HI\") static int h;
        void main() { SSJAVA: while (true) { f(); } }
        void f() { int x = 1; }
    }";
    let edited = base.replace("LO<HI", "MID<HI,LO<MID");
    let p1 = sjava_syntax::parse(base).expect("parses");
    let p2 = sjava_syntax::parse(&edited).expect("parses");

    let mut session = IncrementalChecker::new();
    let cold = session.check(&p1);
    let total = cold.cache.expect("stats").misses;
    let after = session.check(&p2);
    let stats = after.cache.expect("stats");
    assert_eq!(stats.hits, 0, "lattice edit must invalidate every entry");
    assert_eq!(stats.misses, total, "every method recomputes");
    assert_eq!(
        stats.invalidations, total,
        "every previously-seen method counts as invalidated"
    );
    assert_eq!(digest(&after), digest(&check_program(&p2)));
}

#[test]
fn corrupt_disk_cache_degrades_to_misses() {
    let dir = std::env::temp_dir().join("sjava-cache-correctness-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let program = sjava_syntax::parse(sjava_apps::eyetrack::SOURCE).expect("parses");

    // Populate the artifact store, then destroy the tail of every
    // object. The paper app is below the persistence weight threshold,
    // so force the write.
    let mut writer = IncrementalChecker::with_dir(&dir);
    writer.set_persist_min(0);
    let cold = writer.check(&program);
    let root = writer
        .store()
        .expect("store opened")
        .objects_root()
        .to_path_buf();
    drop(writer);
    let mut mangled = 0usize;
    for fanout in std::fs::read_dir(&root).expect("objects root").flatten() {
        for f in std::fs::read_dir(fanout.path()).expect("fanout").flatten() {
            let mut bytes = std::fs::read(f.path()).expect("object");
            bytes.truncate((bytes.len() / 3).max(16));
            std::fs::write(f.path(), &bytes).expect("corrupt");
            mangled += 1;
        }
    }
    assert!(mangled > 0, "the check must have persisted objects");

    // A fresh session over the corrupt store must still produce the
    // exact cold-check output; corrupt objects are silent misses.
    let mut reader = IncrementalChecker::with_dir(&dir);
    let warm = reader.check(&program);
    assert_eq!(digest(&cold), digest(&warm), "corrupt cache changed output");
    let stats = warm.cache.expect("stats");
    assert!(
        stats.misses > 0,
        "truncation must have destroyed at least one entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_round_trip_serves_warm_hits_across_sessions() {
    let dir = std::env::temp_dir().join("sjava-cache-correctness-roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let program = sjava_syntax::parse(sjava_apps::sumobot::SOURCE).expect("parses");

    let mut first = IncrementalChecker::with_dir(&dir);
    first.set_persist_min(0);
    let cold = first.check(&program);
    assert!(cold.cache.expect("stats").misses > 0);
    drop(first);

    // Store objects are probed lazily — the fresh session holds nothing
    // in memory until the check fetches per-fingerprint artifacts.
    let mut second = IncrementalChecker::with_dir(&dir);
    assert!(second.is_empty(), "store probing is lazy, not a bulk load");
    let warm = second.check(&program);
    assert_eq!(digest(&cold), digest(&warm));
    let stats = warm.cache.expect("stats");
    assert_eq!(
        stats.misses, 0,
        "store-backed entries must serve all methods"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_programs_skip_the_disk_round_trip() {
    // A paper-sized app is cheaper to re-check than to round-trip through
    // the store, so a directory-backed session must not publish objects
    // for it — those writes are exactly what made warm checks slower than
    // cold ones.
    let dir = std::env::temp_dir().join("sjava-cache-correctness-skip");
    let _ = std::fs::remove_dir_all(&dir);
    let program = sjava_syntax::parse(sjava_apps::windsensor::SOURCE).expect("parses");

    let mut session = IncrementalChecker::with_dir(&dir);
    let first = session.check(&program);
    assert_eq!(
        session.store().expect("store opened").object_count(),
        0,
        "windsensor is below the persistence threshold; no objects expected"
    );
    // The in-memory session still replays everything.
    let warm = session.check(&program);
    assert_eq!(digest(&first), digest(&warm));
    assert_eq!(warm.cache.expect("stats").misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reverting_an_edit_hits_the_old_entries() {
    let source = sjava_apps::windsensor::SOURCE;
    let original = sjava_syntax::parse(source).expect("parses");
    let mut edited = original.clone();
    bump_somewhere(&mut edited);

    let mut session = IncrementalChecker::new();
    session.check(&original);
    session.check(&edited);
    // Content addressing: the original fingerprints still have entries.
    let back = session.check(&original);
    let stats = back.cache.expect("stats");
    assert_eq!(stats.misses, 0, "reverted program must be fully cached");
    assert_eq!(digest(&back), digest(&check_program(&original)));
}
