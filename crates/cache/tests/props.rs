//! Property tests for fine-grained invalidation.
//!
//! On random multi-class programs with random edits (body literal,
//! method-header span, appended field), the incremental session must
//! uphold two judgments against independent oracles:
//!
//! 1. **Soundness of the re-check set**: the set of methods red-green
//!    revalidation actually re-analyzes ([`IncrementalChecker::last_rechecked`])
//!    is a *subset* of the coarse fingerprint-dirty set — the methods
//!    whose old-scheme fingerprint ([`fingerprints::method_fps`], which
//!    folds the whole-program interface hash and transitive callee
//!    fingerprints) changed. Fine-grained invalidation may legally
//!    re-check *fewer* methods than the coarse cutoff, never more.
//! 2. **Byte identity**: the incremental report after the edit matches
//!    a cold [`check_program`] of the edited AST exactly — same
//!    diagnostics text, same termination-failure count, same eviction
//!    verdict.
//!
//! Programs are generated in the stress-corpus shape (worker classes
//! with field state and an intra-class call chain, dispatched from an
//! `SSJAVA:` event loop) but without lattice annotations, so both clean
//! and diagnostic-carrying programs flow through the cache.

use proptest::prelude::*;
use sjava_cache::edit::{add_unused_field, mutate_first_literal, shift_method_span};
use sjava_cache::fingerprints::{iface_hash, method_fps};
use sjava_cache::IncrementalChecker;
use sjava_core::{check_program, CheckReport};
use sjava_syntax::ast::Program;
use sjava_syntax::diag::Diagnostics;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// The parts of a report that must match a cold check byte-for-byte.
fn digest(report: &CheckReport) -> (String, usize, bool) {
    (
        format!("{}", report.diagnostics),
        report.termination_failures,
        report.eviction.as_ref().is_some_and(|e| e.is_ok()),
    )
}

/// Generates an unannotated worker-pool program: `classes` classes of
/// `methods` chained methods over `fields` int fields each, plus a
/// `StressMain` event loop dispatching one device read per iteration to
/// every worker. `seed` perturbs the literal constants so distinct
/// cases have distinct method fingerprints.
fn gen_program(classes: usize, methods: usize, fields: usize, seed: u64) -> String {
    let mut lit = seed;
    let mut next = move || {
        lit = lit.wrapping_mul(6364136223846793005).wrapping_add(1);
        (lit >> 33) % 97 + 1
    };
    let mut out = String::new();
    for ci in 0..classes {
        writeln!(out, "class W{ci} {{").unwrap();
        for fi in 0..fields {
            writeln!(out, "    int f{fi};").unwrap();
        }
        for mj in 0..methods {
            writeln!(out, "    int m{mj}(int p) {{").unwrap();
            writeln!(out, "        int t = p * {} + {};", next(), next()).unwrap();
            for fi in 0..fields {
                writeln!(out, "        f{fi} = t + {fi};").unwrap();
            }
            writeln!(
                out,
                "        if (p > {}) {{ f0 = t + {}; }} else {{ f0 = t - {}; }}",
                next(),
                next(),
                next()
            )
            .unwrap();
            if mj + 1 < methods {
                writeln!(out, "        t = t + m{}(t);", mj + 1).unwrap();
            }
            writeln!(out, "        return t + f0;").unwrap();
            writeln!(out, "    }}").unwrap();
        }
        writeln!(out, "}}").unwrap();
    }
    writeln!(out, "class StressMain {{").unwrap();
    for ci in 0..classes {
        writeln!(out, "    W{ci} w{ci};").unwrap();
    }
    writeln!(out, "    void main() {{").unwrap();
    for ci in 0..classes {
        writeln!(out, "        w{ci} = new W{ci}();").unwrap();
    }
    writeln!(out, "        SSJAVA: while (true) {{").unwrap();
    writeln!(out, "            int x = Device.read();").unwrap();
    let emit: Vec<String> = (0..classes).map(|ci| format!("w{ci}.m0(x)")).collect();
    writeln!(out, "            Out.emit({});", emit.join(" + ")).unwrap();
    writeln!(out, "        }}").unwrap();
    writeln!(out, "    }}").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Applies one random edit to `program`. `kind` selects the edit shape
/// (body literal / header span / appended field) and `pick` selects the
/// target class and method; both wrap modulo the actual declaration
/// counts so every drawn value lands on a real target. Returns a label
/// for failure messages, or `None` if no edit shape applied (a field-free
/// class rejecting `add_unused_field` falls back to the other shapes).
fn apply_edit(program: &mut Program, kind: usize, pick: usize) -> Option<String> {
    let targets: Vec<(String, String)> = program
        .classes
        .iter()
        .flat_map(|c| c.methods.iter().map(|m| (c.name.clone(), m.name.clone())))
        .collect();
    if targets.is_empty() {
        return None;
    }
    let (class, method) = targets[pick % targets.len()].clone();
    for attempt in 0..3 {
        match (kind + attempt) % 3 {
            0 if mutate_first_literal(program, &class, &method) => {
                return Some(format!("literal {class}::{method}"));
            }
            1 if shift_method_span(program, &class, &method) => {
                return Some(format!("span {class}::{method}"));
            }
            2 if add_unused_field(program, &class) => {
                return Some(format!("field {class}"));
            }
            _ => {}
        }
    }
    None
}

/// The coarse fingerprint-dirty set: every method whose old-scheme
/// fingerprint (interface hash x local fingerprint x transitive callee
/// fingerprints) differs between `before` and `after`, plus methods
/// newly reachable. Returns `None` when either call graph fails to
/// build (the cache degrades to a full re-check there, so the subset
/// property is vacuous).
fn coarse_dirty(before: &Program, after: &Program) -> Option<BTreeSet<(String, String)>> {
    let mut d = Diagnostics::new();
    let cg_before = sjava_analysis::callgraph::build(before, &mut d)?;
    let cg_after = sjava_analysis::callgraph::build(after, &mut d)?;
    let fps_before = method_fps(before, &cg_before, iface_hash(before), &mut HashMap::new());
    let fps_after = method_fps(after, &cg_after, iface_hash(after), &mut HashMap::new());
    Some(
        fps_after
            .into_iter()
            .filter(|(mref, fp)| fps_before.get(mref) != Some(fp))
            .map(|(mref, _)| mref)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any random edit: the rechecked set is contained in the
    /// coarse fingerprint-dirty set, and the incremental report is
    /// byte-identical to a cold check of the edited program.
    #[test]
    fn recheck_set_is_sound_and_output_is_exact(
        classes in 1usize..4,
        methods in 1usize..4,
        fields in 1usize..4,
        seed in any::<u64>(),
        kind in 0usize..3,
        pick in any::<usize>(),
    ) {
        let src = gen_program(classes, methods, fields, seed);
        let pristine = sjava_syntax::parse(&src).expect("generated source parses");
        let mut edited = pristine.clone();
        let Some(label) = apply_edit(&mut edited, kind, pick) else {
            return Ok(());
        };

        let mut session = IncrementalChecker::new();
        session.check(&pristine);
        let incremental = session.check(&edited);
        let cold = check_program(&edited);
        prop_assert_eq!(
            digest(&incremental),
            digest(&cold),
            "incremental output diverges from cold check after edit [{}] on:\n{}",
            label,
            src
        );

        if let Some(dirty) = coarse_dirty(&pristine, &edited) {
            let rechecked: BTreeSet<(String, String)> =
                session.last_rechecked().iter().cloned().collect();
            prop_assert!(
                rechecked.is_subset(&dirty),
                "rechecked set {:?} escapes the coarse fingerprint-dirty set {:?} \
                 after edit [{}] on:\n{}",
                rechecked,
                dirty,
                label,
                src
            );
        }
    }

    /// A no-op "edit" (re-checking the identical AST) re-checks nothing:
    /// the fine-grained scheme never regresses below full reuse.
    #[test]
    fn identical_recheck_replays_everything(
        classes in 1usize..4,
        methods in 1usize..4,
        fields in 1usize..4,
        seed in any::<u64>(),
    ) {
        let src = gen_program(classes, methods, fields, seed);
        let program = sjava_syntax::parse(&src).expect("generated source parses");
        let mut session = IncrementalChecker::new();
        let cold = session.check(&program);
        let warm = session.check(&program);
        prop_assert_eq!(digest(&cold), digest(&warm));
        prop_assert!(
            session.last_rechecked().is_empty(),
            "warm identical re-check must replay every method"
        );
    }
}
