//! Artifact-store corruption tolerance: every mangled object file —
//! truncated at any length, written by a different format version, or
//! with arbitrary payload bits flipped — must degrade to cache *misses*.
//! A corrupt object may never panic the loader, and (the reason every
//! object carries a checksum) may never be decoded into
//! plausible-but-wrong entries that a later check would replay as wrong
//! diagnostics under a still-matching fingerprint. Old monolithic
//! `cache.bin` files (store formats v3 and earlier) must likewise degrade
//! to clean misses, untouched.
//!
//! The probe program fails the checker on purpose: wrong replay of its
//! error list would be visible in the diagnostic bytes, so "diagnostics
//! byte-identical to a cache-less check" proves both halves (no panic,
//! no wrong replay) at once.

use sjava_cache::IncrementalChecker;
use std::path::{Path, PathBuf};

/// A deliberately failing program (one `@LOC` stripped from a clean
/// synthetic corpus would also do, but a hand-rolled probe keeps this
/// crate's dev-dependencies flat): flow-up plus an unprovable loop, so
/// the cached entries carry several error diagnostics with labels.
const PROBE: &str = r#"@LATTICE("LO<HI") @METHODDEFAULT("V<IN") @THISLOC("V")
class A {
    @LOC("HI") int hi; @LOC("LO") int lo;
    void main() {
        SSJAVA: while (true) {
            @LOC("IN") int x = Device.read();
            hi = x;
            lo = hi;
            hi = lo;
            while (x != 0) { x = Device.read(); }
            Out.emit(lo);
        }
    }
    @LATTICE("S<P") @THISLOC("S") @RETURNLOC("S")
    int helper(@LOC("P") int p) {
        @LOC("S") int r = p + 1;
        return r;
    }
}"#;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sjava-cache-corruption-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders the probe's diagnostics through a fresh directory-backed
/// session, asserting it does not panic whatever the store holds.
fn render_via_dir(dir: &Path) -> String {
    let mut session = IncrementalChecker::with_dir(dir);
    session.set_persist_min(0);
    let report = session.check_source(PROBE).expect("probe parses");
    format!("{}", report.diagnostics)
}

/// Populates the store with the probe's artifacts and returns every
/// `.entry` object path (the payloads a wrong replay would surface from).
fn seeded_entries(dir: &Path) -> Vec<PathBuf> {
    let mut session = IncrementalChecker::with_dir(dir);
    session.set_persist_min(0);
    let report = session.check_source(PROBE).expect("probe parses");
    assert!(
        report.diagnostics.has_errors(),
        "probe must fail so wrong replay would be visible"
    );
    let root = session
        .store()
        .expect("store opened")
        .objects_root()
        .to_path_buf();
    let mut entries = Vec::new();
    for fanout in std::fs::read_dir(root).expect("objects root").flatten() {
        for f in std::fs::read_dir(fanout.path())
            .expect("fanout dir")
            .flatten()
        {
            if f.path().extension().is_some_and(|e| e == "entry") {
                entries.push(f.path());
            }
        }
    }
    entries.sort();
    assert!(!entries.is_empty(), "probe must persist entry objects");
    entries
}

fn fresh_rendering() -> String {
    let report = sjava_core::check_source(PROBE).expect("probe parses");
    format!("{}", report.diagnostics)
}

#[test]
fn truncated_objects_degrade_to_misses() {
    let dir = scratch_dir("truncate");
    let entries = seeded_entries(&dir);
    let expected = fresh_rendering();
    let path = &entries[0];
    let clean = std::fs::read(path).expect("object bytes");
    // Every truncation length in a coarse sweep plus the interesting
    // boundaries (empty file, inside magic, inside version, inside
    // checksum, one byte short).
    let mut cuts: Vec<usize> = (0..clean.len()).step_by(13).collect();
    cuts.extend([0, 5, 12, 17, 21, clean.len().saturating_sub(1)]);
    for cut in cuts {
        std::fs::write(path, &clean[..cut]).expect("truncate");
        assert_eq!(
            render_via_dir(&dir),
            expected,
            "truncation at {cut} changed the diagnostics"
        );
        // The session deletes verifiably-corrupt objects and republishes;
        // restore the truncated state from scratch for the next cut.
        std::fs::write(path, &clean).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_format_versions_degrade_to_misses() {
    let dir = scratch_dir("versions");
    let entries = seeded_entries(&dir);
    let expected = fresh_rendering();
    for version in [0u32, 1, 2, 3, 4, 6, u32::MAX] {
        // Same payloads, forged version fields: every object must be
        // ignored wholesale.
        for path in &entries {
            let mut forged = std::fs::read(path).unwrap_or_default();
            if forged.len() >= 14 {
                forged[10..14].copy_from_slice(&version.to_le_bytes());
            }
            std::fs::write(path, &forged).expect("write forged version");
        }
        let mut session = IncrementalChecker::with_dir(&dir);
        session.set_persist_min(0);
        let report = session.check_source(PROBE).expect("probe parses");
        assert_eq!(
            format!("{}", report.diagnostics),
            expected,
            "version {version} changed the diagnostics"
        );
        assert_eq!(
            report.cache.expect("incremental").hits,
            0,
            "version {version} must produce only misses"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_payloads_degrade_to_misses() {
    let dir = scratch_dir("bitflip");
    let entries = seeded_entries(&dir);
    let expected = fresh_rendering();
    let path = &entries[entries.len() / 2];
    let clean = std::fs::read(path).expect("object bytes");
    let header = 10 + 4 + 8; // magic + version + checksum
                             // Flip one bit at a stride of positions across the payload (and a
                             // few inside the checksum itself): the loader must reject the object
                             // and the session must re-analyze that method, byte-identically.
    let mut positions: Vec<usize> = (header..clean.len()).step_by(7).collect();
    positions.extend(10 + 4..header); // corrupt the stored checksum too
    for (i, pos) in positions.into_iter().enumerate() {
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 1 << (i % 8);
        std::fs::write(path, &corrupt).expect("write corrupt");
        assert_eq!(
            render_via_dir(&dir),
            expected,
            "flipped bit at byte {pos} changed the diagnostics"
        );
        std::fs::write(path, &clean).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_oversized_counts_never_panic() {
    let dir = scratch_dir("garbage");
    let entries = seeded_entries(&dir);
    let expected = fresh_rendering();
    let path = &entries[0];
    // Assorted hostile objects: random-ish noise, a giant count directly
    // after a forged (matching-checksum) v4 header, and an empty file.
    let noise: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let mut forged = b"SJAVACACHE".to_vec();
    forged.extend_from_slice(&4u32.to_le_bytes());
    let payload = u64::MAX.to_le_bytes(); // heap-path count ~1.8e19
    let mut h = {
        // Recompute the real checksum so decoding genuinely begins and
        // the MAX_ITEMS bound is what stops it.
        let mut h = 0xcbf29ce484222325u64;
        for &b in &payload {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    .to_le_bytes()
    .to_vec();
    forged.append(&mut h);
    forged.extend_from_slice(&payload);
    for (tag, bytes) in [
        ("noise", noise.as_slice()),
        ("forged-count", forged.as_slice()),
        ("empty", &[][..]),
    ] {
        std::fs::write(path, bytes).expect("write");
        assert_eq!(
            render_via_dir(&dir),
            expected,
            "{tag} object changed the diagnostics"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v3_monolithic_cache_degrades_to_clean_misses() {
    // The explicit downgrade path: a cache directory populated by the old
    // monolithic format (v3 and earlier serialized the whole session into
    // one `cache.bin`). The v4 store lives under `v4/objects/` and never
    // opens the old file, so the session starts from clean misses — no
    // error, no wrong replay — and leaves the old bytes alone.
    let dir = scratch_dir("v3-downgrade");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let old = dir.join("cache.bin");
    let mut v3 = b"SJAVACACHE".to_vec();
    v3.extend_from_slice(&3u32.to_le_bytes());
    v3.extend_from_slice(&[0x5a; 256]); // checksum + stale v3 entries
    std::fs::write(&old, &v3).expect("write v3 file");

    let mut session = IncrementalChecker::with_dir(&dir);
    session.set_persist_min(0);
    let report = session.check_source(PROBE).expect("probe parses");
    assert_eq!(format!("{}", report.diagnostics), fresh_rendering());
    let stats = report.cache.expect("incremental");
    assert_eq!(stats.hits, 0, "v3 contents must never be read");
    assert!(stats.misses > 0);
    assert_eq!(
        std::fs::read(&old).expect("still present"),
        v3,
        "the old-format file must be left untouched"
    );

    // And the store it *did* open works: a second session over the same
    // directory serves everything warm.
    let mut second = IncrementalChecker::with_dir(&dir);
    second.set_persist_min(0);
    let warm = second.check_source(PROBE).expect("probe parses");
    assert_eq!(format!("{}", warm.diagnostics), fresh_rendering());
    assert_eq!(warm.cache.expect("incremental").misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
