//! On-disk cache corruption tolerance: every mangled `cache.bin` —
//! truncated at any length, written by an older format version, or with
//! arbitrary payload bits flipped — must degrade to cache *misses*. A
//! corrupt file may never panic the loader, and (the reason the format
//! carries a checksum) may never be decoded into plausible-but-wrong
//! entries that a later check would replay as wrong diagnostics under a
//! still-matching fingerprint.
//!
//! The probe program fails the checker on purpose: wrong replay of its
//! error list would be visible in the diagnostic bytes, so "diagnostics
//! byte-identical to a cache-less check" proves both halves (no panic,
//! no wrong replay) at once.

use sjava_cache::{cache_file, IncrementalChecker};
use std::path::{Path, PathBuf};

/// A deliberately failing program (one `@LOC` stripped from a clean
/// synthetic corpus would also do, but a hand-rolled probe keeps this
/// crate's dev-dependencies flat): flow-up plus an unprovable loop, so
/// the cached entries carry several error diagnostics with labels.
const PROBE: &str = r#"@LATTICE("LO<HI") @METHODDEFAULT("V<IN") @THISLOC("V")
class A {
    @LOC("HI") int hi; @LOC("LO") int lo;
    void main() {
        SSJAVA: while (true) {
            @LOC("IN") int x = Device.read();
            hi = x;
            lo = hi;
            hi = lo;
            while (x != 0) { x = Device.read(); }
            Out.emit(lo);
        }
    }
    @LATTICE("S<P") @THISLOC("S") @RETURNLOC("S")
    int helper(@LOC("P") int p) {
        @LOC("S") int r = p + 1;
        return r;
    }
}"#;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sjava-cache-corruption-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders the probe's diagnostics through a fresh directory-backed
/// session, asserting it does not panic whatever `cache.bin` holds.
fn render_via_dir(dir: &Path) -> String {
    let mut session = IncrementalChecker::with_dir(dir);
    session.set_persist_min(0);
    let report = session.check_source(PROBE).expect("probe parses");
    format!("{}", report.diagnostics)
}

/// Writes a populated cache file for the probe and returns its bytes.
fn seeded_cache(dir: &Path) -> Vec<u8> {
    let mut session = IncrementalChecker::with_dir(dir);
    session.set_persist_min(0);
    let report = session.check_source(PROBE).expect("probe parses");
    assert!(
        report.diagnostics.has_errors(),
        "probe must fail so wrong replay would be visible"
    );
    std::fs::read(cache_file(dir)).expect("cache file written")
}

fn fresh_rendering() -> String {
    let report = sjava_core::check_source(PROBE).expect("probe parses");
    format!("{}", report.diagnostics)
}

#[test]
fn truncated_files_degrade_to_misses() {
    let dir = scratch_dir("truncate");
    let clean = seeded_cache(&dir);
    let expected = fresh_rendering();
    let path = cache_file(&dir);
    // Every truncation length in a coarse sweep plus the interesting
    // boundaries (empty file, inside magic, inside version, inside
    // checksum, one byte short).
    let mut cuts: Vec<usize> = (0..clean.len()).step_by(61).collect();
    cuts.extend([0, 5, 12, 17, 21, clean.len().saturating_sub(1)]);
    for cut in cuts {
        std::fs::write(&path, &clean[..cut]).expect("truncate");
        assert_eq!(
            render_via_dir(&dir),
            expected,
            "truncation at {cut} changed the diagnostics"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn old_format_versions_degrade_to_misses() {
    let dir = scratch_dir("versions");
    let clean = seeded_cache(&dir);
    let expected = fresh_rendering();
    let path = cache_file(&dir);
    for version in [0u32, 1, 2, 4, u32::MAX] {
        // Same payload, forged version field: must be ignored wholesale.
        let mut forged = clean.clone();
        forged[10..14].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, &forged).expect("write forged version");
        let mut session = IncrementalChecker::with_dir(&dir);
        session.set_persist_min(0);
        assert!(session.is_empty(), "version {version} must load nothing");
        let report = session.check_source(PROBE).expect("probe parses");
        assert_eq!(
            format!("{}", report.diagnostics),
            expected,
            "version {version} changed the diagnostics"
        );
        assert_eq!(
            report.cache.expect("incremental").hits,
            0,
            "version {version} must produce only misses"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_payloads_degrade_to_misses() {
    let dir = scratch_dir("bitflip");
    let clean = seeded_cache(&dir);
    let expected = fresh_rendering();
    let path = cache_file(&dir);
    let header = 10 + 4 + 8; // magic + version + checksum
                             // Flip one bit at a stride of positions across the payload (and a
                             // few inside the checksum itself): the loader must reject the file
                             // and the session must re-analyze from scratch, byte-identically.
    let mut positions: Vec<usize> = (header..clean.len()).step_by(23).collect();
    positions.extend(10 + 4..header); // corrupt the stored checksum too
    for (i, pos) in positions.into_iter().enumerate() {
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 1 << (i % 8);
        std::fs::write(&path, &corrupt).expect("write corrupt");
        let mut session = IncrementalChecker::with_dir(&dir);
        session.set_persist_min(0);
        assert!(
            session.is_empty(),
            "flipped bit at byte {pos} must load nothing"
        );
        let report = session.check_source(PROBE).expect("probe parses");
        assert_eq!(
            format!("{}", report.diagnostics),
            expected,
            "flipped bit at byte {pos} changed the diagnostics"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_oversized_counts_never_panic() {
    let dir = scratch_dir("garbage");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let expected = fresh_rendering();
    let path = cache_file(&dir);
    // Assorted hostile files: random-ish noise, a giant count directly
    // after a forged (matching-checksum) header, and an empty file.
    let noise: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let mut forged = b"SJAVACACHE".to_vec();
    forged.extend_from_slice(&3u32.to_le_bytes());
    let payload = u64::MAX.to_le_bytes(); // entry count ~1.8e19
    let mut h = {
        // Recompute the real checksum so decoding genuinely begins and
        // the MAX_ITEMS bound is what stops it.
        let mut h = 0xcbf29ce484222325u64;
        for &b in &payload {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    .to_le_bytes()
    .to_vec();
    forged.append(&mut h);
    forged.extend_from_slice(&payload);
    for (tag, bytes) in [
        ("noise", noise.as_slice()),
        ("forged-count", forged.as_slice()),
        ("empty", &[][..]),
    ] {
        std::fs::write(&path, bytes).expect("write");
        assert_eq!(
            render_via_dir(&dir),
            expected,
            "{tag} file changed the diagnostics"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
