//! # sjava-core
//!
//! The Self-Stabilizing Java checker (PLDI 2012): the location type
//! system with the flow-down rule, implicit flows via program-counter
//! locations, lattice-merging call-site checks, linear-type alias
//! restrictions, shared locations, and the driver that combines typing
//! with the eviction and termination analyses into a single
//! self-stabilization verdict.
//!
//! ```
//! let report = sjava_core::check_program(&sjava_syntax::parse(
//!     r#"@LATTICE("LO<HI") @METHODDEFAULT("V<IN") @THISLOC("V")
//!        class A {
//!            @LOC("HI") int cur; @LOC("LO") int prev;
//!            void main() {
//!                SSJAVA: while (true) {
//!                    @LOC("IN") int x = Device.read();
//!                    prev = cur;
//!                    cur = x;
//!                    Out.emit(prev);
//!                }
//!            }
//!        }"#,
//! ).expect("parses"));
//! assert!(report.is_ok(), "{}", report.diagnostics);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod linear;
pub mod model;
pub mod shared;

use sjava_analysis::callgraph;
use sjava_analysis::shard::ShardInput;
use sjava_analysis::written::{self, EvictionResult};
use sjava_syntax::ast::Program;
use sjava_syntax::diag::Diagnostics;
use std::time::{Duration, Instant};

pub use checker::{block_weight, MethodChecker};
pub use model::{FieldInfo, Lattices, MethodInfo, ModelCtx};

/// Wall-clock time spent in each phase of the checking pipeline.
///
/// `parse` is only populated by [`check_source`] (callers that hand
/// [`check_program`] an already-parsed AST have no parse phase to
/// charge). `threads` records the fan-out width the parallel phases ran
/// with, so emitted timing artifacts are self-describing.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Lexing + parsing (only via [`check_source`]).
    pub parse: Duration,
    /// Building method/field lattices from annotations.
    pub lattice_build: Duration,
    /// Call-graph construction from the event loop.
    pub callgraph: Duration,
    /// The definitely-written (eviction) analysis.
    pub eviction: Duration,
    /// Flow-down type checking (the parallel method fan-out).
    pub flow_check: Duration,
    /// Linear-type aliasing checks.
    pub aliasing: Duration,
    /// Shared-location extension checks.
    pub shared: Duration,
    /// Loop termination analysis.
    pub termination: Duration,
    /// Worker threads used by the parallel phases.
    pub threads: usize,
}

impl PhaseTimings {
    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.parse
            + self.lattice_build
            + self.callgraph
            + self.eviction
            + self.flow_check
            + self.aliasing
            + self.shared
            + self.termination
    }

    /// `(name, duration)` pairs in pipeline order, for tabular output.
    pub fn phases(&self) -> [(&'static str, Duration); 8] {
        [
            ("parse", self.parse),
            ("lattice_build", self.lattice_build),
            ("callgraph", self.callgraph),
            ("eviction", self.eviction),
            ("flow_check", self.flow_check),
            ("aliasing", self.aliasing),
            ("shared", self.shared),
            ("termination", self.termination),
        ]
    }
}

/// Hit/miss counters from the incremental analysis cache (`sjava-cache`).
///
/// `None` on [`CheckReport::cache`] means the check ran the plain
/// whole-program pipeline; `Some` means an incremental session served it
/// and these counters describe how much work was replayed versus redone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Method results replayed from cache (fingerprint matched).
    pub hits: usize,
    /// Method results computed fresh (no entry for the fingerprint).
    pub misses: usize,
    /// Previously-cached methods whose fingerprint changed since the
    /// session's last check — the dirtied call-graph cone.
    pub invalidations: usize,
    /// Entries that went through dependency revalidation and replayed:
    /// every fact in the recorded read-set re-fingerprinted identically.
    pub green: usize,
    /// Entries that went through dependency revalidation and were
    /// rechecked: at least one recorded fact changed since admission.
    pub red: usize,
    /// Entries that went through dependency revalidation at all
    /// (`green + red`).
    pub revalidated: usize,
}

impl CacheStats {
    /// Fraction of per-method results served from cache (`0.0` when
    /// nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of checking a program for self-stabilization.
#[derive(Debug)]
pub struct CheckReport {
    /// All diagnostics from every phase.
    pub diagnostics: Diagnostics,
    /// The lattice model (available even on failure).
    pub lattices: Lattices,
    /// Eviction analysis result, when the call graph could be built.
    pub eviction: Option<EvictionResult>,
    /// Number of loops the termination analysis could not verify.
    pub termination_failures: usize,
    /// Per-phase wall-clock timings of this check.
    pub timings: PhaseTimings,
    /// Cache counters when the check ran through the incremental layer.
    pub cache: Option<CacheStats>,
}

impl CheckReport {
    /// Whether the program was verified self-stabilizing.
    pub fn is_ok(&self) -> bool {
        !self.diagnostics.has_errors()
    }
}

/// Checks that `program` self-stabilizes: flow-down typing (§4.1),
/// aliasing (§4.1.6), eviction (§4.2) with the shared-location extension
/// (§4.2.2), and loop termination (§4.3).
pub fn check_program(program: &Program) -> CheckReport {
    let mut diags = Diagnostics::new();
    let mut timings = PhaseTimings {
        threads: sjava_par::num_threads(),
        ..PhaseTimings::default()
    };
    let t = Instant::now();
    let lattices = Lattices::build(program, &mut diags);
    timings.lattice_build = t.elapsed();
    let t = Instant::now();
    let cg = callgraph::build(program, &mut diags);
    timings.callgraph = t.elapsed();
    let Some(cg) = cg else {
        diags.sort_stable();
        return CheckReport {
            diagnostics: diags,
            lattices,
            eviction: None,
            termination_failures: 0,
            timings,
            cache: None,
        };
    };
    let t = Instant::now();
    let eviction = written::analyze(program, &cg, &mut diags);
    timings.eviction = t.elapsed();
    // The per-method passes run against a shard view that owns every
    // method; sharded drivers substitute a reduced view + owned set.
    let shard = ShardInput::whole(program);
    let t = Instant::now();
    checker::check_flows(&shard, &lattices, &cg, &eviction.summaries, &mut diags);
    timings.flow_check = t.elapsed();
    let t = Instant::now();
    linear::check_aliasing(&shard, &lattices, &cg, &mut diags);
    timings.aliasing = t.elapsed();
    let t = Instant::now();
    shared::check_shared(&shard, &lattices, &cg, &mut diags);
    timings.shared = t.elapsed();
    let t = Instant::now();
    let termination_failures = sjava_analysis::termination::check(&shard, &cg, &mut diags);
    timings.termination = t.elapsed();
    // The merged report is presented in the stable total order on
    // (file, span, code) regardless of phase or thread interleaving.
    diags.sort_stable();
    CheckReport {
        diagnostics: diags,
        lattices,
        eviction: Some(eviction),
        termination_failures,
        timings,
        cache: None,
    }
}

/// A failed parse from [`check_source`]: the parser's diagnostics plus
/// the phase timings accumulated before the failure, so failed runs stay
/// measurable (previously the parse-phase timing was silently dropped).
#[derive(Debug)]
pub struct ParseFailure {
    /// The parser's diagnostics.
    pub diagnostics: Diagnostics,
    /// Timings with [`PhaseTimings::parse`] charged for the failed parse.
    pub timings: PhaseTimings,
}

impl std::fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.diagnostics)
    }
}

/// Parses and checks source text, charging parse time to
/// [`PhaseTimings::parse`].
///
/// # Errors
///
/// Returns a [`ParseFailure`] carrying the parser's diagnostics and the
/// parse-phase timing when the source does not parse.
// The Ok variant (`CheckReport`) is no smaller than the Err variant, so
// boxing `ParseFailure` would not shrink the `Result`.
#[allow(clippy::result_large_err)]
pub fn check_source(source: &str) -> Result<CheckReport, ParseFailure> {
    let t = Instant::now();
    let parsed = sjava_syntax::parse(source);
    let parse = t.elapsed();
    match parsed {
        Ok(program) => {
            let mut report = check_program(&program);
            report.timings.parse = parse;
            Ok(report)
        }
        Err(diagnostics) => Err(ParseFailure {
            diagnostics,
            timings: PhaseTimings {
                parse,
                threads: sjava_par::num_threads(),
                ..PhaseTimings::default()
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    /// The paper's running example (Fig 2.1), completed with a concrete
    /// median computation.
    pub const WIND_SENSOR: &str = r#"
        @LATTICE("DIR<TMP,TMP<BIN")
        class WDSensor {
            @LOC("BIN") WindRec bin;
            @LOC("DIR") int dir;

            @LATTICE("STR<WDOBJ,WDOBJ<IN") @THISLOC("WDOBJ")
            void windDirection() {
                bin = new WindRec();
                SSJAVA: while (true) {
                    @LOC("IN") int inDir = Device.readSensor();
                    bin.dir2 = bin.dir1;
                    bin.dir1 = bin.dir0;
                    bin.dir0 = inDir;
                    @LOC("STR") int outDir = calculate();
                    Out.emit(outDir);
                }
            }

            @LATTICE("OUT<TMPD,TMPD<CAOBJ") @THISLOC("CAOBJ") @RETURNLOC("OUT")
            int calculate() {
                @LOC("CAOBJ,TMP") int majorDir = bin.dir0;
                if (bin.dir1 == bin.dir2) {
                    majorDir = bin.dir1;
                }
                this.dir = majorDir;
                @LOC("OUT") int strDir = majorDir;
                return strDir;
            }
        }
        @LATTICE("DIR2<DIR1,DIR1<DIR0")
        class WindRec {
            @LOC("DIR0") int dir0;
            @LOC("DIR1") int dir1;
            @LOC("DIR2") int dir2;
        }
    "#;

    #[test]
    fn wind_sensor_checks() {
        let p = parse(WIND_SENSOR).expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn flow_up_is_rejected() {
        let p = parse(
            r#"@LATTICE("LO<HI") @METHODDEFAULT("V<IN") @THISLOC("V")
               class A {
                   @LOC("HI") int hi; @LOC("LO") int lo;
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") int x = Device.read();
                           hi = x;
                           lo = hi;
                           hi = lo;
                           Out.emit(lo);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("flow-down")));
    }

    #[test]
    fn implicit_flow_is_rejected() {
        // Branch on low `a`, assign high `b`.
        let p = parse(
            r#"@LATTICE("A<B") @METHODDEFAULT("V<IN") @THISLOC("V")
               class A {
                   @LOC("A") int a; @LOC("B") int b;
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") int x = Device.read();
                           b = x;
                           a = b;
                           if (a > 0) { b = 1; } else { b = 0; }
                           Out.emit(a);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("implicit flow")));
    }

    #[test]
    fn shared_location_allows_accumulation() {
        let p = parse(
            r#"@METHODDEFAULT("V<IN,ACC*,ACC<IN,V<ACC") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") int n = Device.read();
                           @LOC("ACC") int s = 0;
                           for (@LOC("ACC") int i = 0; i < 10; i++) {
                               s = s + 1;
                           }
                           Out.emit(s);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn accumulation_without_shared_is_rejected() {
        let p = parse(
            r#"@METHODDEFAULT("ACC<IN,V<ACC") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") int n = Device.read();
                           @LOC("ACC") int s = 0;
                           s = s + n;
                           Out.emit(s);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
    }

    #[test]
    fn missing_annotation_is_completeness_error() {
        let p = parse(
            r#"@METHODDEFAULT("V<IN") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           int x = Device.read();
                           Out.emit(x);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("missing a @LOC")));
    }

    #[test]
    fn call_site_ordering_is_enforced() {
        // Callee requires arg(lowp) ⊑ arg(highp); caller passes them the
        // other way around.
        let p = parse(
            r#"@METHODDEFAULT("LO<HI,V<LO") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("HI") int h = Device.read();
                           @LOC("LO") int l = h;
                           @LOC("V") int r = f(h, l);
                           Out.emit(r);
                       }
                   }
                   @LATTICE("S<R,R<B,B<T") @THISLOC("S") @RETURNLOC("R")
                   int f(@LOC("B") int lowp, @LOC("T") int highp) {
                       @LOC("R") int out = lowp + highp;
                       return out;
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("parameter ordering")));
    }

    #[test]
    fn call_site_correct_ordering_passes() {
        let p = parse(
            r#"@METHODDEFAULT("LO<HI,V<LO") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("HI") int h = Device.read();
                           @LOC("LO") int l = h;
                           @LOC("V") int r = f(l, h);
                           Out.emit(r);
                       }
                   }
                   @LATTICE("S<R,R<B,B<T") @THISLOC("S") @RETURNLOC("R")
                   int f(@LOC("B") int lowp, @LOC("T") int highp) {
                       @LOC("R") int out = lowp + highp;
                       return out;
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(report.is_ok(), "{}", report.diagnostics);
    }

    #[test]
    fn aliasing_with_different_locations_is_rejected() {
        let p = parse(
            r#"@LATTICE("F<G")
               class A {
                   @LOC("G") R r;
                   @LATTICE("LO<HI,V<LO") @THISLOC("V")
                   void main() {
                       r = new R();
                       SSJAVA: while (true) {
                           @LOC("HI") R x = r;
                           @LOC("LO") R y = x;
                           y.v = Device.read();
                           Out.emit(x.v);
                       }
                   }
               }
               @LATTICE("W") class R { @LOC("W") int v; }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("aliasing")));
    }

    #[test]
    fn second_heap_alias_is_rejected() {
        let p = parse(
            r#"@LATTICE("A<B")
               class H {
                   @LOC("B") R f; @LOC("A") R g;
                   @LATTICE("V<IN") @THISLOC("V")
                   void main() {
                       f = new R();
                       SSJAVA: while (true) {
                           @LOC("V") R t = f;
                           g = t;
                           f.v = Device.read();
                           Out.emit(g.v);
                       }
                   }
               }
               @LATTICE("W") class R { @LOC("W") int v; }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("heap alias")));
    }

    #[test]
    fn delegate_transfer_kills_the_variable() {
        let p = parse(
            r#"@METHODDEFAULT("V<IN") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") R t = new R();
                           sink(t);
                           Out.emit(t.v);
                       }
                   }
                   @LATTICE("S<P") @THISLOC("S") @PCLOC("P")
                   void sink(@DELEGATE @LOC("P") R q) { q.v = 1; }
               }
               @LATTICE("W") class R { @LOC("W") int v; }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("after its ownership")));
    }

    #[test]
    fn parse_failure_keeps_parse_timing() {
        // Regression: a failed parse used to drop the parse-phase timing
        // entirely, making failed runs unmeasurable.
        let err = check_source("class A { this is not sjava").expect_err("must not parse");
        assert!(err.diagnostics.has_errors());
        assert!(err.timings.parse > Duration::ZERO);
        assert_eq!(err.timings.total(), err.timings.parse);
        assert!(err.timings.threads >= 1);
        // Display renders the diagnostics, as the old Err(Diagnostics) did.
        assert_eq!(format!("{err}"), format!("{}", err.diagnostics));
    }

    #[test]
    fn termination_failure_is_reported() {
        let p = parse(
            r#"@METHODDEFAULT("V<IN") @THISLOC("V")
               class A {
                   void main() {
                       SSJAVA: while (true) {
                           @LOC("IN") int x = Device.read();
                           while (x != 0) { x = Device.read(); }
                           Out.emit(x);
                       }
                   }
               }"#,
        )
        .expect("parses");
        let report = check_program(&p);
        assert!(!report.is_ok());
        assert!(report.termination_failures > 0);
    }
}
