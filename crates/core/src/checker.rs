//! The flow-down location type checker (§4.1, Fig 4.1).
//!
//! Walks every method reachable from the event loop and checks that every
//! explicit value flow (assignments, field/array stores, returns) and every
//! implicit flow (conditionals, via the program-counter location) moves
//! values strictly *down* the composite-location lattice — with the single
//! exception of shared locations, which admit same-location flows (§4.1.8).
//!
//! Internally the checker works on interned [`LocRef`] ids: every location
//! an expression can take is interned once (environment construction,
//! field extension, meets) and all subsequent ⊑/⊓ queries are id-keyed
//! cache probes — no composite-location hashing or cloning on the hot
//! path. Locations are resolved back to [`CompositeLoc`] values only when
//! a diagnostic needs to print them.

use crate::model::{resolve_annot_with, Lattices, MethodInfo, ModelCtx};
use sjava_analysis::callgraph::{CallGraph, MethodRef};
use sjava_analysis::jtype::TypeEnv;
use sjava_analysis::shard::ShardInput;
use sjava_analysis::written::MethodSummary;
use sjava_lattice::{compare, CompositeLoc, Elem, FnvHashMap, LocInterner, LocRef};
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Checks every reachable method the shard owns; diagnostics go to
/// `diags`. `summaries` (from the eviction analysis) supply each callee's
/// write effects for the implicit-flow call rule. The unsharded pipeline
/// passes [`ShardInput::whole`]; a shard worker passes its reduced view
/// and only its owned methods are checked.
///
/// Methods are independent of each other once the eviction summaries are
/// in hand, so they are fanned out across `sjava_par` workers. Each
/// worker checks into a private `Diagnostics` buffer; the buffers are
/// merged back in call-graph topological order, which makes the output
/// byte-for-byte identical at any thread count (`SJAVA_THREADS=1` vs N).
pub fn check_flows(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    cg: &CallGraph,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
    diags: &mut Diagnostics,
) {
    // Per-method cost estimates feed the work-stealing scheduler: a
    // stress corpus mixes 3-statement setters with 500-statement decode
    // loops, and dealing the heavy methods out first (descending cost)
    // is what lets N workers finish in ~1/N the wall clock instead of
    // all waiting on whichever worker drew the decoder.
    let owned: Vec<usize> = (0..cg.topo.len())
        .filter(|&i| shard.owns(&cg.topo[i]))
        .collect();
    let cost: Vec<u64> = owned
        .iter()
        .map(|&i| method_cost(shard, lattices, &cg.topo[i]))
        .collect();
    let per_method = sjava_par::run_sparse_weighted(&owned, &cost, |i| {
        check_method_flows(shard, lattices, &cg.topo[i], summaries)
    });
    for (_, d) in per_method {
        diags.extend(d);
    }
}

/// Estimated checking cost of one method: statement count × lattice
/// height. Checking walks every statement and resolves flows against
/// the method lattice, whose comparison cost grows with its depth —
/// the product tracks measured per-method phase timings well enough to
/// order the work queue (only the ordering matters; see
/// `sjava_par::run_indexed_weighted`). Public so shard planning can
/// balance shards with the same estimate the scheduler uses.
pub fn method_cost(shard: &ShardInput<'_>, lattices: &Lattices, mref: &MethodRef) -> u64 {
    let Some((decl_class, method)) = shard.program().resolve_method(&mref.0, &mref.1) else {
        return 1;
    };
    let stmts = block_weight(&method.body);
    let depth = lattices
        .method_info(&decl_class.name, &method.name)
        .map(|info| info.lattice.height() as u64)
        .unwrap_or(1);
    (stmts + 1) * (depth + 1)
}

/// Statement count of a block, including nested bodies — the size half
/// of the scheduler's cost model, also used by the incremental layer to
/// decide whether a program is big enough for on-disk persistence to
/// pay for itself.
pub fn block_weight(b: &Block) -> u64 {
    b.stmts.iter().map(stmt_weight).sum()
}

fn stmt_weight(s: &Stmt) -> u64 {
    match s {
        Stmt::If {
            then_blk, else_blk, ..
        } => 1 + block_weight(then_blk) + else_blk.as_ref().map_or(0, block_weight),
        Stmt::While { body, .. } => 1 + block_weight(body),
        Stmt::For {
            init, update, body, ..
        } => {
            1 + init.as_deref().map_or(0, stmt_weight)
                + update.as_deref().map_or(0, stmt_weight)
                + block_weight(body)
        }
        Stmt::Block(b) => 1 + block_weight(b),
        _ => 1,
    }
}

/// Flow-checks a single method into a private diagnostics buffer — the
/// per-method unit of [`check_flows`]'s fan-out, exposed so the
/// incremental layer can re-check only the dirtied call-graph cone and
/// replay cached buffers for the rest. Trusted or unresolvable methods
/// produce an empty buffer.
pub fn check_method_flows(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    mref: &MethodRef,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> Diagnostics {
    let mut local = Diagnostics::new();
    let Some((decl_class, method)) = shard.program().resolve_method(&mref.0, &mref.1) else {
        return local;
    };
    let Some(info) = lattices.method_info(&decl_class.name, &method.name) else {
        return local;
    };
    if info.trusted {
        return local;
    }
    let mut checker = MethodChecker::new(shard, lattices, &decl_class.name, method, info)
        .with_summaries(summaries);
    checker.run(&mut local);
    local
}

/// Collects the static variable→location environment of a method: the
/// parameters' `@LOC`s plus every local declaration's `@LOC` (annotations
/// are flow-insensitive, so the environment is fixed). Resolving an
/// annotation only reads class interfaces, so any shard view suffices.
pub fn collect_var_locs(
    shard: &ShardInput<'_>,
    class: &str,
    method: &MethodDecl,
    info: &MethodInfo,
    diags: &mut Diagnostics,
) -> HashMap<String, CompositeLoc> {
    let program = shard.program();
    let mut env = HashMap::new();
    for p in &method.params {
        if let Some(annot) = &p.annots.loc {
            env.insert(
                p.name.clone(),
                resolve_annot_with(annot, &info.lattice, class, program),
            );
        } else {
            diags.push(Diag::missing_annot(
                format!("parameter `{}` is missing a @LOC annotation", p.name),
                p.span,
            ));
        }
    }
    collect_block(program, class, info, &method.body, &mut env, diags);
    env
}

fn collect_block(
    program: &Program,
    class: &str,
    info: &MethodInfo,
    block: &Block,
    env: &mut HashMap<String, CompositeLoc>,
    diags: &mut Diagnostics,
) {
    for s in &block.stmts {
        match s {
            Stmt::VarDecl {
                annots, name, span, ..
            } => {
                if let Some(annot) = &annots.loc {
                    let loc = resolve_annot_with(annot, &info.lattice, class, program);
                    if let Some(prev) = env.get(name) {
                        if *prev != loc {
                            diags.push(Diag::resolve(
                                format!("variable `{name}` redeclared with a different location"),
                                *span,
                            ));
                        }
                    }
                    env.insert(name.clone(), loc);
                } else {
                    diags.push(Diag::missing_annot(
                        format!("variable `{name}` is missing a @LOC annotation"),
                        *span,
                    ));
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_block(program, class, info, then_blk, env, diags);
                if let Some(e) = else_blk {
                    collect_block(program, class, info, e, env, diags);
                }
            }
            Stmt::While { body, .. } => collect_block(program, class, info, body, env, diags),
            Stmt::For {
                init, update, body, ..
            } => {
                let tmp_block = |s: &Stmt| Block {
                    stmts: vec![s.clone()],
                    span: s.span(),
                };
                if let Some(i) = init {
                    collect_block(program, class, info, &tmp_block(i), env, diags);
                }
                if let Some(u) = update {
                    collect_block(program, class, info, &tmp_block(u), env, diags);
                }
                collect_block(program, class, info, body, env, diags);
            }
            Stmt::Block(b) => collect_block(program, class, info, b, env, diags),
            _ => {}
        }
    }
}

/// Per-checker memo of a field's declaring class and location name:
/// `None` for unknown fields, `Some((declaring class, None))` for fields
/// without a `@LOC`. Only the resolution outcome is cached — the
/// diagnostic for a failed resolution is re-emitted at every use site,
/// exactly as the uncached lookup did.
type FieldLocEntry = Option<(String, Option<String>)>;

/// A this-rooted annotation's field-extension chain: the `(declaring
/// class, field name)` hops below `@THISLOC` that re-root the location at
/// a caller-side receiver.
type FieldChain = Vec<(String, String)>;

/// Extracts the field-extension chain of a this-rooted callee location:
/// `Some` iff the method declares `@THISLOC` and `loc`'s first element is
/// it, with the chain holding the field-space hops below it.
fn this_chain(this_loc: Option<&String>, loc: &CompositeLoc) -> Option<FieldChain> {
    let t = this_loc?;
    let elems = loc.elems();
    if elems.len() > 1 && elems[0] == Elem::method(t.clone()) {
        Some(
            elems[1..]
                .iter()
                .filter_map(|f| match &f.space {
                    sjava_lattice::Space::Field(c) => Some((c.clone(), f.name.clone())),
                    _ => None,
                })
                .collect(),
        )
    } else {
        None
    }
}

/// Per-checker memo of everything about a callee that does not depend on
/// the call site: resolution, lattice info, per-parameter annotation
/// outcomes, the pairwise parameter ordering (compared once under the
/// *callee's* lattice context), return-location coverage, and the write
/// summary. Call sites replay diagnostics from the memo, so emitted output
/// is identical to the uncached path.
enum CalleeResolution<'p> {
    /// `resolve_method` failed — re-emit the unknown-method diagnostic at
    /// every call site.
    Unknown,
    /// No lattice info, or the callee is `@TRUSTED` — every call site
    /// silently evaluates to ⊤.
    Skip,
    /// A checkable callee.
    Checked(CalleeEntry<'p>),
}

struct CalleeEntry<'p> {
    decl_class: &'p ClassDecl,
    callee: &'p MethodDecl,
    info: &'p MethodInfo,
    /// One entry per callee parameter, in order: `None` re-emits the
    /// missing-`@LOC` diagnostic; `Some(chain)` carries the this-rooted
    /// extension chain (if any) for the receiver-hierarchy argument check.
    params: Vec<Option<Option<FieldChain>>>,
    /// `(i, j)` pairs over the callee-side location vector (receiver
    /// first, then annotated params) with `pi ⊏ pj` under the callee's
    /// lattice — the caller must satisfy `ai ⊑ aj` for each.
    less_pairs: Vec<(u32, u32)>,
    /// When `@RETURNLOC` is declared: per callee-side location, whether
    /// the return location sits at or below it, plus the this-rooted
    /// refinement chain (if any).
    ret: Option<(Vec<bool>, Option<FieldChain>)>,
    summary: Option<&'p MethodSummary>,
}

/// Flow-checks one method.
pub struct MethodChecker<'p> {
    program: &'p Program,
    lattices: &'p Lattices,
    class: String,
    method: &'p MethodDecl,
    info: &'p MethodInfo,
    tenv: TypeEnv<'p>,
    env: FnvHashMap<String, LocRef>,
    env_ready: bool,
    summaries: Option<&'p BTreeMap<MethodRef, MethodSummary>>,
    /// Per-method interner memoizing ⊑ and ⊓ queries against this
    /// method's lattice context (the same few locations are compared at
    /// every assignment, branch and call site).
    cache: LocInterner,
    /// Interned ⊤ (the single most common location).
    top: LocRef,
    /// Interned `@THISLOC`, when declared.
    this_id: Option<LocRef>,
    /// Interned `@RETURNLOC`, when declared.
    ret_id: Option<LocRef>,
    /// `class → field → (declaring class, @LOC name)` lookup memo.
    field_cache: RefCell<FnvHashMap<String, FnvHashMap<String, FieldLocEntry>>>,
    /// `name → is a field of the enclosing class` memo.
    own_field: RefCell<FnvHashMap<String, bool>>,
    /// `target class → method name → callee memo` for the CALL_SITE rule.
    callee_cache: RefCell<FnvHashMap<String, FnvHashMap<String, Rc<CalleeResolution<'p>>>>>,
}

impl<'p> MethodChecker<'p> {
    /// Creates a checker for `method` of `class`, resolving everything it
    /// references through the shard's program view.
    pub fn new(
        shard: &ShardInput<'p>,
        lattices: &'p Lattices,
        class: &str,
        method: &'p MethodDecl,
        info: &'p MethodInfo,
    ) -> Self {
        let program = shard.program();
        let mut tenv = TypeEnv::for_method(program, class, method);
        tenv.bind_block(&method.body);
        let cache = LocInterner::new();
        let top = cache.intern(&CompositeLoc::Top);
        let this_id = info
            .this_loc
            .as_ref()
            .map(|t| cache.intern(&CompositeLoc::method(t)));
        let ret_id = info.return_loc.as_ref().map(|r| cache.intern(r));
        MethodChecker {
            program,
            lattices,
            class: class.to_string(),
            method,
            info,
            tenv,
            env: FnvHashMap::default(),
            env_ready: false,
            summaries: None,
            cache,
            top,
            this_id,
            ret_id,
            field_cache: RefCell::new(FnvHashMap::default()),
            own_field: RefCell::new(FnvHashMap::default()),
            callee_cache: RefCell::new(FnvHashMap::default()),
        }
    }

    /// Supplies callee write summaries for the implicit-flow call rule.
    pub fn with_summaries(mut self, summaries: &'p BTreeMap<MethodRef, MethodSummary>) -> Self {
        self.summaries = Some(summaries);
        self
    }

    fn ctx(&self) -> ModelCtx<'_> {
        ModelCtx {
            method: &self.info.lattice,
            fields: &self.lattices.fields,
        }
    }

    /// The lattice context of this method (method + field lattices).
    pub fn model_ctx(&self) -> ModelCtx<'_> {
        self.ctx()
    }

    /// `⊓` over ids with the ubiquitous-⊤ fast path: constants and fresh
    /// allocations sit at ⊤, and `x ⊓ ⊤ = x` needs no cache probe.
    fn meet(&self, a: LocRef, b: LocRef) -> LocRef {
        if a == self.top {
            return b;
        }
        if b == self.top {
            return a;
        }
        self.cache.glb_ids(&self.ctx(), a, b)
    }

    /// Public access to lvalue locations (used by the shared-location
    /// extension).
    pub fn loc_of_lvalue_public(&self, lv: &LValue, diags: &mut Diagnostics) -> CompositeLoc {
        let r = self.loc_of_lvalue_id(lv, diags);
        self.cache.resolve(r)
    }

    /// Runs all flow checks on the method body.
    pub fn run(&mut self, diags: &mut Diagnostics) {
        // The environment depends only on interfaces reachable from this
        // view, so re-wrapping the view preserves shard semantics.
        let view = ShardInput::whole(self.program);
        let env = collect_var_locs(&view, &self.class, self.method, self.info, diags);
        self.env = env
            .into_iter()
            .map(|(name, loc)| {
                let id = self.cache.intern(&loc);
                (name, id)
            })
            .collect();
        self.env_ready = true;
        let pc = match &self.info.pc_loc {
            Some(p) => self.cache.intern(p),
            None => self.top,
        };
        self.check_block(&self.method.body, pc, diags);
    }

    /// The location of `this` in the current method.
    fn this_loc_id(&self, span: Span, diags: &mut Diagnostics) -> LocRef {
        match self.this_id {
            Some(t) => t,
            None => {
                diags.push(Diag::missing_annot(
                    format!(
                        "method `{}.{}` accesses `this` but has no @THISLOC",
                        self.class, self.method.name
                    ),
                    span,
                ));
                self.top
            }
        }
    }

    /// Whether `name` resolves to a field of the enclosing class
    /// (memoized — the raw lookup walks the inheritance chain).
    fn is_own_field(&self, name: &str) -> bool {
        if let Some(&hit) = self.own_field.borrow().get(name) {
            return hit;
        }
        let res = self.program.field(&self.class, name).is_some();
        self.own_field.borrow_mut().insert(name.to_string(), res);
        res
    }

    /// The composite location of an expression (the typing rules of
    /// Fig 4.1), resolved to a value — diagnostics and the shared-location
    /// extension consume this; the checker itself stays on ids.
    pub fn loc_of(&self, e: &Expr, diags: &mut Diagnostics) -> CompositeLoc {
        let r = self.loc_of_id(e, diags);
        self.cache.resolve(r)
    }

    fn loc_of_id(&self, e: &Expr, diags: &mut Diagnostics) -> LocRef {
        match e {
            // LITERAL: constants live at ⊤.
            Expr::IntLit { .. }
            | Expr::FloatLit { .. }
            | Expr::BoolLit { .. }
            | Expr::StrLit { .. }
            | Expr::Null { .. } => self.top,
            Expr::This { span } => self.this_loc_id(*span, diags),
            Expr::Var { name, span } => {
                if let Some(&loc) = self.env.get(name) {
                    loc
                } else if self.is_own_field(name) {
                    // Unqualified field access: ⟨thisloc, fieldloc⟩.
                    let base = self.this_loc_id(*span, diags);
                    self.field_loc_id(base, &self.class, name, *span, diags)
                } else {
                    if self.env_ready {
                        diags.push(Diag::resolve(
                            format!("variable `{name}` has no location"),
                            *span,
                        ));
                    }
                    self.top
                }
            }
            // FIELD_READ: L(e) ⊕ loc(f).
            Expr::Field { base, field, span } => {
                let base_loc = self.loc_of_id(base, diags);
                let Some(Type::Class(c)) = self.tenv.ty(base) else {
                    diags.push(Diag::resolve(
                        format!("cannot resolve receiver type for field `{field}`"),
                        *span,
                    ));
                    return self.top;
                };
                self.field_loc_id(base_loc, &c, field, *span, diags)
            }
            Expr::StaticField { class, field, span } => {
                let Some(fd) = self.program.field(class, field) else {
                    diags.push(Diag::resolve(
                        format!("unknown static field `{class}.{field}`"),
                        *span,
                    ));
                    return self.top;
                };
                if fd.is_final {
                    // Constants live at ⊤ (§3.6).
                    self.top
                } else if let Some(g) = &self.info.global_loc {
                    let base = self.cache.intern(&CompositeLoc::method(g));
                    self.field_loc_id(base, class, field, *span, diags)
                } else {
                    diags.push(Diag::missing_annot(
                        format!("access to non-final static `{class}.{field}` requires @GLOBALLOC"),
                        *span,
                    ));
                    self.top
                }
            }
            // ARRAY_VAR: glb of the array's and the index's locations.
            Expr::Index { base, index, .. } => {
                let a = self.loc_of_id(base, diags);
                let i = self.loc_of_id(index, diags);
                self.meet(a, i)
            }
            // Array lengths are fixed at allocation time: constants.
            Expr::Length { .. } => self.top,
            Expr::Call { .. } => self.check_call(e, self.top, true, diags),
            // Fresh allocations are owned and may be placed anywhere.
            Expr::New { .. } | Expr::NewArray { .. } => self.top,
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
                self.loc_of_id(operand, diags)
            }
            // OPERATION: glb of the operand locations.
            Expr::Binary { lhs, rhs, .. } => {
                let a = self.loc_of_id(lhs, diags);
                let b = self.loc_of_id(rhs, diags);
                self.meet(a, b)
            }
        }
    }

    fn field_loc_id(
        &self,
        base: LocRef,
        class: &str,
        field: &str,
        span: Span,
        diags: &mut Diagnostics,
    ) -> LocRef {
        {
            let cache = self.field_cache.borrow();
            if let Some(hit) = cache.get(class).and_then(|per| per.get(field)) {
                return match hit {
                    None => {
                        diags.push(Diag::resolve(
                            format!("unknown field `{class}.{field}`"),
                            span,
                        ));
                        self.top
                    }
                    Some((_, None)) => {
                        diags.push(Diag::missing_annot(
                            format!("field `{class}.{field}` is missing a @LOC annotation"),
                            span,
                        ));
                        self.top
                    }
                    Some((decl, Some(loc_name))) => {
                        self.cache.extend_field_id(base, decl, loc_name)
                    }
                };
            }
        }
        let entry: FieldLocEntry = self
            .lattices
            .field_info(self.program, class, field)
            .map(|fi| (fi.declaring_class, fi.loc_name));
        self.field_cache
            .borrow_mut()
            .entry(class.to_string())
            .or_default()
            .insert(field.to_string(), entry);
        self.field_loc_id(base, class, field, span, diags)
    }

    fn loc_of_lvalue_id(&self, lv: &LValue, diags: &mut Diagnostics) -> LocRef {
        match lv {
            LValue::Var { name, span } => {
                if let Some(&l) = self.env.get(name) {
                    l
                } else if self.is_own_field(name) {
                    let base = self.this_loc_id(*span, diags);
                    self.field_loc_id(base, &self.class, name, *span, diags)
                } else {
                    diags.push(Diag::resolve(
                        format!("variable `{name}` has no location"),
                        *span,
                    ));
                    self.top
                }
            }
            LValue::Field { base, field, span } => {
                let base_loc = self.loc_of_id(base, diags);
                let Some(Type::Class(c)) = self.tenv.ty(base) else {
                    diags.push(Diag::resolve(
                        format!("cannot resolve receiver type for field `{field}`"),
                        *span,
                    ));
                    return self.top;
                };
                self.field_loc_id(base_loc, &c, field, *span, diags)
            }
            LValue::Index { base, .. } => self.loc_of_id(base, diags),
            LValue::StaticField { class, field, span } => {
                if let Some(g) = &self.info.global_loc {
                    let base = self.cache.intern(&CompositeLoc::method(g));
                    self.field_loc_id(base, class, field, *span, diags)
                } else {
                    diags.push(Diag::missing_annot(
                        format!("write to static `{class}.{field}` requires @GLOBALLOC"),
                        *span,
                    ));
                    self.top
                }
            }
        }
    }

    /// The flow-down rule: `dst ⊏ src`, or same shared location.
    fn check_flow(
        &self,
        src: LocRef,
        dst: LocRef,
        span: Span,
        what: &str,
        diags: &mut Diagnostics,
    ) {
        match self.cache.compare_ids(&self.ctx(), dst, src) {
            Some(Ordering::Less) => {}
            Some(Ordering::Equal) if self.cache.is_shared_id(&self.ctx(), dst) => {}
            _ => {
                let (src, dst) = (self.cache.resolve(src), self.cache.resolve(dst));
                let mut d = Diag::flow_up(
                    format!(
                        "{what} violates the flow-down rule: {src} does not flow down to {dst}"
                    ),
                    span,
                );
                if let Some(ls) = self.info.lattice_span {
                    d = d.with_label(ls, "method lattice declared here");
                }
                diags.push(d);
            }
        }
    }

    /// Implicit-flow constraint: the destination must sit strictly below
    /// the program-counter location (or be the same shared location).
    fn check_pc(&self, dst: LocRef, pc: LocRef, span: Span, diags: &mut Diagnostics) {
        if pc == self.top {
            return;
        }
        match self.cache.compare_ids(&self.ctx(), dst, pc) {
            Some(Ordering::Less) => {}
            Some(Ordering::Equal) if self.cache.is_shared_id(&self.ctx(), dst) => {}
            _ => {
                let (dst, pc) = (self.cache.resolve(dst), self.cache.resolve(pc));
                diags.push(Diag::implicit_flow(
                    format!(
                        "implicit flow: assignment to {dst} under program counter {pc} is not allowed"
                    ),
                    span,
                ));
            }
        }
    }

    fn check_block(&self, block: &Block, pc: LocRef, diags: &mut Diagnostics) {
        for s in &block.stmts {
            self.check_stmt(s, pc, diags);
        }
    }

    fn check_stmt(&self, stmt: &Stmt, pc: LocRef, diags: &mut Diagnostics) {
        match stmt {
            Stmt::VarDecl {
                name, init, span, ..
            } => {
                if let Some(e) = init {
                    let src = self.loc_of_id(e, diags);
                    if let Some(&dst) = self.env.get(name) {
                        self.check_flow(src, dst, *span, "initialization", diags);
                        self.check_pc(dst, pc, *span, diags);
                    }
                    self.check_subexprs(e, pc, diags);
                }
            }
            Stmt::Assign { lhs, rhs, span } => {
                let src = self.loc_of_id(rhs, diags);
                let dst = self.loc_of_lvalue_id(lhs, diags);
                self.check_flow(src, dst, *span, "assignment", diags);
                self.check_pc(dst, pc, *span, diags);
                // ARRAY_ASG: the array must sit below the index (§4.1.3).
                if let LValue::Index { base, index, .. } = lhs {
                    let arr = self.loc_of_id(base, diags);
                    let idx = self.loc_of_id(index, diags);
                    match self.cache.compare_ids(&self.ctx(), arr, idx) {
                        Some(Ordering::Less) => {}
                        _ => {
                            let (arr, idx) = (self.cache.resolve(arr), self.cache.resolve(idx));
                            diags.push(Diag::flow_up(
                                format!(
                                    "array store: array location {arr} must be lower than index location {idx}"
                                ),
                                *span,
                            ))
                        }
                    }
                }
                self.check_subexprs(rhs, pc, diags);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.check_subexprs(cond, pc, diags);
                let c = self.loc_of_id(cond, diags);
                let pc2 = self.meet(pc, c);
                self.check_block(then_blk, pc2, diags);
                if let Some(e) = else_blk {
                    self.check_block(e, pc2, diags);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.check_subexprs(cond, pc, diags);
                let c = self.loc_of_id(cond, diags);
                let pc2 = self.meet(pc, c);
                self.check_block(body, pc2, diags);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.check_stmt(i, pc, diags);
                }
                let pc2 = if let Some(c) = cond {
                    self.check_subexprs(c, pc, diags);
                    let cl = self.loc_of_id(c, diags);
                    self.meet(pc, cl)
                } else {
                    pc
                };
                if let Some(u) = update {
                    self.check_stmt(u, pc2, diags);
                }
                self.check_block(body, pc2, diags);
            }
            Stmt::Return { value, span } => {
                if let Some(e) = value {
                    self.check_subexprs(e, pc, diags);
                    let src = self.loc_of_id(e, diags);
                    match (&self.info.return_loc, self.ret_id) {
                        (Some(rl), Some(rl_id)) => {
                            // RETURN: the declared return location must be
                            // at or below the returned value.
                            match self.cache.compare_ids(&self.ctx(), rl_id, src) {
                                Some(Ordering::Less) | Some(Ordering::Equal) => {}
                                _ => {
                                    let src = self.cache.resolve(src);
                                    diags.push(Diag::flow_up(
                                        format!(
                                            "return value at {src} is below the declared @RETURNLOC {rl}"
                                        ),
                                        *span,
                                    ))
                                }
                            }
                        }
                        _ => diags.push(Diag::missing_annot(
                            format!(
                                "method `{}.{}` returns a value but has no @RETURNLOC",
                                self.class, self.method.name
                            ),
                            *span,
                        )),
                    }
                }
            }
            Stmt::ExprStmt { expr, .. } => {
                if matches!(expr, Expr::Call { .. }) {
                    self.check_call(expr, pc, false, diags);
                    // Argument sub-expressions still need checking.
                    if let Expr::Call { args, recv, .. } = expr {
                        for a in args {
                            self.check_subexprs(a, pc, diags);
                        }
                        if let Some(r) = recv {
                            self.check_subexprs(r, pc, diags);
                        }
                    }
                } else {
                    self.check_subexprs(expr, pc, diags);
                }
            }
            Stmt::Block(b) => self.check_block(b, pc, diags),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }

    /// Checks calls nested inside an expression tree.
    fn check_subexprs(&self, e: &Expr, pc: LocRef, diags: &mut Diagnostics) {
        match e {
            Expr::Call { args, recv, .. } => {
                self.check_call(e, pc, false, diags);
                for a in args {
                    self.check_subexprs(a, pc, diags);
                }
                if let Some(r) = recv {
                    self.check_subexprs(r, pc, diags);
                }
            }
            Expr::Field { base, .. } | Expr::Length { base, .. } => {
                self.check_subexprs(base, pc, diags)
            }
            Expr::Index { base, index, .. } => {
                self.check_subexprs(base, pc, diags);
                self.check_subexprs(index, pc, diags);
            }
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
                self.check_subexprs(operand, pc, diags)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.check_subexprs(lhs, pc, diags);
                self.check_subexprs(rhs, pc, diags);
            }
            Expr::NewArray { len, .. } => self.check_subexprs(len, pc, diags),
            _ => {}
        }
    }

    /// The CALL_SITE rule (§4.1.5): checks argument ordering constraints,
    /// the program-counter constraint, and computes the caller-side
    /// return-value location.
    fn check_call(&self, e: &Expr, pc: LocRef, _as_value: bool, diags: &mut Diagnostics) -> LocRef {
        let Expr::Call {
            recv,
            class_recv,
            name,
            args,
            span,
        } = e
        else {
            return self.top;
        };
        // Intrinsics.
        if let Some(c) = class_recv {
            match c.as_str() {
                "Device" => return self.top,
                "Out" | "System" => return self.top,
                "Math" => {
                    let mut loc = self.top;
                    for a in args {
                        let al = self.loc_of_id(a, diags);
                        loc = self.meet(loc, al);
                    }
                    return loc;
                }
                "SSJavaArray" => {
                    // insert(arr, v): the new value enters the array's
                    // highest position, so it must come from strictly
                    // higher (§4.1.3).
                    if name == "insert" && args.len() == 2 {
                        let arr = self.loc_of_id(&args[0], diags);
                        let v = self.loc_of_id(&args[1], diags);
                        self.check_flow(v, arr, *span, "array insert", diags);
                        self.check_pc(arr, pc, *span, diags);
                    }
                    if name == "clear" {
                        if let Some(a0) = args.first() {
                            let arr = self.loc_of_id(a0, diags);
                            self.check_pc(arr, pc, *span, diags);
                        }
                    }
                    return self.top;
                }
                _ => {}
            }
        }
        let Some(target_class) = self.tenv.call_target_class(e) else {
            diags.push(Diag::resolve(
                format!("cannot resolve call target `{name}`"),
                *span,
            ));
            return self.top;
        };
        let entry_rc = self.callee_entry(&target_class, name);
        let entry = match &*entry_rc {
            CalleeResolution::Unknown => {
                diags.push(Diag::resolve(
                    format!("unknown method `{target_class}.{name}`"),
                    *span,
                ));
                return self.top;
            }
            CalleeResolution::Skip => return self.top,
            CalleeResolution::Checked(entry) => entry,
        };
        let (decl_class, callee, callee_info) = (entry.decl_class, entry.callee, entry.info);

        // Caller-side receiver location.
        let recv_loc = match recv {
            Some(r) => self.loc_of_id(r, diags),
            None => {
                if class_recv.is_none() {
                    self.this_loc_id(*span, diags)
                } else {
                    self.top // static call on a class
                }
            }
        };

        // Caller argument locations, in lockstep with the callee memo's
        // location vector: index 0 is the receiver, then one entry per
        // annotated parameter. Callee-side ordering was compared once in
        // the memo under the *callee's* lattice context.
        let mut caller_locs: Vec<LocRef> = Vec::new();
        if callee_info.this_loc.is_some() {
            caller_locs.push(recv_loc);
        }
        for ((p, memo), a) in callee.params.iter().zip(&entry.params).zip(args) {
            let Some(chain) = memo else {
                diags.push(Diag::missing_annot(
                    format!(
                        "callee `{}.{}` parameter `{}` is missing @LOC",
                        decl_class.name, callee.name, p.name
                    ),
                    *span,
                ));
                continue;
            };
            // This-rooted parameter locations constrain the argument
            // against the receiver's field hierarchy (§4.1.5).
            if let Some(chain) = chain {
                let mut expected = recv_loc;
                for (c, f) in chain {
                    expected = self.cache.extend_field_id(expected, c, f);
                }
                let arg_loc = self.loc_of_id(a, diags);
                match self.cache.compare_ids(&self.ctx(), expected, arg_loc) {
                    Some(Ordering::Less) | Some(Ordering::Equal) => {}
                    _ => {
                        let (arg_loc, expected) =
                            (self.cache.resolve(arg_loc), self.cache.resolve(expected));
                        diags.push(Diag::call_site(
                            format!(
                                "argument at {arg_loc} must be at or above {expected} required by callee parameter `{}`",
                                p.name
                            ),
                            *span,
                        ))
                    }
                }
            }
            caller_locs.push(self.loc_of_id(a, diags));
        }

        // Pairwise ordering constraints: callee pi ⊑ pj ⟹ caller ai ⊑ aj.
        // A call with fewer arguments than parameters truncates the caller
        // vector; pairs beyond it are exactly those the per-site pairing
        // never formed.
        for &(i, j) in &entry.less_pairs {
            let (i, j) = (i as usize, j as usize);
            if i >= caller_locs.len() || j >= caller_locs.len() {
                continue;
            }
            let caller_rel = self
                .cache
                .compare_ids(&self.ctx(), caller_locs[i], caller_locs[j]);
            if !matches!(caller_rel, Some(Ordering::Less) | Some(Ordering::Equal)) {
                let (ci, cj) = (
                    self.cache.resolve(caller_locs[i]),
                    self.cache.resolve(caller_locs[j]),
                );
                diags.push(Diag::call_site(
                    format!(
                        "call to `{}.{}` violates the callee's parameter ordering: {} must be at or below {}",
                        decl_class.name, callee.name, ci, cj
                    ),
                    *span,
                ));
            }
        }

        // Program-counter constraint (§4.1.4): under a non-⊤ caller pc,
        // every location the callee may write — taken from the eviction
        // analysis's write summaries — must sit strictly below the pc
        // (same shared location allowed). This realizes "the callee's
        // program counter location reflects the call site's context
        // constraint" without demanding translatable @PCLOC annotations.
        if pc != self.top {
            if let Some(summary) = entry.summary {
                let mut scratch = Diagnostics::new();
                for w in summary.may_writes.iter().chain(&summary.must_writes) {
                    let root = w.root_name();
                    // Map the written path's root into the caller.
                    let base = if root == "this" {
                        Some(recv_loc)
                    } else if let Some(i) = callee.params.iter().position(|p| p.name == root) {
                        let idx = if callee_info.this_loc.is_some() {
                            i + 1
                        } else {
                            i
                        };
                        caller_locs.get(idx).copied()
                    } else {
                        None // static roots handled via @GLOBALLOC checks
                    };
                    let Some(base) = base else { continue };
                    let base_class =
                        if root == "this" {
                            Some(target_class.clone())
                        } else {
                            callee.params.iter().find(|p| p.name == root).and_then(|p| {
                                match &p.ty {
                                    Type::Class(c) => Some(c.clone()),
                                    _ => None,
                                }
                            })
                        };
                    let dst = self.extend_along_path(base, base_class, &w.0[1..], &mut scratch);
                    match self.cache.compare_ids(&self.ctx(), dst, pc) {
                        Some(Ordering::Less) => {}
                        Some(Ordering::Equal) if self.cache.is_shared_id(&self.ctx(), dst) => {}
                        _ => {
                            let (dst, pc) = (self.cache.resolve(dst), self.cache.resolve(pc));
                            diags.push(Diag::implicit_flow(
                                    format!(
                                        "implicit flow: call to `{}.{}` under program counter {pc} may write {dst}",
                                        decl_class.name, callee.name
                                    ),
                                    *span,
                                ))
                        }
                    }
                }
            }
        }

        // Return-value location (CALL_SITE): GLB of caller locations of
        // parameters at or above the declared return location.
        let Some((covers, ret_chain)) = &entry.ret else {
            if callee.ret != Type::Void {
                diags.push(Diag::missing_annot(
                    format!(
                        "method `{}.{}` returns a value but has no @RETURNLOC",
                        decl_class.name, callee.name
                    ),
                    *span,
                ));
            }
            return self.top;
        };
        let mut result = self.top;
        for (covered, al) in covers.iter().zip(&caller_locs) {
            if *covered {
                result = self.meet(result, *al);
            }
        }
        // A this-rooted return location refines through the receiver's
        // fields.
        if let Some(chain) = ret_chain {
            let mut refined = recv_loc;
            for (c, f) in chain {
                refined = self.cache.extend_field_id(refined, c, f);
            }
            result = self.meet(result, refined);
        }
        result
    }

    /// The memoized call-site-independent view of `target_class.name`
    /// (see [`CalleeResolution`]).
    fn callee_entry(&self, target_class: &str, name: &str) -> Rc<CalleeResolution<'p>> {
        if let Some(hit) = self
            .callee_cache
            .borrow()
            .get(target_class)
            .and_then(|m| m.get(name))
        {
            return Rc::clone(hit);
        }
        let entry = Rc::new(self.build_callee_entry(target_class, name));
        self.callee_cache
            .borrow_mut()
            .entry(target_class.to_string())
            .or_default()
            .insert(name.to_string(), Rc::clone(&entry));
        entry
    }

    fn build_callee_entry(&self, target_class: &str, name: &str) -> CalleeResolution<'p> {
        let Some((decl_class, callee)) = self.program.resolve_method(target_class, name) else {
            return CalleeResolution::Unknown;
        };
        let Some(info) = self.lattices.method_info(&decl_class.name, &callee.name) else {
            return CalleeResolution::Skip;
        };
        if info.trusted {
            return CalleeResolution::Skip;
        }
        let callee_ctx = ModelCtx {
            method: &info.lattice,
            fields: &self.lattices.fields,
        };
        // Callee-side location vector: receiver first, then each
        // annotated parameter, in declaration order.
        let mut params = Vec::with_capacity(callee.params.len());
        let mut callee_locs: Vec<CompositeLoc> = Vec::new();
        if let Some(t) = &info.this_loc {
            callee_locs.push(CompositeLoc::method(t));
        }
        for p in &callee.params {
            let Some(annot) = &p.annots.loc else {
                params.push(None);
                continue;
            };
            let ploc = resolve_annot_with(annot, &info.lattice, &decl_class.name, self.program);
            params.push(Some(this_chain(info.this_loc.as_ref(), &ploc)));
            callee_locs.push(ploc);
        }
        let mut less_pairs = Vec::new();
        for i in 0..callee_locs.len() {
            for j in 0..callee_locs.len() {
                if i != j
                    && matches!(
                        compare(&callee_ctx, &callee_locs[i], &callee_locs[j]),
                        Some(Ordering::Less)
                    )
                {
                    less_pairs.push((i as u32, j as u32));
                }
            }
        }
        let ret = info.return_loc.as_ref().map(|ret_loc| {
            let covers = callee_locs
                .iter()
                .map(|cl| {
                    matches!(
                        compare(&callee_ctx, ret_loc, cl),
                        Some(Ordering::Less) | Some(Ordering::Equal)
                    )
                })
                .collect();
            (covers, this_chain(info.this_loc.as_ref(), ret_loc))
        });
        let summary = self
            .summaries
            .and_then(|s| s.get(&(decl_class.name.clone(), callee.name.clone())));
        CalleeResolution::Checked(CalleeEntry {
            decl_class,
            callee,
            info,
            params,
            less_pairs,
            ret,
            summary,
        })
    }

    /// Extends a caller-side location along a heap path of field names
    /// (array `element` hops keep the array's own location).
    fn extend_along_path(
        &self,
        base: LocRef,
        base_class: Option<String>,
        path: &[String],
        diags: &mut Diagnostics,
    ) -> LocRef {
        let mut loc = base;
        let mut class = base_class;
        for f in path {
            if f == "element" {
                continue;
            }
            let Some(c) = class.clone() else {
                return loc;
            };
            loc = self.field_loc_id(loc, &c, f, Span::dummy(), diags);
            class = self.program.field(&c, f).and_then(|fd| match &fd.ty {
                Type::Class(nc) => Some(nc.clone()),
                _ => None,
            });
        }
        loc
    }
}
