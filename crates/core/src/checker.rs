//! The flow-down location type checker (§4.1, Fig 4.1).
//!
//! Walks every method reachable from the event loop and checks that every
//! explicit value flow (assignments, field/array stores, returns) and every
//! implicit flow (conditionals, via the program-counter location) moves
//! values strictly *down* the composite-location lattice — with the single
//! exception of shared locations, which admit same-location flows (§4.1.8).

use crate::model::{effective_method_annots, resolve_annot_with, Lattices, MethodInfo, ModelCtx};
use sjava_analysis::callgraph::{CallGraph, MethodRef};
use sjava_analysis::jtype::TypeEnv;
use sjava_analysis::written::MethodSummary;
use sjava_lattice::{compare, is_shared, CompositeLoc, Elem, LocInterner};
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

/// Checks every reachable method's flows; diagnostics go to `diags`.
/// `summaries` (from the eviction analysis) supply each callee's write
/// effects for the implicit-flow call rule.
///
/// Methods are independent of each other once the eviction summaries are
/// in hand, so they are fanned out across `sjava_par` workers. Each
/// worker checks into a private `Diagnostics` buffer; the buffers are
/// merged back in call-graph topological order, which makes the output
/// byte-for-byte identical at any thread count (`SJAVA_THREADS=1` vs N).
pub fn check_flows(
    program: &Program,
    lattices: &Lattices,
    cg: &CallGraph,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
    diags: &mut Diagnostics,
) {
    let per_method = sjava_par::run_indexed(cg.topo.len(), |i| {
        check_method_flows(program, lattices, &cg.topo[i], summaries)
    });
    for d in per_method {
        diags.extend(d);
    }
}

/// Flow-checks a single method into a private diagnostics buffer — the
/// per-method unit of [`check_flows`]'s fan-out, exposed so the
/// incremental layer can re-check only the dirtied call-graph cone and
/// replay cached buffers for the rest. Trusted or unresolvable methods
/// produce an empty buffer.
pub fn check_method_flows(
    program: &Program,
    lattices: &Lattices,
    mref: &MethodRef,
    summaries: &BTreeMap<MethodRef, MethodSummary>,
) -> Diagnostics {
    let mut local = Diagnostics::new();
    let Some((decl_class, method)) = program.resolve_method(&mref.0, &mref.1) else {
        return local;
    };
    let Some(info) = lattices.method_info(&decl_class.name, &method.name) else {
        return local;
    };
    if info.trusted {
        return local;
    }
    let mut checker = MethodChecker::new(program, lattices, &decl_class.name, method, info)
        .with_summaries(summaries);
    checker.run(&mut local);
    local
}

/// Collects the static variable→location environment of a method: the
/// parameters' `@LOC`s plus every local declaration's `@LOC` (annotations
/// are flow-insensitive, so the environment is fixed).
pub fn collect_var_locs(
    program: &Program,
    class: &str,
    method: &MethodDecl,
    info: &MethodInfo,
    diags: &mut Diagnostics,
) -> HashMap<String, CompositeLoc> {
    let mut env = HashMap::new();
    for p in &method.params {
        if let Some(annot) = &p.annots.loc {
            env.insert(
                p.name.clone(),
                resolve_annot_with(annot, &info.lattice, class, program),
            );
        } else {
            diags.push(Diag::missing_annot(
                format!("parameter `{}` is missing a @LOC annotation", p.name),
                p.span,
            ));
        }
    }
    collect_block(program, class, info, &method.body, &mut env, diags);
    env
}

fn collect_block(
    program: &Program,
    class: &str,
    info: &MethodInfo,
    block: &Block,
    env: &mut HashMap<String, CompositeLoc>,
    diags: &mut Diagnostics,
) {
    for s in &block.stmts {
        match s {
            Stmt::VarDecl {
                annots, name, span, ..
            } => {
                if let Some(annot) = &annots.loc {
                    let loc = resolve_annot_with(annot, &info.lattice, class, program);
                    if let Some(prev) = env.get(name) {
                        if *prev != loc {
                            diags.push(Diag::resolve(
                                format!("variable `{name}` redeclared with a different location"),
                                *span,
                            ));
                        }
                    }
                    env.insert(name.clone(), loc);
                } else {
                    diags.push(Diag::missing_annot(
                        format!("variable `{name}` is missing a @LOC annotation"),
                        *span,
                    ));
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_block(program, class, info, then_blk, env, diags);
                if let Some(e) = else_blk {
                    collect_block(program, class, info, e, env, diags);
                }
            }
            Stmt::While { body, .. } => collect_block(program, class, info, body, env, diags),
            Stmt::For {
                init, update, body, ..
            } => {
                let tmp_block = |s: &Stmt| Block {
                    stmts: vec![s.clone()],
                    span: s.span(),
                };
                if let Some(i) = init {
                    collect_block(program, class, info, &tmp_block(i), env, diags);
                }
                if let Some(u) = update {
                    collect_block(program, class, info, &tmp_block(u), env, diags);
                }
                collect_block(program, class, info, body, env, diags);
            }
            Stmt::Block(b) => collect_block(program, class, info, b, env, diags),
            _ => {}
        }
    }
}

/// Flow-checks one method.
pub struct MethodChecker<'p> {
    program: &'p Program,
    lattices: &'p Lattices,
    class: String,
    method: &'p MethodDecl,
    info: &'p MethodInfo,
    tenv: TypeEnv<'p>,
    env: HashMap<String, CompositeLoc>,
    env_ready: bool,
    summaries: Option<&'p BTreeMap<MethodRef, MethodSummary>>,
    /// Per-method interner memoizing ⊑ and ⊓ queries against this
    /// method's lattice context (the same few locations are compared at
    /// every assignment, branch and call site).
    cache: LocInterner,
}

impl<'p> MethodChecker<'p> {
    /// Creates a checker for `method` of `class`.
    pub fn new(
        program: &'p Program,
        lattices: &'p Lattices,
        class: &str,
        method: &'p MethodDecl,
        info: &'p MethodInfo,
    ) -> Self {
        let mut tenv = TypeEnv::for_method(program, class, method);
        tenv.bind_block(&method.body);
        MethodChecker {
            program,
            lattices,
            class: class.to_string(),
            method,
            info,
            tenv,
            env: HashMap::new(),
            env_ready: false,
            summaries: None,
            cache: LocInterner::new(),
        }
    }

    /// Supplies callee write summaries for the implicit-flow call rule.
    pub fn with_summaries(mut self, summaries: &'p BTreeMap<MethodRef, MethodSummary>) -> Self {
        self.summaries = Some(summaries);
        self
    }

    fn ctx(&self) -> ModelCtx<'_> {
        ModelCtx {
            method: &self.info.lattice,
            fields: &self.lattices.fields,
        }
    }

    /// The lattice context of this method (method + field lattices).
    pub fn model_ctx(&self) -> ModelCtx<'_> {
        self.ctx()
    }

    /// Public access to lvalue locations (used by the shared-location
    /// extension).
    pub fn loc_of_lvalue_public(&self, lv: &LValue, diags: &mut Diagnostics) -> CompositeLoc {
        self.loc_of_lvalue(lv, diags)
    }

    /// Runs all flow checks on the method body.
    pub fn run(&mut self, diags: &mut Diagnostics) {
        self.env = collect_var_locs(self.program, &self.class, self.method, self.info, diags);
        self.env_ready = true;
        let pc = self.info.pc_loc.clone().unwrap_or(CompositeLoc::Top);
        self.check_block(&self.method.body, &pc, diags);
    }

    /// The location of `this` in the current method.
    fn this_loc(&self, span: Span, diags: &mut Diagnostics) -> CompositeLoc {
        match &self.info.this_loc {
            Some(t) => CompositeLoc::method(t),
            None => {
                diags.push(Diag::missing_annot(
                    format!(
                        "method `{}.{}` accesses `this` but has no @THISLOC",
                        self.class, self.method.name
                    ),
                    span,
                ));
                CompositeLoc::Top
            }
        }
    }

    /// The composite location of an expression (the typing rules of
    /// Fig 4.1).
    pub fn loc_of(&self, e: &Expr, diags: &mut Diagnostics) -> CompositeLoc {
        match e {
            // LITERAL: constants live at ⊤.
            Expr::IntLit { .. }
            | Expr::FloatLit { .. }
            | Expr::BoolLit { .. }
            | Expr::StrLit { .. }
            | Expr::Null { .. } => CompositeLoc::Top,
            Expr::This { span } => self.this_loc(*span, diags),
            Expr::Var { name, span } => {
                if let Some(loc) = self.env.get(name) {
                    loc.clone()
                } else if self.program.field(&self.class, name).is_some() {
                    // Unqualified field access: ⟨thisloc, fieldloc⟩.
                    let base = self.this_loc(*span, diags);
                    self.field_loc(&base, &self.class, name, *span, diags)
                } else {
                    if self.env_ready {
                        diags.push(Diag::resolve(
                            format!("variable `{name}` has no location"),
                            *span,
                        ));
                    }
                    CompositeLoc::Top
                }
            }
            // FIELD_READ: L(e) ⊕ loc(f).
            Expr::Field { base, field, span } => {
                let base_loc = self.loc_of(base, diags);
                let Some(Type::Class(c)) = self.tenv.ty(base) else {
                    diags.push(Diag::resolve(
                        format!("cannot resolve receiver type for field `{field}`"),
                        *span,
                    ));
                    return CompositeLoc::Top;
                };
                self.field_loc(&base_loc, &c, field, *span, diags)
            }
            Expr::StaticField { class, field, span } => {
                let Some(fd) = self.program.field(class, field) else {
                    diags.push(Diag::resolve(
                        format!("unknown static field `{class}.{field}`"),
                        *span,
                    ));
                    return CompositeLoc::Top;
                };
                if fd.is_final {
                    // Constants live at ⊤ (§3.6).
                    CompositeLoc::Top
                } else if let Some(g) = &self.info.global_loc {
                    let base = CompositeLoc::method(g);
                    self.field_loc(&base, class, field, *span, diags)
                } else {
                    diags.push(Diag::missing_annot(
                        format!("access to non-final static `{class}.{field}` requires @GLOBALLOC"),
                        *span,
                    ));
                    CompositeLoc::Top
                }
            }
            // ARRAY_VAR: glb of the array's and the index's locations.
            Expr::Index { base, index, .. } => {
                let a = self.loc_of(base, diags);
                let i = self.loc_of(index, diags);
                self.cache.glb(&self.ctx(), &a, &i)
            }
            // Array lengths are fixed at allocation time: constants.
            Expr::Length { .. } => CompositeLoc::Top,
            Expr::Call { .. } => self.check_call(e, &CompositeLoc::Top, true, diags),
            // Fresh allocations are owned and may be placed anywhere.
            Expr::New { .. } | Expr::NewArray { .. } => CompositeLoc::Top,
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => self.loc_of(operand, diags),
            // OPERATION: glb of the operand locations.
            Expr::Binary { lhs, rhs, .. } => {
                let a = self.loc_of(lhs, diags);
                let b = self.loc_of(rhs, diags);
                self.cache.glb(&self.ctx(), &a, &b)
            }
        }
    }

    fn field_loc(
        &self,
        base: &CompositeLoc,
        class: &str,
        field: &str,
        span: Span,
        diags: &mut Diagnostics,
    ) -> CompositeLoc {
        let Some(fi) = self.lattices.field_info(self.program, class, field) else {
            diags.push(Diag::resolve(
                format!("unknown field `{class}.{field}`"),
                span,
            ));
            return CompositeLoc::Top;
        };
        let Some(loc_name) = fi.loc_name else {
            diags.push(Diag::missing_annot(
                format!("field `{class}.{field}` is missing a @LOC annotation"),
                span,
            ));
            return CompositeLoc::Top;
        };
        base.extend_field(&fi.declaring_class, &loc_name)
    }

    fn loc_of_lvalue(&self, lv: &LValue, diags: &mut Diagnostics) -> CompositeLoc {
        match lv {
            LValue::Var { name, span } => {
                if let Some(l) = self.env.get(name) {
                    l.clone()
                } else if self.program.field(&self.class, name).is_some() {
                    let base = self.this_loc(*span, diags);
                    self.field_loc(&base, &self.class, name, *span, diags)
                } else {
                    diags.push(Diag::resolve(
                        format!("variable `{name}` has no location"),
                        *span,
                    ));
                    CompositeLoc::Top
                }
            }
            LValue::Field { base, field, span } => {
                let base_loc = self.loc_of(base, diags);
                let Some(Type::Class(c)) = self.tenv.ty(base) else {
                    diags.push(Diag::resolve(
                        format!("cannot resolve receiver type for field `{field}`"),
                        *span,
                    ));
                    return CompositeLoc::Top;
                };
                self.field_loc(&base_loc, &c, field, *span, diags)
            }
            LValue::Index { base, .. } => self.loc_of(base, diags),
            LValue::StaticField { class, field, span } => {
                if let Some(g) = &self.info.global_loc {
                    let base = CompositeLoc::method(g);
                    self.field_loc(&base, class, field, *span, diags)
                } else {
                    diags.push(Diag::missing_annot(
                        format!("write to static `{class}.{field}` requires @GLOBALLOC"),
                        *span,
                    ));
                    CompositeLoc::Top
                }
            }
        }
    }

    /// The flow-down rule: `dst ⊏ src`, or same shared location.
    fn check_flow(
        &self,
        src: &CompositeLoc,
        dst: &CompositeLoc,
        span: Span,
        what: &str,
        diags: &mut Diagnostics,
    ) {
        match self.cache.compare(&self.ctx(), dst, src) {
            Some(Ordering::Less) => {}
            Some(Ordering::Equal) if is_shared(&self.ctx(), dst) => {}
            _ => {
                let mut d = Diag::flow_up(
                    format!(
                        "{what} violates the flow-down rule: {src} does not flow down to {dst}"
                    ),
                    span,
                );
                if let Some(ls) = self.info.lattice_span {
                    d = d.with_label(ls, "method lattice declared here");
                }
                diags.push(d);
            }
        }
    }

    /// Implicit-flow constraint: the destination must sit strictly below
    /// the program-counter location (or be the same shared location).
    fn check_pc(&self, dst: &CompositeLoc, pc: &CompositeLoc, span: Span, diags: &mut Diagnostics) {
        if *pc == CompositeLoc::Top {
            return;
        }
        match self.cache.compare(&self.ctx(), dst, pc) {
            Some(Ordering::Less) => {}
            Some(Ordering::Equal) if is_shared(&self.ctx(), dst) => {}
            _ => {
                diags.push(Diag::implicit_flow(
                    format!(
                        "implicit flow: assignment to {dst} under program counter {pc} is not allowed"
                    ),
                    span,
                ));
            }
        }
    }

    fn check_block(&self, block: &Block, pc: &CompositeLoc, diags: &mut Diagnostics) {
        for s in &block.stmts {
            self.check_stmt(s, pc, diags);
        }
    }

    fn check_stmt(&self, stmt: &Stmt, pc: &CompositeLoc, diags: &mut Diagnostics) {
        match stmt {
            Stmt::VarDecl {
                name, init, span, ..
            } => {
                if let Some(e) = init {
                    let src = self.loc_of(e, diags);
                    if let Some(dst) = self.env.get(name).cloned() {
                        self.check_flow(&src, &dst, *span, "initialization", diags);
                        self.check_pc(&dst, pc, *span, diags);
                    }
                    self.check_subexprs(e, pc, diags);
                }
            }
            Stmt::Assign { lhs, rhs, span } => {
                let src = self.loc_of(rhs, diags);
                let dst = self.loc_of_lvalue(lhs, diags);
                self.check_flow(&src, &dst, *span, "assignment", diags);
                self.check_pc(&dst, pc, *span, diags);
                // ARRAY_ASG: the array must sit below the index (§4.1.3).
                if let LValue::Index { base, index, .. } = lhs {
                    let arr = self.loc_of(base, diags);
                    let idx = self.loc_of(index, diags);
                    match self.cache.compare(&self.ctx(), &arr, &idx) {
                        Some(Ordering::Less) => {}
                        _ => diags.push(Diag::flow_up(
                            format!(
                                "array store: array location {arr} must be lower than index location {idx}"
                            ),
                            *span,
                        )),
                    }
                }
                self.check_subexprs(rhs, pc, diags);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.check_subexprs(cond, pc, diags);
                let c = self.loc_of(cond, diags);
                let pc2 = self.cache.glb(&self.ctx(), pc, &c);
                self.check_block(then_blk, &pc2, diags);
                if let Some(e) = else_blk {
                    self.check_block(e, &pc2, diags);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.check_subexprs(cond, pc, diags);
                let c = self.loc_of(cond, diags);
                let pc2 = self.cache.glb(&self.ctx(), pc, &c);
                self.check_block(body, &pc2, diags);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.check_stmt(i, pc, diags);
                }
                let pc2 = if let Some(c) = cond {
                    self.check_subexprs(c, pc, diags);
                    let cl = self.loc_of(c, diags);
                    self.cache.glb(&self.ctx(), pc, &cl)
                } else {
                    pc.clone()
                };
                if let Some(u) = update {
                    self.check_stmt(u, &pc2, diags);
                }
                self.check_block(body, &pc2, diags);
            }
            Stmt::Return { value, span } => {
                if let Some(e) = value {
                    self.check_subexprs(e, pc, diags);
                    let src = self.loc_of(e, diags);
                    match &self.info.return_loc {
                        Some(rl) => {
                            // RETURN: the declared return location must be
                            // at or below the returned value.
                            match self.cache.compare(&self.ctx(), rl, &src) {
                                Some(Ordering::Less) | Some(Ordering::Equal) => {}
                                _ => diags.push(Diag::flow_up(
                                    format!(
                                        "return value at {src} is below the declared @RETURNLOC {rl}"
                                    ),
                                    *span,
                                )),
                            }
                        }
                        None => diags.push(Diag::missing_annot(
                            format!(
                                "method `{}.{}` returns a value but has no @RETURNLOC",
                                self.class, self.method.name
                            ),
                            *span,
                        )),
                    }
                }
            }
            Stmt::ExprStmt { expr, .. } => {
                if matches!(expr, Expr::Call { .. }) {
                    self.check_call(expr, pc, false, diags);
                    // Argument sub-expressions still need checking.
                    if let Expr::Call { args, recv, .. } = expr {
                        for a in args {
                            self.check_subexprs(a, pc, diags);
                        }
                        if let Some(r) = recv {
                            self.check_subexprs(r, pc, diags);
                        }
                    }
                } else {
                    self.check_subexprs(expr, pc, diags);
                }
            }
            Stmt::Block(b) => self.check_block(b, pc, diags),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }

    /// Checks calls nested inside an expression tree.
    fn check_subexprs(&self, e: &Expr, pc: &CompositeLoc, diags: &mut Diagnostics) {
        match e {
            Expr::Call { args, recv, .. } => {
                self.check_call(e, pc, false, diags);
                for a in args {
                    self.check_subexprs(a, pc, diags);
                }
                if let Some(r) = recv {
                    self.check_subexprs(r, pc, diags);
                }
            }
            Expr::Field { base, .. } | Expr::Length { base, .. } => {
                self.check_subexprs(base, pc, diags)
            }
            Expr::Index { base, index, .. } => {
                self.check_subexprs(base, pc, diags);
                self.check_subexprs(index, pc, diags);
            }
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
                self.check_subexprs(operand, pc, diags)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.check_subexprs(lhs, pc, diags);
                self.check_subexprs(rhs, pc, diags);
            }
            Expr::NewArray { len, .. } => self.check_subexprs(len, pc, diags),
            _ => {}
        }
    }

    /// The CALL_SITE rule (§4.1.5): checks argument ordering constraints,
    /// the program-counter constraint, and computes the caller-side
    /// return-value location.
    fn check_call(
        &self,
        e: &Expr,
        pc: &CompositeLoc,
        _as_value: bool,
        diags: &mut Diagnostics,
    ) -> CompositeLoc {
        let Expr::Call {
            recv,
            class_recv,
            name,
            args,
            span,
        } = e
        else {
            return CompositeLoc::Top;
        };
        // Intrinsics.
        if let Some(c) = class_recv {
            match c.as_str() {
                "Device" => return CompositeLoc::Top,
                "Out" | "System" => return CompositeLoc::Top,
                "Math" => {
                    let mut loc = CompositeLoc::Top;
                    for a in args {
                        let al = self.loc_of(a, diags);
                        loc = self.cache.glb(&self.ctx(), &loc, &al);
                    }
                    return loc;
                }
                "SSJavaArray" => {
                    // insert(arr, v): the new value enters the array's
                    // highest position, so it must come from strictly
                    // higher (§4.1.3).
                    if name == "insert" && args.len() == 2 {
                        let arr = self.loc_of(&args[0], diags);
                        let v = self.loc_of(&args[1], diags);
                        self.check_flow(&v, &arr, *span, "array insert", diags);
                        self.check_pc(&arr, pc, *span, diags);
                    }
                    if name == "clear" {
                        if let Some(a0) = args.first() {
                            let arr = self.loc_of(a0, diags);
                            self.check_pc(&arr, pc, *span, diags);
                        }
                    }
                    return CompositeLoc::Top;
                }
                _ => {}
            }
        }
        let Some(target_class) = self.tenv.call_target_class(e) else {
            diags.push(Diag::resolve(
                format!("cannot resolve call target `{name}`"),
                *span,
            ));
            return CompositeLoc::Top;
        };
        let Some((decl_class, callee)) = self.program.resolve_method(&target_class, name) else {
            diags.push(Diag::resolve(
                format!("unknown method `{target_class}.{name}`"),
                *span,
            ));
            return CompositeLoc::Top;
        };
        let Some(callee_info) = self.lattices.method_info(&decl_class.name, &callee.name) else {
            return CompositeLoc::Top;
        };
        if callee_info.trusted {
            return CompositeLoc::Top;
        }
        let callee_annots = effective_method_annots(decl_class, callee);
        let callee_ctx = ModelCtx {
            method: &callee_info.lattice,
            fields: &self.lattices.fields,
        };

        // Caller-side receiver location.
        let recv_loc = match recv {
            Some(r) => self.loc_of(r, diags),
            None => {
                if class_recv.is_none() {
                    self.this_loc(*span, diags)
                } else {
                    CompositeLoc::Top // static call on a class
                }
            }
        };

        // Pair up callee parameter locations with caller argument
        // locations. Index 0 is the receiver.
        let mut callee_locs: Vec<CompositeLoc> = Vec::new();
        let mut caller_locs: Vec<CompositeLoc> = Vec::new();
        if let Some(t) = &callee_info.this_loc {
            callee_locs.push(CompositeLoc::method(t));
            caller_locs.push(recv_loc.clone());
        }
        let _ = callee_annots;
        for (p, a) in callee.params.iter().zip(args) {
            let Some(annot) = &p.annots.loc else {
                diags.push(Diag::missing_annot(
                    format!(
                        "callee `{}.{}` parameter `{}` is missing @LOC",
                        decl_class.name, callee.name, p.name
                    ),
                    *span,
                ));
                continue;
            };
            let ploc =
                resolve_annot_with(annot, &callee_info.lattice, &decl_class.name, self.program);
            // This-rooted parameter locations constrain the argument
            // against the receiver's field hierarchy (§4.1.5).
            if let Some(t) = &callee_info.this_loc {
                let elems = ploc.elems();
                if elems.len() > 1 && elems[0] == Elem::method(t.clone()) {
                    let mut expected = recv_loc.clone();
                    for f in &elems[1..] {
                        if let sjava_lattice::Space::Field(c) = &f.space {
                            expected = expected.extend_field(c, &f.name);
                        }
                    }
                    let arg_loc = self.loc_of(a, diags);
                    match self.cache.compare(&self.ctx(), &expected, &arg_loc) {
                        Some(Ordering::Less) | Some(Ordering::Equal) => {}
                        _ => diags.push(Diag::call_site(
                            format!(
                                "argument at {arg_loc} must be at or above {expected} required by callee parameter `{}`",
                                p.name
                            ),
                            *span,
                        )),
                    }
                }
            }
            callee_locs.push(ploc);
            caller_locs.push(self.loc_of(a, diags));
        }

        // Pairwise ordering constraints: callee pi ⊑ pj ⟹ caller ai ⊑ aj.
        for i in 0..callee_locs.len() {
            for j in 0..callee_locs.len() {
                if i == j {
                    continue;
                }
                let callee_rel = compare(&callee_ctx, &callee_locs[i], &callee_locs[j]);
                if matches!(callee_rel, Some(Ordering::Less)) {
                    let caller_rel =
                        self.cache
                            .compare(&self.ctx(), &caller_locs[i], &caller_locs[j]);
                    if !matches!(caller_rel, Some(Ordering::Less) | Some(Ordering::Equal)) {
                        diags.push(Diag::call_site(
                            format!(
                                "call to `{}.{}` violates the callee's parameter ordering: {} must be at or below {}",
                                decl_class.name, callee.name, caller_locs[i], caller_locs[j]
                            ),
                            *span,
                        ));
                    }
                }
            }
        }

        // Program-counter constraint (§4.1.4): under a non-⊤ caller pc,
        // every location the callee may write — taken from the eviction
        // analysis's write summaries — must sit strictly below the pc
        // (same shared location allowed). This realizes "the callee's
        // program counter location reflects the call site's context
        // constraint" without demanding translatable @PCLOC annotations.
        if *pc != CompositeLoc::Top {
            if let Some(summaries) = self.summaries {
                let key = (decl_class.name.clone(), callee.name.clone());
                if let Some(summary) = summaries.get(&key) {
                    let mut scratch = Diagnostics::new();
                    for w in summary.may_writes.iter().chain(&summary.must_writes) {
                        let root = w.root_name();
                        // Map the written path's root into the caller.
                        let base = if root == "this" {
                            Some(recv_loc.clone())
                        } else if let Some(i) = callee.params.iter().position(|p| p.name == root) {
                            let idx = if callee_info.this_loc.is_some() {
                                i + 1
                            } else {
                                i
                            };
                            caller_locs.get(idx).cloned()
                        } else {
                            None // static roots handled via @GLOBALLOC checks
                        };
                        let Some(base) = base else { continue };
                        let base_class = if root == "this" {
                            Some(target_class.clone())
                        } else {
                            callee.params.iter().find(|p| p.name == root).and_then(|p| {
                                match &p.ty {
                                    Type::Class(c) => Some(c.clone()),
                                    _ => None,
                                }
                            })
                        };
                        let dst = self.extend_along_path(base, base_class, &w.0[1..], &mut scratch);
                        match self.cache.compare(&self.ctx(), &dst, pc) {
                            Some(Ordering::Less) => {}
                            Some(Ordering::Equal) if is_shared(&self.ctx(), &dst) => {}
                            _ => diags.push(Diag::implicit_flow(
                                format!(
                                    "implicit flow: call to `{}.{}` under program counter {pc} may write {dst}",
                                    decl_class.name, callee.name
                                ),
                                *span,
                            )),
                        }
                    }
                }
            }
        }

        // Return-value location (CALL_SITE): GLB of caller locations of
        // parameters at or above the declared return location.
        let Some(ret_loc) = &callee_info.return_loc else {
            if callee.ret != Type::Void {
                diags.push(Diag::missing_annot(
                    format!(
                        "method `{}.{}` returns a value but has no @RETURNLOC",
                        decl_class.name, callee.name
                    ),
                    *span,
                ));
            }
            return CompositeLoc::Top;
        };
        let mut result = CompositeLoc::Top;
        for (cl, al) in callee_locs.iter().zip(&caller_locs) {
            if matches!(
                compare(&callee_ctx, ret_loc, cl),
                Some(Ordering::Less) | Some(Ordering::Equal)
            ) {
                result = self.cache.glb(&self.ctx(), &result, al);
            }
        }
        // A this-rooted return location refines through the receiver's
        // fields.
        if let Some(t) = &callee_info.this_loc {
            let elems = ret_loc.elems();
            if elems.len() > 1 && elems[0] == Elem::method(t.clone()) {
                let mut refined = recv_loc.clone();
                for f in &elems[1..] {
                    if let sjava_lattice::Space::Field(c) = &f.space {
                        refined = refined.extend_field(c, &f.name);
                    }
                }
                result = self.cache.glb(&self.ctx(), &result, &refined);
            }
        }
        result
    }

    /// Extends a caller-side location along a heap path of field names
    /// (array `element` hops keep the array's own location).
    fn extend_along_path(
        &self,
        base: CompositeLoc,
        base_class: Option<String>,
        path: &[String],
        diags: &mut Diagnostics,
    ) -> CompositeLoc {
        let mut loc = base;
        let mut class = base_class;
        for f in path {
            if f == "element" {
                continue;
            }
            let Some(c) = class.clone() else {
                return loc;
            };
            loc = self.field_loc(&loc, &c, f, Span::dummy(), diags);
            class = self.program.field(&c, f).and_then(|fd| match &fd.ty {
                Type::Class(nc) => Some(nc.clone()),
                _ => None,
            });
        }
        loc
    }
}
