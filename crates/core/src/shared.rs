//! Shared-location eviction extension (§4.2.2).
//!
//! Shared locations admit same-location flows, so the plain eviction
//! analysis cannot guarantee their values leave. This pass checks that
//! every *field* carrying a shared location that the event loop reads is
//! definitely *cleared* — overwritten with a value from a strictly higher
//! location — at least once per loop iteration. Locals declared inside the
//! loop body are fresh each iteration and are covered by the
//! definite-assignment check of the base analysis.

use crate::checker::MethodChecker;
use crate::model::Lattices;
use sjava_analysis::callgraph::{CallGraph, MethodRef};
use sjava_analysis::jtype::TypeEnv;
use sjava_analysis::shard::ShardInput;
use sjava_lattice::{compare, is_shared};
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// A shared-location member: a field `(class, field)` whose declared
/// location is shared.
pub type SharedMember = (String, String);

/// Checks the shared-location clearing condition over the event loop.
///
/// Whole-program by construction: the per-method clears/reads summaries
/// feed each other bottom-up and the final verdict reads them all at the
/// loop, so callers hand it [`ShardInput::whole`]. In the sharded driver
/// this pass runs driver-side only — it emits no per-method diagnostics,
/// so the shard workers have nothing to contribute.
pub fn check_shared(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    cg: &CallGraph,
    diags: &mut Diagnostics,
) {
    let program = shard.program();
    let members = shared_members(program, lattices);
    if members.is_empty() {
        return;
    }

    // Per-method "definitely clears" summaries, bottom-up.
    let mut clears: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
    let mut reads: BTreeMap<MethodRef, BTreeSet<SharedMember>> = BTreeMap::new();
    for mref in &cg.topo {
        if let Some((c, r)) =
            method_shared_summary(shard, lattices, mref, &members, &clears, &reads)
        {
            clears.insert(mref.clone(), c);
            reads.insert(mref.clone(), r);
        }
    }

    check_shared_loop(program, lattices, cg, &members, &clears, &reads, diags);
}

/// Identifies every field whose declared location is shared. Depends only
/// on class interfaces, so the incremental layer recomputes it per check
/// (it is cheap) rather than caching it.
pub fn shared_members(program: &Program, lattices: &Lattices) -> BTreeSet<SharedMember> {
    let mut members: BTreeSet<SharedMember> = BTreeSet::new();
    for class in &program.classes {
        let Some(lat) = lattices.field_lattice(&class.name) else {
            continue;
        };
        for f in &class.fields {
            if let Some(annot) = &f.annots.loc {
                if let Some(first) = annot.elems.first() {
                    if let Some(id) = lat.get(&first.name) {
                        if lat.is_shared(id) {
                            members.insert((class.name.clone(), f.name.clone()));
                        }
                    }
                }
            }
        }
    }
    members
}

/// Computes one method's shared-location summary — its definitely-cleared
/// and read member sets — given the summaries of its callees (which must
/// already be in `clears`/`reads`; the caller iterates bottom-up).
/// Trusted methods yield empty sets; unresolvable references yield
/// `None`. This is the per-method unit the incremental layer caches.
pub fn method_shared_summary(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    mref: &MethodRef,
    members: &BTreeSet<SharedMember>,
    clears: &BTreeMap<MethodRef, BTreeSet<SharedMember>>,
    reads: &BTreeMap<MethodRef, BTreeSet<SharedMember>>,
) -> Option<(BTreeSet<SharedMember>, BTreeSet<SharedMember>)> {
    let program = shard.program();
    let (decl_class, method) = program.resolve_method(&mref.0, &mref.1)?;
    let info = lattices.method_info(&decl_class.name, &method.name)?;
    if info.trusted {
        return Some((BTreeSet::new(), BTreeSet::new()));
    }
    let mut checker = MethodChecker::new(shard, lattices, &decl_class.name, method, info);
    let mut scratch = Diagnostics::new();
    checker.run(&mut scratch); // populate env; flow errors already reported elsewhere
    let mut tenv = TypeEnv::for_method(program, &decl_class.name, method);
    tenv.bind_block(&method.body);
    let mut walker = Walker {
        program,
        lattices,
        checker: &checker,
        tenv,
        members,
        clears,
        reads_summary: reads,
        reads: BTreeSet::new(),
    };
    let got = walker.walk_block(&method.body, BTreeSet::new());
    Some((got, walker.reads))
}

/// The event-loop check: every shared member read in the loop must be
/// definitely cleared each iteration. Reads every summary, so the
/// incremental layer always recomputes it.
pub fn check_shared_loop(
    program: &Program,
    lattices: &Lattices,
    cg: &CallGraph,
    members: &BTreeSet<SharedMember>,
    clears: &BTreeMap<MethodRef, BTreeSet<SharedMember>>,
    reads: &BTreeMap<MethodRef, BTreeSet<SharedMember>>,
    diags: &mut Diagnostics,
) {
    let Some((_, entry_method)) = program.resolve_method(&cg.entry.0, &cg.entry.1) else {
        return;
    };
    let Some(info) = lattices.method_info(&cg.entry.0, &cg.entry.1) else {
        return;
    };
    let Some(loop_body) = find_event_loop_body(&entry_method.body) else {
        return;
    };
    // The loop walk checks only the entry method's body; a whole view
    // over the driver's program is exactly its shard input.
    let view = ShardInput::whole(program);
    let mut checker = MethodChecker::new(&view, lattices, &cg.entry.0, entry_method, info);
    let mut scratch = Diagnostics::new();
    checker.run(&mut scratch);
    let mut tenv = TypeEnv::for_method(program, &cg.entry.0, entry_method);
    tenv.bind_block(&entry_method.body);
    let mut walker = Walker {
        program,
        lattices,
        checker: &checker,
        tenv,
        members,
        clears,
        reads_summary: reads,
        reads: BTreeSet::new(),
    };
    let cleared = walker.walk_block(loop_body, BTreeSet::new());
    for m in walker.reads.iter() {
        if !cleared.contains(m) {
            diags.push(Diag::shared_accum(
                format!(
                    "shared location of `{}.{}` is read but not cleared (written from a higher location) every event-loop iteration",
                    m.0, m.1
                ),
                cg.event_loop_span,
            ));
        }
    }
}

fn find_event_loop_body(block: &Block) -> Option<&Block> {
    for s in &block.stmts {
        match s {
            Stmt::While {
                kind: LoopKind::EventLoop,
                body,
                ..
            } => return Some(body),
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                if let Some(b) = find_event_loop_body(body) {
                    return Some(b);
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if let Some(b) = find_event_loop_body(then_blk) {
                    return Some(b);
                }
                if let Some(e) = else_blk {
                    if let Some(b) = find_event_loop_body(e) {
                        return Some(b);
                    }
                }
            }
            Stmt::Block(b) => {
                if let Some(x) = find_event_loop_body(b) {
                    return Some(x);
                }
            }
            _ => {}
        }
    }
    None
}

struct Walker<'p, 'a> {
    program: &'p Program,
    lattices: &'p Lattices,
    checker: &'a MethodChecker<'p>,
    tenv: TypeEnv<'p>,
    members: &'a BTreeSet<SharedMember>,
    clears: &'a BTreeMap<MethodRef, BTreeSet<SharedMember>>,
    reads_summary: &'a BTreeMap<MethodRef, BTreeSet<SharedMember>>,
    reads: BTreeSet<SharedMember>,
}

impl Walker<'_, '_> {
    /// Walks a block, threading the definitely-cleared set; returns the
    /// set at the end.
    fn walk_block(
        &mut self,
        block: &Block,
        mut cleared: BTreeSet<SharedMember>,
    ) -> BTreeSet<SharedMember> {
        for s in &block.stmts {
            cleared = self.walk_stmt(s, cleared);
        }
        cleared
    }

    fn member_of_lvalue(&self, lv: &LValue) -> Option<SharedMember> {
        match lv {
            LValue::Var { name, .. } => {
                if self.tenv.local(name).is_none() {
                    self.member_field(&self.tenv.class.clone(), name)
                } else {
                    None
                }
            }
            LValue::Field { base, field, .. } => {
                let Some(Type::Class(c)) = self.tenv.ty(base) else {
                    return None;
                };
                self.member_field(&c, field)
            }
            LValue::Index { base, .. } => {
                // Arrays with shared locations: the member is the array
                // field itself.
                match base {
                    Expr::Field {
                        base: b2, field, ..
                    } => {
                        let Some(Type::Class(c)) = self.tenv.ty(b2) else {
                            return None;
                        };
                        self.member_field(&c, field)
                    }
                    Expr::Var { name, .. } if self.tenv.local(name).is_none() => {
                        self.member_field(&self.tenv.class.clone(), name)
                    }
                    _ => None,
                }
            }
            LValue::StaticField { class, field, .. } => self.member_field(class, field),
        }
    }

    fn member_field(&self, class: &str, field: &str) -> Option<SharedMember> {
        let fi = self.lattices.field_info(self.program, class, field)?;
        // The membership probe is a separate fact from the field
        // resolution: the set of shared members can change without the
        // field's declaration changing (e.g. another class's @LATTICE
        // gains `shared` on this location).
        sjava_syntax::track::record_shared_member(&fi.declaring_class, field);
        let key = (fi.declaring_class.clone(), field.to_string());
        if self.members.contains(&key) {
            Some(key)
        } else {
            None
        }
    }

    fn scan_reads(&mut self, e: &Expr) {
        match e {
            Expr::Var { name, .. } if self.tenv.local(name).is_none() => {
                if let Some(m) = self.member_field(&self.tenv.class.clone(), name) {
                    self.reads.insert(m);
                }
            }
            Expr::Field { base, field, .. } => {
                self.scan_reads(base);
                if let Some(Type::Class(c)) = self.tenv.ty(base) {
                    if let Some(m) = self.member_field(&c, field) {
                        self.reads.insert(m);
                    }
                }
            }
            Expr::StaticField { class, field, .. } => {
                if let Some(m) = self.member_field(class, field) {
                    self.reads.insert(m);
                }
            }
            Expr::Index { base, index, .. } => {
                self.scan_reads(base);
                self.scan_reads(index);
            }
            Expr::Length { base, .. } => self.scan_reads(base),
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => self.scan_reads(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.scan_reads(lhs);
                self.scan_reads(rhs);
            }
            Expr::Call { recv, args, .. } => {
                if let Some(r) = recv {
                    self.scan_reads(r);
                }
                for a in args {
                    self.scan_reads(a);
                }
                // Callee shared reads propagate.
                if let Some(target) = self.tenv.call_target_class(e) {
                    if let Expr::Call { name, .. } = e {
                        if let Some((dc, dm)) = self.program.resolve_method(&target, name) {
                            let key = (dc.name.clone(), dm.name.clone());
                            if let Some(rs) = self.reads_summary.get(&key) {
                                self.reads.extend(rs.iter().cloned());
                            }
                        }
                    }
                }
            }
            Expr::NewArray { len, .. } => self.scan_reads(len),
            _ => {}
        }
    }

    fn walk_stmt(
        &mut self,
        stmt: &Stmt,
        mut cleared: BTreeSet<SharedMember>,
    ) -> BTreeSet<SharedMember> {
        match stmt {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    self.scan_reads(e);
                    cleared = self.apply_calls(e, cleared);
                }
                cleared
            }
            Stmt::Assign { lhs, rhs, .. } => {
                self.scan_reads(rhs);
                cleared = self.apply_calls(rhs, cleared);
                if let Some(member) = self.member_of_lvalue(lhs) {
                    // Clearing write: the source location is strictly
                    // higher than the destination's shared location.
                    let mut scratch = Diagnostics::new();
                    let src = self.checker.loc_of(rhs, &mut scratch);
                    let dst = self.checker.loc_of_lvalue_public(lhs, &mut scratch);
                    let ctx = self.checker.model_ctx();
                    if is_shared(&ctx, &dst)
                        && matches!(compare(&ctx, &dst, &src), Some(Ordering::Less))
                    {
                        cleared.insert(member);
                    }
                }
                cleared
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.scan_reads(cond);
                cleared = self.apply_calls(cond, cleared);
                let t = self.walk_block(then_blk, cleared.clone());
                let e = match else_blk {
                    Some(b) => self.walk_block(b, cleared.clone()),
                    None => cleared,
                };
                t.intersection(&e).cloned().collect()
            }
            Stmt::While { cond, body, .. } => {
                self.scan_reads(cond);
                // Body may run zero times.
                let _ = self.walk_block(body, cleared.clone());
                cleared
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    cleared = self.walk_stmt(i, cleared);
                }
                if let Some(c) = cond {
                    self.scan_reads(c);
                }
                let b = self.walk_block(body, cleared.clone());
                let b = match update {
                    Some(u) => self.walk_stmt(u, b),
                    None => b,
                };
                // Clearing loops (e.g. re-dequantizing a shared granule
                // array) count when the loop provably runs.
                if sjava_analysis::written::for_loop_runs_at_least_once(
                    init.as_deref(),
                    cond.as_ref(),
                ) {
                    b
                } else {
                    cleared
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.scan_reads(v);
                    cleared = self.apply_calls(v, cleared);
                }
                cleared
            }
            Stmt::ExprStmt { expr, .. } => {
                self.scan_reads(expr);
                self.apply_calls(expr, cleared)
            }
            Stmt::Block(b) => self.walk_block(b, cleared),
            Stmt::Break { .. } | Stmt::Continue { .. } => cleared,
        }
    }

    /// Adds callee must-clears for every call inside `e`.
    fn apply_calls(
        &mut self,
        e: &Expr,
        mut cleared: BTreeSet<SharedMember>,
    ) -> BTreeSet<SharedMember> {
        match e {
            Expr::Call {
                recv, args, name, ..
            } => {
                if let Some(r) = recv {
                    cleared = self.apply_calls(r, cleared);
                }
                for a in args {
                    cleared = self.apply_calls(a, cleared);
                }
                if let Some(target) = self.tenv.call_target_class(e) {
                    if let Some((dc, dm)) = self.program.resolve_method(&target, name) {
                        let key = (dc.name.clone(), dm.name.clone());
                        if let Some(cs) = self.clears.get(&key) {
                            cleared.extend(cs.iter().cloned());
                        }
                    }
                }
                cleared
            }
            Expr::Field { base, .. } | Expr::Length { base, .. } => self.apply_calls(base, cleared),
            Expr::Index { base, index, .. } => {
                let c = self.apply_calls(base, cleared);
                self.apply_calls(index, c)
            }
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
                self.apply_calls(operand, cleared)
            }
            Expr::Binary { lhs, rhs, .. } => {
                let c = self.apply_calls(lhs, cleared);
                self.apply_calls(rhs, c)
            }
            Expr::NewArray { len, .. } => self.apply_calls(len, cleared),
            _ => cleared,
        }
    }
}
