//! Program lattice model: builds the field lattice of every class and the
//! method lattice of every method from the source annotations (§3.3), and
//! checks the inheritance constraints of §3.5.

use sjava_lattice::{CompositeLoc, Elem};
use sjava_lattice::{Lattice, LatticeCtx};
use sjava_syntax::annot::{CompositeLocAnnot, LatticeDecl, MethodAnnots};
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use sjava_syntax::span::Span;
use std::collections::HashMap;

/// Lattice-related information of one method.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    /// The method's location lattice.
    pub lattice: Lattice,
    /// Location of `this` (`@THISLOC`).
    pub this_loc: Option<String>,
    /// Location of static-field accesses (`@GLOBALLOC`).
    pub global_loc: Option<String>,
    /// Declared return-value location.
    pub return_loc: Option<CompositeLoc>,
    /// Declared initial program-counter location (default ⊤).
    pub pc_loc: Option<CompositeLoc>,
    /// Whether the method is trusted (skipped by checking).
    pub trusted: bool,
    /// Span of the method's `@LATTICE` declaration, when it has one;
    /// used as a secondary label on flow diagnostics.
    pub lattice_span: Option<Span>,
}

/// Location-annotation info of one field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// The class that declares the field.
    pub declaring_class: String,
    /// The field's location name in the declaring class's field lattice.
    pub loc_name: Option<String>,
    /// Whether the field's Java type is a reference type.
    pub is_reference: bool,
}

/// The whole-program lattice model.
#[derive(Debug, Clone, Default)]
pub struct Lattices {
    /// Field lattice per class.
    pub fields: HashMap<String, Lattice>,
    /// Method lattice + annotations per `(class, method)`.
    pub methods: HashMap<(String, String), MethodInfo>,
}

impl Lattices {
    /// Builds the model from a program, validating lattice declarations
    /// and inheritance.
    pub fn build(program: &Program, diags: &mut Diagnostics) -> Self {
        let mut model = Lattices::default();
        for class in &program.classes {
            let lat = match &class.annots.lattice {
                Some(decl) => build_lattice(decl, diags),
                None => Lattice::new(),
            };
            model.fields.insert(class.name.clone(), lat);
            for method in &class.methods {
                let annots = effective_method_annots(class, method);
                let lat = match &annots.lattice {
                    Some(decl) => build_lattice(decl, diags),
                    None => Lattice::new(),
                };
                let info = MethodInfo {
                    this_loc: annots.this_loc.clone(),
                    global_loc: annots.global_loc.clone(),
                    return_loc: annots
                        .return_loc
                        .as_ref()
                        .map(|c| resolve_annot_with(c, &lat, &class.name, program)),
                    pc_loc: annots
                        .pc_loc
                        .as_ref()
                        .map(|c| resolve_annot_with(c, &lat, &class.name, program)),
                    trusted: annots.trusted || class.annots.trusted,
                    lattice_span: annots.lattice.as_ref().map(|d| d.span),
                    lattice: lat,
                };
                model
                    .methods
                    .insert((class.name.clone(), method.name.clone()), info);
            }
        }
        model.check_inheritance(program, diags);
        model
    }

    /// The field lattice of a class (empty lattice if undeclared).
    pub fn field_lattice(&self, class: &str) -> Option<&Lattice> {
        self.fields.get(class)
    }

    /// The method info for `(class, method)`. Records a `MethodFacts`
    /// dependency: the info is derived from the method's effective
    /// annotations, the class-level trust flag, and the resolved
    /// return/pc locations, which is exactly what the fact fingerprint
    /// covers.
    pub fn method_info(&self, class: &str, method: &str) -> Option<&MethodInfo> {
        sjava_syntax::track::record_method_facts(class, method);
        self.methods.get(&(class.to_string(), method.to_string()))
    }

    /// Resolves a field's location info, searching the inheritance chain.
    /// Records a `Field` dependency (the resolved declaration determines
    /// every field of the returned info), so the walk itself uses
    /// untracked class lookups.
    pub fn field_info(&self, program: &Program, class: &str, field: &str) -> Option<FieldInfo> {
        sjava_syntax::track::record_field(class, field);
        let mut cur = program.class_untracked(class);
        while let Some(c) = cur {
            if let Some(f) = c.fields.iter().find(|f| f.name == field) {
                let loc_name = f
                    .annots
                    .loc
                    .as_ref()
                    .and_then(|l| l.elems.first())
                    .map(|e| e.name.clone());
                return Some(FieldInfo {
                    declaring_class: c.name.clone(),
                    loc_name,
                    is_reference: f.ty.is_reference(),
                });
            }
            cur = c
                .superclass
                .as_deref()
                .and_then(|s| program.class_untracked(s));
        }
        None
    }

    /// §3.5: subclasses must preserve the parent's field hierarchy, and
    /// overriding methods must redeclare identical lattices and locations.
    fn check_inheritance(&self, program: &Program, diags: &mut Diagnostics) {
        for class in &program.classes {
            let Some(parent_name) = &class.superclass else {
                continue;
            };
            let Some(parent) = program.class(parent_name) else {
                diags.push(Diag::inherit(
                    format!("unknown superclass `{parent_name}`"),
                    class.span,
                ));
                continue;
            };
            let sub = &self.fields[&class.name];
            let sup = &self.fields[&parent.name];
            // Every parent location must exist in the subclass lattice with
            // the same orderings.
            for (id_a, name_a) in sup.named() {
                let Some(sub_a) = sub.get(name_a) else {
                    diags.push(Diag::inherit(
                        format!(
                            "subclass `{}` is missing inherited location `{name_a}`",
                            class.name
                        ),
                        class.span,
                    ));
                    continue;
                };
                for (id_b, name_b) in sup.named() {
                    let Some(sub_b) = sub.get(name_b) else {
                        continue;
                    };
                    let parent_rel = sup.leq(id_a, id_b);
                    let sub_rel = sub.leq(sub_a, sub_b);
                    if parent_rel != sub_rel {
                        diags.push(Diag::inherit(
                            format!(
                                "subclass `{}` changes the ordering between inherited locations `{name_a}` and `{name_b}`",
                                class.name
                            ),
                            class.span,
                        ));
                    }
                }
            }
            // Overridden methods: same parameter locations.
            for method in &class.methods {
                let Some(parent_m) = parent.methods.iter().find(|m| m.name == method.name) else {
                    continue;
                };
                for (p_sub, p_sup) in method.params.iter().zip(&parent_m.params) {
                    if p_sub.annots.loc != p_sup.annots.loc {
                        diags.push(Diag::inherit(
                            format!(
                                "override `{}.{}` changes the declared location of parameter `{}`",
                                class.name, method.name, p_sub.name
                            ),
                            method.span,
                        ));
                    }
                }
            }
        }
    }
}

/// The method annotations in effect: the method's own, with missing pieces
/// defaulted from the class-wide `@METHODDEFAULT` (§3.6).
pub fn effective_method_annots(class: &ClassDecl, method: &MethodDecl) -> MethodAnnots {
    let mut a = method.annots.clone();
    if let Some(md) = &class.annots.method_default {
        if a.lattice.is_none() {
            a.lattice = md.lattice.clone();
        }
        if a.this_loc.is_none() {
            a.this_loc = md.this_loc.clone();
        }
        if a.global_loc.is_none() {
            a.global_loc = md.global_loc.clone();
        }
        if a.return_loc.is_none() {
            a.return_loc = md.return_loc.clone();
        }
        if a.pc_loc.is_none() {
            a.pc_loc = md.pc_loc.clone();
        }
    }
    a
}

fn build_lattice(decl: &LatticeDecl, diags: &mut Diagnostics) -> Lattice {
    match Lattice::from_decl(&decl.orders, &decl.shared, &decl.isolated) {
        Ok(l) => l,
        Err(e) => {
            diags.push(Diag::lattice(
                format!("invalid lattice declaration: {e}"),
                decl.span,
            ));
            Lattice::new()
        }
    }
}

/// Resolves a source-level composite-location annotation into a
/// [`CompositeLoc`], determining the class of each unqualified field
/// element (current class first, then unique global match).
pub fn resolve_annot_with(
    annot: &CompositeLocAnnot,
    method_lattice: &Lattice,
    current_class: &str,
    program: &Program,
) -> CompositeLoc {
    let mut elems = Vec::with_capacity(annot.elems.len());
    for (i, e) in annot.elems.iter().enumerate() {
        if i == 0 && e.class.is_none() {
            let _ = method_lattice; // first element is a method location
            elems.push(Elem::method(&e.name));
        } else if let Some(class) = &e.class {
            elems.push(Elem::field(class.clone(), &e.name));
        } else {
            // Unqualified field element: prefer the current class, else a
            // unique class declaring that location.
            let owner = find_field_loc_class(program, current_class, &e.name)
                .unwrap_or_else(|| current_class.to_string());
            elems.push(Elem::field(owner, &e.name));
        }
    }
    let mut loc = CompositeLoc::path(elems);
    for _ in 0..annot.delta {
        loc = loc.delta();
    }
    loc
}

fn find_field_loc_class(program: &Program, current: &str, loc_name: &str) -> Option<String> {
    // The outcome depends on the current class's @LATTICE and on the set
    // of classes declaring `loc_name` anywhere — record both facts rather
    // than a whole-interface dependency per visited class.
    sjava_syntax::track::record_class_lattice(current);
    sjava_syntax::track::record_loc_owner(loc_name);
    let declares = |c: &ClassDecl| -> bool {
        c.annots
            .lattice
            .as_ref()
            .map(|l| l.names().iter().any(|n| n == loc_name))
            .unwrap_or(false)
    };
    if let Some(c) = program.class_untracked(current) {
        if declares(c) {
            return Some(current.to_string());
        }
    }
    let matches: Vec<&ClassDecl> = program.classes.iter().filter(|c| declares(c)).collect();
    if matches.len() == 1 {
        Some(matches[0].name.clone())
    } else {
        None
    }
}

/// A [`LatticeCtx`] view of the model for one method.
pub struct ModelCtx<'a> {
    /// The current method's lattice.
    pub method: &'a Lattice,
    /// All field lattices.
    pub fields: &'a HashMap<String, Lattice>,
}

impl LatticeCtx for ModelCtx<'_> {
    fn method_lattice(&self) -> &Lattice {
        self.method
    }

    fn field_lattice(&self, class: &str) -> Option<&Lattice> {
        sjava_syntax::track::record_class_lattice(class);
        self.fields.get(class)
    }
}

/// Convenience for diagnostics: span of a method's header.
pub fn method_span(program: &Program, class: &str, method: &str) -> Span {
    program
        .method(class, method)
        .map(|m| m.span)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjava_syntax::parse;

    #[test]
    fn builds_field_and_method_lattices() {
        let p = parse(
            r#"@LATTICE("DIR<TMP,TMP<BIN")
               class W {
                 @LOC("BIN") int b;
                 @LATTICE("STR<WDOBJ,WDOBJ<IN") @THISLOC("WDOBJ")
                 void run() { }
               }"#,
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let m = Lattices::build(&p, &mut d);
        assert!(!d.has_errors());
        let fl = m.field_lattice("W").expect("field lattice");
        assert!(fl.get("TMP").is_some());
        let mi = m.method_info("W", "run").expect("method info");
        assert_eq!(mi.this_loc.as_deref(), Some("WDOBJ"));
        assert!(mi.lattice.get("STR").is_some());
    }

    #[test]
    fn method_default_is_inherited() {
        let p = parse(
            r#"@METHODDEFAULT("L<H") @THISLOC("L")
               class W { void a() { } @LATTICE("X<Y") void b() { } }"#,
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let m = Lattices::build(&p, &mut d);
        assert!(m
            .method_info("W", "a")
            .expect("a")
            .lattice
            .get("H")
            .is_some());
        assert!(m
            .method_info("W", "b")
            .expect("b")
            .lattice
            .get("Y")
            .is_some());
        assert!(m
            .method_info("W", "b")
            .expect("b")
            .lattice
            .get("H")
            .is_none());
    }

    #[test]
    fn cyclic_lattice_is_reported() {
        let p = parse(r#"@LATTICE("A<B,B<A") class W { }"#).expect("parses");
        let mut d = Diagnostics::new();
        Lattices::build(&p, &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn subclass_must_keep_parent_locations() {
        let p = parse(
            r#"@LATTICE("A<B") class P { @LOC("A") int x; }
               @LATTICE("C<D") class S extends P { @LOC("C") int y; }"#,
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        Lattices::build(&p, &mut d);
        assert!(d.has_errors(), "missing inherited locations must error");
    }

    #[test]
    fn subclass_preserving_order_is_ok() {
        let p = parse(
            r#"@LATTICE("A<B") class P { @LOC("A") int x; }
               @LATTICE("A<B,C<A") class S extends P { @LOC("C") int y; }"#,
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        Lattices::build(&p, &mut d);
        assert!(!d.has_errors(), "{d}");
    }

    #[test]
    fn field_info_resolves_inherited() {
        let p = parse(
            r#"@LATTICE("A<B") class P { @LOC("A") int x; }
               @LATTICE("A<B") class S extends P { }"#,
        )
        .expect("parses");
        let mut d = Diagnostics::new();
        let m = Lattices::build(&p, &mut d);
        let fi = m.field_info(&p, "S", "x").expect("found");
        assert_eq!(fi.declaring_class, "P");
        assert_eq!(fi.loc_name.as_deref(), Some("A"));
    }
}
