//! Linear-type alias restriction (§4.1.6) and ownership transfer.
//!
//! SJava's heap must be a forest: no object may be referenced by two heap
//! locations, or a low reference could observe writes made through a high
//! reference, subverting the flow-down rule. Variables may alias provided
//! they carry the same location type. Ownership is transferred to callees
//! through `@DELEGATE` parameters, after which the caller's reference is
//! dead.
//!
//! The implementation is a per-method abstract interpretation over a small
//! ownership state machine:
//!
//! - `Owned` — a unique reference (fresh allocation, owned return value,
//!   `@DELEGATE` parameter, or a reference detached from the heap);
//! - `Borrowed` — an alias of a heap-resident tree;
//! - `Dead` — ownership was transferred; any use is an error.

use crate::checker::collect_var_locs;
use crate::model::{Lattices, MethodInfo};
use sjava_analysis::callgraph::{CallGraph, MethodRef};
use sjava_analysis::jtype::TypeEnv;
use sjava_analysis::shard::ShardInput;
use sjava_lattice::CompositeLoc;
use sjava_syntax::ast::*;
use sjava_syntax::diag::{Diag, Diagnostics};
use std::collections::HashMap;

/// Ownership state of a reference variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Own {
    Owned,
    Borrowed,
    Dead,
}

/// Runs the alias/ownership check on every reachable method the shard
/// owns (the unsharded pipeline passes [`ShardInput::whole`]).
pub fn check_aliasing(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    cg: &CallGraph,
    diags: &mut Diagnostics,
) {
    for mref in &cg.topo {
        if shard.owns(mref) {
            diags.extend(check_method_aliasing(shard, lattices, mref));
        }
    }
}

/// Alias/ownership check for a single method into a private buffer —
/// the per-method unit the incremental layer caches and replays. Trusted
/// or unresolvable methods produce an empty buffer.
pub fn check_method_aliasing(
    shard: &ShardInput<'_>,
    lattices: &Lattices,
    mref: &MethodRef,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let Some((decl_class, method)) = shard.program().resolve_method(&mref.0, &mref.1) else {
        return diags;
    };
    let Some(info) = lattices.method_info(&decl_class.name, &method.name) else {
        return diags;
    };
    if info.trusted {
        return diags;
    }
    check_method(shard, lattices, &decl_class.name, method, info, &mut diags);
    diags
}

fn check_method(
    shard: &ShardInput<'_>,
    _lattices: &Lattices,
    class: &str,
    method: &MethodDecl,
    info: &MethodInfo,
    diags: &mut Diagnostics,
) {
    let program = shard.program();
    let mut tenv = TypeEnv::for_method(program, class, method);
    tenv.bind_block(&method.body);
    // Location environment for the same-location alias rule; errors were
    // already reported by the checker, so swallow them here.
    let mut scratch = Diagnostics::new();
    let env = collect_var_locs(shard, class, method, info, &mut scratch);
    let mut st: HashMap<String, Own> = HashMap::new();
    for p in &method.params {
        if p.ty.is_reference() {
            st.insert(
                p.name.clone(),
                if p.annots.delegate {
                    Own::Owned
                } else {
                    Own::Borrowed
                },
            );
        }
    }
    let mut cx = Cx {
        program,
        tenv,
        env,
        diags,
    };
    walk_block(&method.body, &mut st, &mut cx);
}

struct Cx<'p, 'd> {
    program: &'p Program,
    tenv: TypeEnv<'p>,
    env: HashMap<String, CompositeLoc>,
    diags: &'d mut Diagnostics,
}

fn is_ref_expr(cx: &Cx<'_, '_>, e: &Expr) -> bool {
    matches!(cx.tenv.ty(e), Some(t) if t.is_reference())
        || matches!(e, Expr::New { .. } | Expr::NewArray { .. })
}

/// Classifies the ownership of a reference-producing expression.
fn rhs_ownership(e: &Expr, st: &HashMap<String, Own>) -> Own {
    match e {
        Expr::New { .. } | Expr::NewArray { .. } => Own::Owned,
        Expr::Null { .. } => Own::Owned,
        // Methods return owned references (§4.1.6).
        Expr::Call { .. } => Own::Owned,
        Expr::Var { name, .. } => st.get(name).copied().unwrap_or(Own::Borrowed),
        // Reading a reference out of the heap borrows it.
        Expr::Field { .. } | Expr::StaticField { .. } | Expr::Index { .. } => Own::Borrowed,
        Expr::Cast { operand, .. } => rhs_ownership(operand, st),
        Expr::This { .. } => Own::Borrowed,
        _ => Own::Borrowed,
    }
}

fn use_var(
    name: &str,
    span: sjava_syntax::span::Span,
    st: &HashMap<String, Own>,
    cx: &mut Cx<'_, '_>,
) {
    if st.get(name) == Some(&Own::Dead) {
        cx.diags.push(Diag::delegate(
            format!("use of `{name}` after its ownership was delegated"),
            span,
        ));
    }
}

fn scan_uses(e: &Expr, st: &HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    match e {
        Expr::Var { name, span } => use_var(name, *span, st, cx),
        Expr::Field { base, .. } | Expr::Length { base, .. } => scan_uses(base, st, cx),
        Expr::Index { base, index, .. } => {
            scan_uses(base, st, cx);
            scan_uses(index, st, cx);
        }
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => scan_uses(operand, st, cx),
        Expr::Binary { lhs, rhs, .. } => {
            scan_uses(lhs, st, cx);
            scan_uses(rhs, st, cx);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                scan_uses(r, st, cx);
            }
            for a in args {
                scan_uses(a, st, cx);
            }
        }
        Expr::NewArray { len, .. } => scan_uses(len, st, cx),
        _ => {}
    }
}

/// Handles a call's `@DELEGATE` parameters: arguments must be owned
/// variables, which die afterwards.
fn handle_call(e: &Expr, st: &mut HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    let Expr::Call {
        recv,
        class_recv: _,
        name,
        args,
        span,
    } = e
    else {
        return;
    };
    if let Some(r) = recv {
        scan_uses(r, st, cx);
        handle_nested_calls(r, st, cx);
    }
    for a in args {
        scan_uses(a, st, cx);
        handle_nested_calls(a, st, cx);
    }
    let Some(target) = cx.tenv.call_target_class(e) else {
        return;
    };
    let Some((_, callee)) = cx.program.resolve_method(&target, name) else {
        return;
    };
    for (p, a) in callee.params.iter().zip(args) {
        if !p.annots.delegate {
            continue;
        }
        match a {
            Expr::Var { name: vn, .. } => {
                let own = st.get(vn).copied().unwrap_or(Own::Borrowed);
                if own != Own::Owned {
                    cx.diags.push(Diag::delegate(
                        format!(
                            "argument `{vn}` to @DELEGATE parameter `{}` must be an owned reference",
                            p.name
                        ),
                        *span,
                    ));
                }
                st.insert(vn.clone(), Own::Dead);
            }
            Expr::New { .. } | Expr::NewArray { .. } | Expr::Call { .. } => {}
            other => cx.diags.push(Diag::delegate(
                "only owned variables or fresh values may be passed to @DELEGATE parameters",
                other.span(),
            )),
        }
    }
}

fn handle_nested_calls(e: &Expr, st: &mut HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    match e {
        Expr::Call { .. } => handle_call(e, st, cx),
        Expr::Field { base, .. } | Expr::Length { base, .. } => handle_nested_calls(base, st, cx),
        Expr::Index { base, index, .. } => {
            handle_nested_calls(base, st, cx);
            handle_nested_calls(index, st, cx);
        }
        Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
            handle_nested_calls(operand, st, cx)
        }
        Expr::Binary { lhs, rhs, .. } => {
            handle_nested_calls(lhs, st, cx);
            handle_nested_calls(rhs, st, cx);
        }
        Expr::NewArray { len, .. } => handle_nested_calls(len, st, cx),
        _ => {}
    }
}

fn walk_block(block: &Block, st: &mut HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    for s in &block.stmts {
        walk_stmt(s, st, cx);
    }
}

fn walk_stmt(stmt: &Stmt, st: &mut HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    match stmt {
        Stmt::VarDecl { name, init, ty, .. } => {
            if let Some(e) = init {
                scan_uses(e, st, cx);
                handle_nested_calls(e, st, cx);
                if ty.is_reference() {
                    let own = rhs_ownership(e, st);
                    check_var_alias_locs(name, e, st, cx);
                    st.insert(name.clone(), own);
                }
            }
        }
        Stmt::Assign { lhs, rhs, span } => {
            scan_uses(rhs, st, cx);
            handle_nested_calls(rhs, st, cx);
            match lhs {
                LValue::Var { name, .. } => {
                    let is_local = cx.tenv.local(name).is_some();
                    if is_ref_expr(cx, rhs) {
                        if is_local {
                            let own = rhs_ownership(rhs, st);
                            check_var_alias_locs(name, rhs, st, cx);
                            st.insert(name.clone(), own);
                        } else {
                            // Unqualified field assignment is a heap
                            // store: only owned references may enter.
                            if let Expr::Var { name: vn, .. } = rhs {
                                let own = st.get(vn).copied().unwrap_or(Own::Borrowed);
                                if own == Own::Borrowed {
                                    cx.diags.push(Diag::alias(
                                        format!(
                                            "storing `{vn}` would create a second heap alias (linear-type violation)"
                                        ),
                                        *span,
                                    ));
                                }
                                st.insert(vn.clone(), Own::Borrowed);
                            }
                        }
                    }
                }
                LValue::Field { base, .. } | LValue::Index { base, .. } => {
                    scan_uses(base, st, cx);
                    // Storing a reference into the heap: only owned
                    // references may enter (else two heap aliases arise).
                    if is_ref_expr(cx, rhs) {
                        match rhs {
                            Expr::Var { name: vn, .. } => {
                                let own = st.get(vn).copied().unwrap_or(Own::Borrowed);
                                if own == Own::Borrowed {
                                    cx.diags.push(Diag::alias(
                                        format!(
                                            "storing `{vn}` would create a second heap alias (linear-type violation)"
                                        ),
                                        *span,
                                    ));
                                }
                                // The heap now owns the tree.
                                st.insert(vn.clone(), Own::Borrowed);
                            }
                            Expr::Null { .. }
                            | Expr::New { .. }
                            | Expr::NewArray { .. }
                            | Expr::Call { .. } => {}
                            Expr::Field { .. } | Expr::Index { .. } | Expr::StaticField { .. } => {
                                cx.diags.push(Diag::alias(
                                    "moving a reference between heap locations requires detaching it into an owned variable first",
                                    *span,
                                ));
                            }
                            _ => {}
                        }
                    }
                }
                LValue::StaticField { .. } => {
                    if is_ref_expr(cx, rhs) {
                        if let Expr::Var { name: vn, .. } = rhs {
                            let own = st.get(vn).copied().unwrap_or(Own::Borrowed);
                            if own == Own::Borrowed {
                                cx.diags.push(Diag::alias(
                                    format!(
                                        "storing `{vn}` into a static field would create a second heap alias"
                                    ),
                                    *span,
                                ));
                            }
                            st.insert(vn.clone(), Own::Borrowed);
                        }
                    }
                }
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            scan_uses(cond, st, cx);
            handle_nested_calls(cond, st, cx);
            let mut t = st.clone();
            walk_block(then_blk, &mut t, cx);
            let mut e = st.clone();
            if let Some(b) = else_blk {
                walk_block(b, &mut e, cx);
            }
            *st = merge(t, e);
        }
        Stmt::While { cond, body, .. } => {
            scan_uses(cond, st, cx);
            handle_nested_calls(cond, st, cx);
            let mut b = st.clone();
            walk_block(body, &mut b, cx);
            *st = merge(st.clone(), b);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_stmt(i, st, cx);
            }
            if let Some(c) = cond {
                scan_uses(c, st, cx);
            }
            let mut b = st.clone();
            walk_block(body, &mut b, cx);
            if let Some(u) = update {
                walk_stmt(u, &mut b, cx);
            }
            *st = merge(st.clone(), b);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                scan_uses(v, st, cx);
                handle_nested_calls(v, st, cx);
                // Methods may only return owned references.
                if is_ref_expr(cx, v) {
                    if let Expr::Var { name, span } = v {
                        if st.get(name) == Some(&Own::Borrowed) {
                            cx.diags.push(Diag::alias(
                                format!("returning borrowed reference `{name}` is not allowed; methods return owned references"),
                                *span,
                            ));
                        }
                    }
                }
            }
        }
        Stmt::ExprStmt { expr, .. } => {
            scan_uses(expr, st, cx);
            handle_nested_calls(expr, st, cx);
        }
        Stmt::Block(b) => walk_block(b, st, cx),
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
    }
}

/// Variable-variable aliasing requires identical location types (§4.1.6).
fn check_var_alias_locs(dst: &str, rhs: &Expr, _st: &HashMap<String, Own>, cx: &mut Cx<'_, '_>) {
    if let Expr::Var { name: src, span } = rhs {
        let (Some(a), Some(b)) = (cx.env.get(dst), cx.env.get(src)) else {
            return;
        };
        if a != b {
            cx.diags.push(Diag::alias(
                format!(
                    "aliasing `{src}` into `{dst}` with a different location type ({b} vs {a}) is prohibited"
                ),
                *span,
            ));
        }
    }
}

fn merge(a: HashMap<String, Own>, b: HashMap<String, Own>) -> HashMap<String, Own> {
    let mut out = HashMap::new();
    for (k, va) in &a {
        let m = match (va, b.get(k)) {
            (Own::Dead, _) | (_, Some(Own::Dead)) => Own::Dead,
            (Own::Owned, Some(Own::Owned)) => Own::Owned,
            (x, None) => *x,
            _ => Own::Borrowed,
        };
        out.insert(k.clone(), m);
    }
    for (k, vb) in b {
        out.entry(k).or_insert(vb);
    }
    out
}
