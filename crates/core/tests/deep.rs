//! Deeper structural coverage for the checker: multi-level heap paths,
//! objects holding objects, arrays of records, and cross-class composite
//! locations.

use sjava_core::check_program;
use sjava_syntax::parse;

#[test]
fn three_level_heap_paths_check() {
    // this.outer.inner.v — composite ⟨THIS, OUT, INN, V⟩ with lattices
    // from three classes.
    let src = r#"
        @LATTICE("OUT0")
        class Top2 {
            @LOC("OUT0") Outer outer;
            @LATTICE("V<IN") @THISLOC("V")
            void main() {
                outer = new Outer();
                outer.inner = new Inner();
                SSJAVA: while (true) {
                    @LOC("IN") int x = Device.read();
                    outer.inner.hi = x;
                    outer.inner.lo = outer.inner.hi;
                    Out.emit(outer.inner.lo);
                }
            }
        }
        @LATTICE("INN0") class Outer { @LOC("INN0") Inner inner; }
        @LATTICE("LO2<HI2") class Inner { @LOC("HI2") int hi; @LOC("LO2") int lo; }
    "#;
    let report = check_program(&parse(src).expect("parses"));
    assert!(report.is_ok(), "{}", report.diagnostics);
}

#[test]
fn three_level_flow_up_is_rejected() {
    let src = r#"
        @LATTICE("OUT0")
        class Top2 {
            @LOC("OUT0") Outer outer;
            @LATTICE("V<IN") @THISLOC("V")
            void main() {
                outer = new Outer();
                outer.inner = new Inner();
                SSJAVA: while (true) {
                    @LOC("IN") int x = Device.read();
                    outer.inner.lo = x;
                    outer.inner.hi = outer.inner.lo;
                    Out.emit(outer.inner.hi);
                }
            }
        }
        @LATTICE("INN0") class Outer { @LOC("INN0") Inner inner; }
        @LATTICE("LO2<HI2") class Inner { @LOC("HI2") int hi; @LOC("LO2") int lo; }
    "#;
    let report = check_program(&parse(src).expect("parses"));
    assert!(!report.is_ok(), "lo → hi at depth 3 must be rejected");
}

#[test]
fn deep_eviction_is_tracked_through_references() {
    // Reads of outer.inner.v are covered because the whole inner object
    // reference is replaced each iteration (a heap-path prefix write).
    let src = r#"
        @LATTICE("INN1<IN1")
        class Root {
            @LOC("INN1") Inner inner;
            @LATTICE("V<IN") @THISLOC("V")
            void main() {
                SSJAVA: while (true) {
                    @LOC("IN") Inner fresh = new Inner();
                    fresh.v = Device.read();
                    inner = fresh;
                    Out.emit(inner.v);
                }
            }
        }
        @LATTICE("V1") class Inner { @LOC("V1") int v; }
    "#;
    let report = check_program(&parse(src).expect("parses"));
    assert!(report.is_ok(), "{}", report.diagnostics);
}

#[test]
fn stale_nested_field_is_rejected() {
    // inner is installed once at startup and its field is written only
    // conditionally: the nested read must be flagged by the eviction
    // analysis.
    let src = r#"
        @LATTICE("INN1")
        class Root {
            @LOC("INN1") Inner inner;
            @LATTICE("V<IN") @THISLOC("V")
            void main() {
                inner = new Inner();
                SSJAVA: while (true) {
                    @LOC("IN") int x = Device.read();
                    if (x > 0) { inner.v = x; }
                    Out.emit(inner.v);
                }
            }
        }
        @LATTICE("V1") class Inner { @LOC("V1") int v; }
    "#;
    let report = check_program(&parse(src).expect("parses"));
    assert!(
        !report.is_ok(),
        "conditionally-written nested field must be stale"
    );
}

#[test]
fn record_pipeline_through_methods() {
    // A two-stage pipeline where each stage lives in its own class and the
    // driver wires them per iteration — the decoder's architecture in
    // miniature, with full call-site lattice checking.
    let src = r#"
        @LATTICE("B1<ST2,ST2<A1,A1<ST1,ST1<HDR")
        class Driver {
            @LOC("HDR") int header;
            @LOC("ST1") Stage1 s1;
            @LOC("ST2") Stage2 s2;
            @LATTICE("OUTV<DRV,DRV<IN") @THISLOC("DRV")
            void main() {
                s1 = new Stage1();
                s2 = new Stage2();
                SSJAVA: while (true) {
                    header = Device.read();
                    @LOC("DRV,A1") int a = s1.step(header);
                    @LOC("DRV,B1") int b = s2.step(a);
                    Out.emit(b);
                }
            }
        }
        class Stage1 {
            @LATTICE("R1<S1OBJ,S1OBJ<P1") @THISLOC("S1OBJ") @RETURNLOC("R1")
            int step(@LOC("P1") int v) {
                @LOC("R1") int r = v * 2;
                return r;
            }
        }
        class Stage2 {
            @LATTICE("R2<S2OBJ,S2OBJ<P2") @THISLOC("S2OBJ") @RETURNLOC("R2")
            int step(@LOC("P2") int v) {
                @LOC("R2") int r = v + 1;
                return r;
            }
        }
    "#;
    let report = check_program(&parse(src).expect("parses"));
    assert!(report.is_ok(), "{}", report.diagnostics);
}

#[test]
fn weather_fig_5_9_vs_5_10_simplification() {
    // Fig 5.9 (naive weather field lattice) vs Fig 5.10 (simplified):
    // SInfer's field lattice for the Weather class must be no larger than
    // the naive one, and both must re-check.
    let program = parse(sjava_syntax_weather_source()).expect("parses");
    let naive = sjava_infer::infer(&program, sjava_infer::Mode::Naive).expect("naive");
    let simplified = sjava_infer::infer(&program, sjava_infer::Mode::SInfer).expect("sinfer");
    let n = &naive.lattices.fields["Weather"];
    let s = &simplified.lattices.fields["Weather"];
    assert!(
        s.named_len() <= n.named_len(),
        "simplified {} vs naive {}",
        s.named_len(),
        n.named_len()
    );
    assert!(
        sjava_lattice::count_paths(s) <= sjava_lattice::count_paths(n),
        "simplified paths must not exceed naive"
    );
    // All four fields keep *distinct interface* locations in both modes.
    for f in ["prevTemp", "avgTemp", "curHum", "index"] {
        assert!(n.get(f).is_some(), "naive keeps {f}");
        assert!(s.get(f).is_some(), "sinfer keeps {f}");
    }
}

fn sjava_syntax_weather_source() -> &'static str {
    "class Weather {
        float prevTemp; float avgTemp; float curHum; float index;
        void calculateIndex() {
            SSJAVA: while (true) {
                float inTemp = Device.readTemp();
                curHum = Device.readHumidity();
                avgTemp = (prevTemp + inTemp) / 2.0;
                prevTemp = inTemp;
                float f1 = 0.1 * avgTemp * curHum;
                float f2 = 0.2 * avgTemp * avgTemp;
                float f3 = 0.3 * curHum * curHum;
                float f4 = 0.4 * f2 * curHum;
                float f5 = 0.5 * f3 * avgTemp;
                float f6 = 0.6 * f1 * f2;
                index = 1.0 + f1 + f2 + f3 + f4 + f5 + f6;
                Out.emit(index);
            }
        }
    }"
}
