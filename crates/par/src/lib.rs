//! # sjava-par
//!
//! Deterministic fan-out primitives for the parallel whole-program
//! checking pipeline. All parallelism in the workspace funnels through
//! [`run_indexed`]: tasks are identified by a dense index, workers pull
//! indices from a shared counter, and results are returned **in index
//! order** regardless of completion order — so callers that merge
//! per-task outputs (diagnostics buffers, method summaries, injection
//! trials) stay byte-for-byte deterministic at any thread count.
//!
//! The worker pool is plain `std::thread::scope` — no runtime dependency.
//! The pool size comes from the `SJAVA_THREADS` environment variable when
//! set (clamped to ≥1), otherwise from `std::thread::available_parallelism`.
//! Compiling without the `parallel` feature (enabled by default) turns
//! every fan-out into a sequential loop.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`SJAVA_THREADS=1`
/// forces the sequential path at runtime).
pub const THREADS_ENV: &str = "SJAVA_THREADS";

/// Environment variable overriding the adaptive sequential threshold of
/// [`run_indexed`] (`SJAVA_PAR_THRESHOLD=0` parallelizes everything).
pub const THRESHOLD_ENV: &str = "SJAVA_PAR_THRESHOLD";

/// Default [`par_threshold`]: a paper-sized app checks in well under a
/// millisecond per method, so spawning scoped workers (tens of
/// microseconds each) only pays for itself once a few dozen tasks exist.
const DEFAULT_THRESHOLD: usize = 24;

/// Fan-outs with fewer tasks than this run sequentially even when workers
/// are available — below it, thread spawn and merge overhead exceeds the
/// work being split. Override with `SJAVA_PAR_THRESHOLD`.
pub fn par_threshold() -> usize {
    match std::env::var(THRESHOLD_ENV) {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(DEFAULT_THRESHOLD),
        Err(_) => DEFAULT_THRESHOLD,
    }
}

/// The number of worker threads fan-outs will use: `SJAVA_THREADS` when
/// set, otherwise the machine's available parallelism. Always ≥1; always
/// 1 when the `parallel` feature is disabled.
pub fn num_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `f(0) .. f(n-1)` across [`num_threads`] scoped workers and
/// returns the results **in index order**.
///
/// Adaptive: fan-outs smaller than [`par_threshold`] run sequentially —
/// paper-sized apps never pay thread-spawn overhead, while stress-sized
/// corpora split across the full pool. Results are identical either way.
///
/// Panics in a task propagate to the caller once all workers have
/// stopped pulling new indices.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n < par_threshold() {
        return (0..n).map(f).collect();
    }
    run_indexed_with(n, num_threads(), f)
}

/// [`run_indexed`] with an explicit worker count (used by tests and
/// benchmarks; `threads ≤ 1` is the sequential path).
pub fn run_indexed_with<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 || !cfg!(feature = "parallel") {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    // Workers claim contiguous batches of indices rather than one index
    // per `fetch_add`: ~8 batches per worker keeps the counter cool while
    // still letting a fast worker steal from a slow one's tail.
    let batch = (n / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Each worker stages results locally and merges once, so
                // the mutex is taken `workers` times, not `n` times.
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let start = next.fetch_add(batch, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + batch).min(n) {
                        local.push((i, f(i)));
                    }
                }
                done.lock()
                    .expect("worker panicked holding lock")
                    .extend(local);
            });
        }
    });
    let mut pairs = done.into_inner().expect("worker panicked holding lock");
    assert_eq!(pairs.len(), n, "every index must produce a result");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Cache-aware fan-out: runs `f` over a **sparse** set of indices (the
/// dirty cone of an incremental re-check) and returns `(index, result)`
/// pairs sorted by index. The caller typically interleaves these with
/// cached results for the untouched indices, preserving the same merge
/// order as a full [`run_indexed`] pass.
pub fn run_sparse<T, F>(indices: &[usize], f: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results = run_indexed(indices.len(), |slot| f(indices[slot]));
    let mut pairs: Vec<(usize, T)> = indices.iter().copied().zip(results).collect();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs
}

/// Partitions `0..n` into contiguous chunks, one per worker, and runs
/// `f(chunk_range)` on each; chunk results are concatenated in order.
/// Useful when per-index closures are too fine-grained to amortize.
pub fn run_chunked<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= 1 {
        return f(0..n);
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..workers)
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let per_chunk = run_indexed_with(ranges.len(), workers, |i| f(ranges[i].clone()));
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed_with(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed_with(1000, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run_indexed_with(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_with(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn sparse_returns_sorted_pairs() {
        let indices = [9usize, 2, 5, 0];
        let out = run_sparse(&indices, |i| i * 10);
        assert_eq!(out, vec![(0, 0), (2, 20), (5, 50), (9, 90)]);
        assert_eq!(run_sparse(&[], |i: usize| i), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn chunked_concatenates_in_order() {
        let out = run_chunked(37, |r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn adaptive_threshold_is_env_tunable() {
        // No other test in this crate reads THRESHOLD_ENV, so mutating it
        // here cannot race.
        assert_eq!(par_threshold(), 24);
        std::env::set_var(THRESHOLD_ENV, "3");
        assert_eq!(par_threshold(), 3);
        std::env::set_var(THRESHOLD_ENV, "garbage");
        assert_eq!(par_threshold(), 24);
        std::env::remove_var(THRESHOLD_ENV);
        // Below and above the threshold produce identical results.
        assert_eq!(run_indexed(5, |i| i * 3), vec![0, 3, 6, 9, 12]);
        let big = run_indexed(100, |i| i * 3);
        assert_eq!(big, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn batched_pulling_covers_every_index_once() {
        // n chosen so the last batch is ragged (n not divisible by batch).
        let calls = AtomicUsize::new(0);
        let out = run_indexed_with(1003, 3, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1003);
        assert_eq!(out, (0..1003).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_with_side_work() {
        // Unequal task costs exercise the work-stealing counter.
        let work = |i: usize| -> u64 {
            let mut acc = i as u64;
            for _ in 0..(i % 17) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let seq = run_indexed_with(200, 1, work);
        let par = run_indexed_with(200, 7, work);
        assert_eq!(seq, par);
    }
}
