//! # sjava-par
//!
//! Deterministic fan-out primitives for the parallel whole-program
//! checking pipeline. All parallelism in the workspace funnels through
//! [`run_indexed`]: tasks are identified by a dense index, workers pull
//! indices from per-worker deques with steal-half rebalancing, and
//! results are returned **in index order** regardless of completion
//! order — so callers that merge per-task outputs (diagnostics buffers,
//! method summaries, injection trials) stay byte-for-byte deterministic
//! at any thread count.
//!
//! ## Scheduling
//!
//! Work distribution is Chase–Lev-shaped: every worker owns a deque,
//! consumes from its front, and — once empty — steals the **back half**
//! of a victim's deque in one lock acquisition. Compared to the previous
//! fixed contiguous-batch claiming off a shared counter, this absorbs
//! heavy per-task cost skew (one 50ms method no longer strands the tail
//! of its batch behind it) while keeping the merge order untouched.
//!
//! [`run_indexed_weighted`] additionally accepts a per-task cost
//! estimate: tasks are dealt to the deques in descending-cost
//! round-robin (longest-processing-time-first), so the expensive tasks
//! start immediately on distinct workers and stealing only has to
//! correct the residual error of the cost model.
//!
//! The worker pool is plain `std::thread::scope` — no runtime dependency.
//! The pool size comes from the `SJAVA_THREADS` environment variable when
//! set (clamped to ≥1), otherwise from `std::thread::available_parallelism`.
//! Malformed values of `SJAVA_THREADS` / `SJAVA_PAR_THRESHOLD` fall back
//! to the documented defaults with a one-time stderr warning rather than
//! being silently swallowed. Compiling without the `parallel` feature
//! (enabled by default) turns every fan-out into a sequential loop.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`SJAVA_THREADS=1`
/// forces the sequential path at runtime).
pub const THREADS_ENV: &str = "SJAVA_THREADS";

/// Environment variable overriding the adaptive sequential threshold of
/// [`run_indexed`] (`SJAVA_PAR_THRESHOLD=0` parallelizes everything).
pub const THRESHOLD_ENV: &str = "SJAVA_PAR_THRESHOLD";

/// Default [`par_threshold`]: a paper-sized app checks in well under a
/// millisecond per method, so spawning scoped workers (tens of
/// microseconds each) only pays for itself once a few dozen tasks exist.
const DEFAULT_THRESHOLD: usize = 24;

/// One-time warning latches for malformed env values (one per variable,
/// so a bad `SJAVA_THREADS` does not mask a bad `SJAVA_PAR_THRESHOLD`).
static WARNED_THREADS: AtomicBool = AtomicBool::new(false);
static WARNED_THRESHOLD: AtomicBool = AtomicBool::new(false);

/// Parses an environment override as a non-negative decimal integer.
/// `None` means "malformed"; the empty string and surrounding whitespace
/// follow `str::parse` (empty is malformed, padding is trimmed).
fn parse_env_usize(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Reads `name`, warning **once per process** on a malformed value and
/// returning `None` so the caller applies its default. Unset variables
/// return `None` silently.
fn env_usize(name: &str, warned: &AtomicBool) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_env_usize(&raw) {
        Some(v) => Some(v),
        None => {
            if !warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "sjava-par: warning: ignoring malformed {name}={raw:?} \
                     (expected a non-negative integer); using the default"
                );
            }
            None
        }
    }
}

/// Fan-outs with fewer tasks than this run sequentially even when workers
/// are available — below it, thread spawn and merge overhead exceeds the
/// work being split. Override with `SJAVA_PAR_THRESHOLD`; malformed
/// values warn once on stderr and fall back to the default.
pub fn par_threshold() -> usize {
    env_usize(THRESHOLD_ENV, &WARNED_THRESHOLD).unwrap_or(DEFAULT_THRESHOLD)
}

/// The number of worker threads fan-outs will use: `SJAVA_THREADS` when
/// set, otherwise the machine's available parallelism. Always ≥1; always
/// 1 when the `parallel` feature is disabled. A malformed `SJAVA_THREADS`
/// warns once on stderr and pins the pool to 1 worker (the conservative
/// reading of "the user asked for explicit control but we could not
/// parse the request").
pub fn num_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match parse_env_usize(&raw) {
            Some(n) => n.max(1),
            None => {
                if !WARNED_THREADS.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sjava-par: warning: ignoring malformed {THREADS_ENV}={raw:?} \
                         (expected a positive integer); running with 1 worker"
                    );
                }
                1
            }
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A worker-owned job deque. The owner consumes indices from the front;
/// thieves take the back half in one lock acquisition (steal-half), so a
/// starving worker leaves the victim with the work it was about to do
/// and walks away with enough to stay busy — O(log n) steals drain any
/// imbalance instead of one steal per task.
struct StealQueue {
    jobs: Mutex<VecDeque<usize>>,
}

impl StealQueue {
    fn new(jobs: VecDeque<usize>) -> Self {
        Self {
            jobs: Mutex::new(jobs),
        }
    }

    /// Owner-side pop (front).
    fn pop(&self) -> Option<usize> {
        self.jobs.lock().expect("steal queue poisoned").pop_front()
    }

    /// Thief-side steal: removes the back ⌈len/2⌉ jobs and returns them,
    /// or `None` when the queue is empty. Never holds two queue locks at
    /// once — the caller deposits the loot into its own queue afterwards.
    fn steal_half(&self) -> Option<VecDeque<usize>> {
        let mut jobs = self.jobs.lock().expect("steal queue poisoned");
        let len = jobs.len();
        if len == 0 {
            return None;
        }
        let take = len.div_ceil(2);
        Some(jobs.split_off(len - take))
    }

    /// Owner-side deposit of stolen work.
    fn deposit(&self, batch: VecDeque<usize>) {
        self.jobs
            .lock()
            .expect("steal queue poisoned")
            .extend(batch);
    }
}

/// Runs `f(0) .. f(n-1)` across [`num_threads`] scoped workers and
/// returns the results **in index order**.
///
/// Adaptive: fan-outs smaller than [`par_threshold`] run sequentially —
/// paper-sized apps never pay thread-spawn overhead, while stress-sized
/// corpora split across the full pool. Results are identical either way.
///
/// Panics in a task propagate to the caller once all workers have
/// stopped pulling new indices.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n < par_threshold() {
        return (0..n).map(f).collect();
    }
    run_indexed_with(n, num_threads(), f)
}

/// [`run_indexed`] with a per-task cost estimate: `cost[i]` is any
/// monotone proxy for how long `f(i)` will take (statement counts,
/// lattice depths, prior-run phase timings — units are irrelevant, only
/// the ordering matters). Tasks are dealt to the worker deques in
/// descending-cost round-robin so the heavy hitters start first on
/// distinct workers; stealing corrects whatever the estimate gets wrong.
/// Results still come back in index order, byte-identical to the
/// sequential loop.
///
/// `cost` shorter than `n` treats missing entries as zero cost.
pub fn run_indexed_weighted<T, F>(n: usize, cost: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n < par_threshold() {
        return (0..n).map(f).collect();
    }
    run_indexed_weighted_with(n, num_threads(), cost, f)
}

/// [`run_indexed_weighted`] with an explicit worker count (tests and
/// benchmarks; `threads ≤ 1` is the sequential path).
pub fn run_indexed_weighted_with<T, F>(n: usize, threads: usize, cost: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 || !cfg!(feature = "parallel") {
        return (0..n).map(f).collect();
    }
    // Longest-processing-time-first deal order: sort indices by
    // descending estimated cost (index-tiebreak keeps the order total
    // and deterministic), then hand them out round-robin below.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cost.get(i).copied().unwrap_or(0)), i));
    run_scheduled(n, threads, &order, f)
}

/// [`run_indexed`] with an explicit worker count (used by tests and
/// benchmarks; `threads ≤ 1` is the sequential path).
pub fn run_indexed_with<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 || !cfg!(feature = "parallel") {
        return (0..n).map(f).collect();
    }
    let order: Vec<usize> = (0..n).collect();
    run_scheduled(n, threads, &order, f)
}

/// The work-stealing core: deals `order` round-robin across per-worker
/// deques, runs the pool, and merges results back into index order.
///
/// Tasks never spawn tasks, so a worker that finds every deque empty can
/// exit: any task it cannot see is either finished or in the hands of a
/// worker that will finish it. (A thief's loot is briefly invisible
/// between the steal and the deposit — that can cost a beat of
/// parallelism in a photo-finish, never a lost task.)
fn run_scheduled<T, F>(n: usize, threads: usize, order: &[usize], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    let queues: Vec<StealQueue> = (0..workers)
        .map(|w| {
            // Worker w gets every workers-th element of the deal order.
            let mut q = VecDeque::with_capacity(n / workers + 1);
            q.extend(order.iter().copied().skip(w).step_by(workers));
            StealQueue::new(q)
        })
        .collect();
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for me in 0..workers {
            let queues = &queues;
            let done = &done;
            let f = &f;
            s.spawn(move || {
                // Each worker stages results locally and merges once, so
                // the result mutex is taken `workers` times, not `n`.
                let mut local: Vec<(usize, T)> = Vec::new();
                'work: loop {
                    if let Some(i) = queues[me].pop() {
                        local.push((i, f(i)));
                        continue;
                    }
                    // Own deque dry: sweep the victims for half a deque.
                    for off in 1..workers {
                        let victim = (me + off) % workers;
                        if let Some(mut loot) = queues[victim].steal_half() {
                            let first = loot.pop_front();
                            if !loot.is_empty() {
                                queues[me].deposit(loot);
                            }
                            if let Some(i) = first {
                                local.push((i, f(i)));
                            }
                            continue 'work;
                        }
                    }
                    break;
                }
                done.lock()
                    .expect("worker panicked holding lock")
                    .extend(local);
            });
        }
    });
    let mut pairs = done.into_inner().expect("worker panicked holding lock");
    assert_eq!(pairs.len(), n, "every index must produce a result");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Cache-aware fan-out: runs `f` over a **sparse** set of indices (the
/// dirty cone of an incremental re-check) and returns `(index, result)`
/// pairs sorted by index. The caller typically interleaves these with
/// cached results for the untouched indices, preserving the same merge
/// order as a full [`run_indexed`] pass.
pub fn run_sparse<T, F>(indices: &[usize], f: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results = run_indexed(indices.len(), |slot| f(indices[slot]));
    let mut pairs: Vec<(usize, T)> = indices.iter().copied().zip(results).collect();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs
}

/// [`run_sparse`] with a per-index cost estimate: `cost[j]` estimates how
/// long `f(indices[j])` will take (slot-aligned with `indices`, not with
/// the index values). Heavy tasks are dealt first via the same LPT order
/// as [`run_indexed_weighted`]; the returned pairs are still sorted by
/// index, so merges stay byte-identical to the sequential loop.
pub fn run_sparse_weighted<T, F>(indices: &[usize], cost: &[u64], f: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results = run_indexed_weighted(indices.len(), cost, |slot| f(indices[slot]));
    let mut pairs: Vec<(usize, T)> = indices.iter().copied().zip(results).collect();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs
}

/// Partitions `0..n` into contiguous chunks, one per worker, and runs
/// `f(chunk_range)` on each; chunk results are concatenated in order.
/// Useful when per-index closures are too fine-grained to amortize.
pub fn run_chunked<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= 1 {
        return f(0..n);
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..workers)
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let per_chunk = run_indexed_with(ranges.len(), workers, |i| f(ranges[i].clone()));
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed_with(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed_with(1000, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run_indexed_with(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_with(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn sparse_returns_sorted_pairs() {
        let indices = [9usize, 2, 5, 0];
        let out = run_sparse(&indices, |i| i * 10);
        assert_eq!(out, vec![(0, 0), (2, 20), (5, 50), (9, 90)]);
        assert_eq!(run_sparse(&[], |i: usize| i), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn sparse_weighted_matches_sparse() {
        let indices: Vec<usize> = (0..200).map(|i| i * 3 + 1).rev().collect();
        let cost: Vec<u64> = (0..200).map(|i| ((i * 13) % 29) as u64).collect();
        let plain = run_sparse(&indices, |i| i * 2);
        let weighted = run_sparse_weighted(&indices, &cost, |i| i * 2);
        assert_eq!(plain, weighted);
        // Cost vectors shorter than the index list must not drop tasks.
        let short = run_sparse_weighted(&indices, &cost[..5], |i| i + 1);
        assert_eq!(short.len(), indices.len());
        assert_eq!(
            run_sparse_weighted(&[], &[], |i: usize| i),
            Vec::<(usize, usize)>::new()
        );
    }

    #[test]
    fn chunked_concatenates_in_order() {
        let out = run_chunked(37, |r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn adaptive_threshold_is_env_tunable() {
        // No other test in this crate reads THRESHOLD_ENV, so mutating it
        // here cannot race.
        assert_eq!(par_threshold(), 24);
        std::env::set_var(THRESHOLD_ENV, "3");
        assert_eq!(par_threshold(), 3);
        std::env::set_var(THRESHOLD_ENV, "garbage");
        assert_eq!(par_threshold(), 24);
        std::env::remove_var(THRESHOLD_ENV);
        // Below and above the threshold produce identical results.
        assert_eq!(run_indexed(5, |i| i * 3), vec![0, 3, 6, 9, 12]);
        let big = run_indexed(100, |i| i * 3);
        assert_eq!(big, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn env_parse_fallbacks_are_explicit() {
        // The pure parser behind both env reads: valid decimals parse,
        // padding is trimmed, anything else is rejected (not silently
        // zeroed) so the callers can warn and fall back.
        assert_eq!(parse_env_usize("8"), Some(8));
        assert_eq!(parse_env_usize("  8  "), Some(8));
        assert_eq!(parse_env_usize("0"), Some(0));
        assert_eq!(parse_env_usize(""), None);
        assert_eq!(parse_env_usize("abc"), None);
        assert_eq!(parse_env_usize("-2"), None);
        assert_eq!(parse_env_usize("4.0"), None);
        assert_eq!(parse_env_usize("4 workers"), None);
        // env_usize: malformed values fall back to None exactly once per
        // latch; the latch only suppresses the *warning*, not the
        // fallback itself.
        let latch = AtomicBool::new(false);
        std::env::set_var("SJAVA_PAR_TEST_ENV", "bogus");
        assert_eq!(env_usize("SJAVA_PAR_TEST_ENV", &latch), None);
        assert!(latch.load(Ordering::Relaxed), "first malformed read warns");
        assert_eq!(env_usize("SJAVA_PAR_TEST_ENV", &latch), None);
        std::env::set_var("SJAVA_PAR_TEST_ENV", "6");
        assert_eq!(env_usize("SJAVA_PAR_TEST_ENV", &latch), Some(6));
        std::env::remove_var("SJAVA_PAR_TEST_ENV");
        assert_eq!(env_usize("SJAVA_PAR_TEST_ENV", &latch), None);
    }

    #[test]
    fn batched_pulling_covers_every_index_once() {
        // n chosen so the round-robin deal is ragged (n not divisible by
        // the worker count).
        let calls = AtomicUsize::new(0);
        let out = run_indexed_with(1003, 3, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1003);
        assert_eq!(out, (0..1003).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_with_side_work() {
        // Unequal task costs exercise the work-stealing deques.
        let work = |i: usize| -> u64 {
            let mut acc = i as u64;
            for _ in 0..(i % 17) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let seq = run_indexed_with(200, 1, work);
        let par = run_indexed_with(200, 7, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn weighted_matches_unweighted_at_any_width() {
        let cost: Vec<u64> = (0..300).map(|i| ((i * 37) % 101) as u64).collect();
        let seq = run_indexed_weighted_with(300, 1, &cost, |i| i * 7);
        for threads in [2, 4, 8] {
            let par = run_indexed_weighted_with(300, threads, &cost, |i| i * 7);
            assert_eq!(seq, par, "threads={threads}");
        }
        // A short (or empty) cost vector must not drop tasks.
        let short = run_indexed_weighted_with(300, 4, &cost[..10], |i| i + 1);
        assert_eq!(short, (0..300).map(|i| i + 1).collect::<Vec<_>>());
        let none = run_indexed_weighted_with(50, 4, &[], |i| i);
        assert_eq!(none, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_runs_every_task_exactly_once_under_skew() {
        // Pathological skew: one task is ~1000x the others. Steal-half
        // must keep the remaining workers busy and still run each index
        // exactly once.
        let calls = AtomicUsize::new(0);
        let cost: Vec<u64> = (0..500)
            .map(|i| if i == 250 { 1_000_000 } else { 1 })
            .collect();
        let out = run_indexed_weighted_with(500, 8, &cost, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 250 {
                let mut acc = 1u64;
                for _ in 0..100_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
            }
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }
}
