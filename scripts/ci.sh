#!/usr/bin/env bash
# Tier-1 gate for the workspace. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Steps:
#   1. rustfmt check over the whole workspace
#   2. release build of every crate
#   3. the full test suite (includes the 1-vs-N worker determinism
#      regression in crates/bench/tests/determinism.rs)
#   4. clippy with warnings denied
#   5. an explicit release-mode run of the determinism regression, so
#      the parallel pipeline is exercised with optimizations on
#   6. the golden-diagnostic snapshot suite (regenerate fixtures with
#      SJAVA_REGEN_GOLDEN=1 after an intentional diagnostic change),
#      followed by a freshness gate: the fixtures are regenerated into
#      place and any drift from the checked-in bytes fails the build
#   7. the incremental-cache correctness suite, with the worker pool
#      pinned to 1 and then 4 threads so cached replay is proven
#      deterministic across fan-out widths
#   8. the benchmark harness in gate mode on the small stress preset,
#      enforcing the parallel-speedup and small-app-tax floors. With the
#      work-stealing scheduler and parallel front-end the stress floor
#      is raised to 2.5x at 4 workers (skipped on machines with <4
#      cores, where the measurement is meaningless)
#   9. the inference benchmark in gate mode on the small stress preset,
#      enforcing the dense-vs-legacy speedup floor (≥1.5x at 1 worker)
#      and, on machines with ≥4 cores, the parallel-scaling floor
#      (dense at max workers must not lose to dense at 1, ≥1.0x); the
#      byte-identity oracle check (dense == legacy annotations at every
#      width) runs first inside the binary
#  10. the incremental benchmark in gate mode with an on-disk cache
#      directory: a warm re-check must never be slower than a cold
#      check on any benchmark (min-of-reps), which pins the fix for
#      the small-app persistence regression
#  11. a fixed-seed differential fuzz smoke: 500 generated cases
#      (adversarial stress shapes + mutations) through all five
#      engine-pair oracles; any mismatch fails the build
#  12. the shard-equivalence gate: the process-level byte-identity
#      sweep (every format × shard count × pool width must match the
#      unsharded run exactly, plus cross-process store sharing), then
#      bench_shard in gate mode enforcing the ≥0.95 cross-session
#      warm-hit-rate floor; the multi-process speedup floor only
#      applies on machines with ≥4 cores
#  13. the edit-storm gate (bench_edit): red-green revalidation must
#      re-check ≤ 25% of methods after a single-method interface edit
#      on the large stress corpus (at 1 and 4 worker threads and 1 and
#      4 shards), an unused-field edit must re-check zero, and every
#      incremental output must be byte-identical to a fresh full check
#      of the same mutated AST; the ratio floor auto-skips only when
#      the corpus has < 50 methods
#  14. the VM gate (bench_vm): the register-bytecode VM must produce
#      byte-identical traces to the tree-walking interpreter on the
#      four paper apps + mp3dec and across the stress corpus (plain
#      and fault-injected, both kinds), and beat it by ≥5x on mp3dec
#      (the throughput floor auto-skips on machines with <4 cores,
#      where the measurement is too noisy; identity always gates)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism: identical diagnostics at 1..8 worker threads =="
cargo test --release -q -p sjava-bench --test determinism

echo "== golden diagnostics (apps + violation probes, cold and cached) =="
cargo test --release -q -p sjava-bench --test golden

echo "== golden fixtures are fresh (regenerate + diff, incl. fuzz near-miss corpus) =="
golden_dir=crates/bench/tests/golden
backup_dir=$(mktemp -d)
cp -r "$golden_dir"/. "$backup_dir"/
SJAVA_REGEN_GOLDEN=1 cargo test --release -q -p sjava-bench --test golden
SJAVA_REGEN_GOLDEN=1 cargo test --release -q -p sjava-bench --test fuzz_fixtures
if ! diff -ru "$backup_dir" "$golden_dir" >/dev/null; then
    diff -ru "$backup_dir" "$golden_dir" || true
    cp -r "$backup_dir"/. "$golden_dir"/
    rm -rf "$backup_dir"
    echo "golden fixtures are stale: regenerating them produced different bytes." >&2
    echo "Run SJAVA_REGEN_GOLDEN=1 cargo test -p sjava-bench --test golden --test fuzz_fixtures and commit the diff." >&2
    exit 1
fi
rm -rf "$backup_dir"

echo "== incremental cache correctness at 1 and 4 worker threads =="
SJAVA_THREADS=1 cargo test --release -q -p sjava-cache --test correctness
SJAVA_THREADS=4 cargo test --release -q -p sjava-cache --test correctness

echo "== bench smoke gate (small stress preset, 3 reps) =="
# Exercises the full harness end to end and enforces the perf floors:
# stress speedup ≥ SJAVA_GATE_STRESS at ≥4 workers and small-app
# parallel tax ≥ SJAVA_GATE_SMALL (each skipped on machines too narrow
# to measure it). The small preset keeps this a smoke test, not a
# benchmark run; it runs from a scratch directory so the smoke JSON
# does not overwrite the committed results/BENCH_checker.json.
gate_bin=$PWD/target/release/bench_checker
gate_dir=$(mktemp -d)
(cd "$gate_dir" && SJAVA_STRESS_PRESET=small SJAVA_REPS=3 SJAVA_GATE_STRESS=2.5 "$gate_bin" --gate)
rm -rf "$gate_dir"

echo "== inference bench gate (small stress preset, 5 reps) =="
# Same pattern for the inference engine: dense must beat legacy by
# ≥ SJAVA_GATE_INFER (default 1.5x) at 1 worker even on the small
# preset, and annotations must be byte-identical across engines and
# worker counts. bench_infer clamps reps to ≥5 for stable minima.
infer_bin=$PWD/target/release/bench_infer
infer_dir=$(mktemp -d)
(cd "$infer_dir" && SJAVA_STRESS_PRESET=small SJAVA_REPS=5 "$infer_bin" --gate)
rm -rf "$infer_dir"

echo "== incremental warm-cache gate (on-disk cache, 10 reps) =="
# A directory-backed warm re-check must never be slower than a cold
# check — the disk round-trip is skipped for programs too small to
# amortize it, and this gate is what keeps that true.
inc_bin=$PWD/target/release/bench_incremental
inc_dir=$(mktemp -d)
(cd "$inc_dir" && SJAVA_CACHE_DIR="$inc_dir/cache" SJAVA_REPS=10 "$inc_bin" --gate)
rm -rf "$inc_dir"

echo "== differential fuzz smoke (seed 1, 500 cases, all oracles) =="
# Byte-reproducible: the same seed and case count generate the same
# stream on every machine, so a failure here is a real engine-pair
# disagreement, not flakiness. Re-run a failing case interactively with
#   target/release/sjava fuzz --seed=1 --cases=500 --minimize --fixtures-dir=findings/
target/release/sjava fuzz --seed=1 --cases=500

echo "== shard equivalence (byte-identity sweep + store gate) =="
# The sweep drives the real `sjava check --shards=N` CLI: worker
# processes, outcome files, merged diagnostics — all three formats must
# be byte-identical to the unsharded run at every shard count and pool
# width. bench_shard then re-proves equivalence in-process and enforces
# the cross-session warm-hit-rate floor on the artifact store.
cargo test --release -q --test shard
shard_bin=$PWD/target/release/bench_shard
shard_dir=$(mktemp -d)
(cd "$shard_dir" && SJAVA_STRESS_PRESET=small SJAVA_REPS=3 "$shard_bin" --gate)
rm -rf "$shard_dir"

echo "== edit-storm gate (dependency-tracked invalidation) =="
# Every storm step asserts byte-identity against a fresh full check of
# the same mutated AST before any ratio counts. The interface-edit leg
# runs on the 201-method large stress corpus, so the < 50-method
# ratio-skip never triggers here. Runs from the repo root: the
# re-checked/green/red counters in results/BENCH_edit.json are
# deterministic, so refreshing the committed file is intentional (only
# the warm-time fields vary by machine).
target/release/bench_edit --gate

echo "== VM gate (trace identity + mp3dec speedup floor) =="
# Trace identity between the register-bytecode VM and the tree-walking
# interpreter is the precondition for every campaign number; the ≥5x
# mp3dec floor is what justifies the 100k-trial fig 6.1 default. Runs
# from a scratch directory so the smoke JSON does not overwrite the
# committed results/BENCH_vm.json.
vm_bin=$PWD/target/release/bench_vm
vm_dir=$(mktemp -d)
(cd "$vm_dir" && "$vm_bin" --gate)
rm -rf "$vm_dir"

echo "CI green"
