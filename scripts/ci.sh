#!/usr/bin/env bash
# Tier-1 gate for the workspace. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Steps:
#   1. release build of every crate
#   2. the full test suite (includes the 1-vs-N worker determinism
#      regression in crates/bench/tests/determinism.rs)
#   3. clippy with warnings denied
#   4. an explicit release-mode run of the determinism regression, so
#      the parallel pipeline is exercised with optimizations on
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism: identical diagnostics at 1..8 worker threads =="
cargo test --release -q -p sjava-bench --test determinism

echo "CI green"
