#!/usr/bin/env bash
# Tier-1 gate for the workspace. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Steps:
#   1. release build of every crate
#   2. the full test suite (includes the 1-vs-N worker determinism
#      regression in crates/bench/tests/determinism.rs)
#   3. clippy with warnings denied
#   4. an explicit release-mode run of the determinism regression, so
#      the parallel pipeline is exercised with optimizations on
#   5. the golden-diagnostic snapshot suite (regenerate fixtures with
#      SJAVA_REGEN_GOLDEN=1 after an intentional diagnostic change)
#   6. the incremental-cache correctness suite, with the worker pool
#      pinned to 1 and then 4 threads so cached replay is proven
#      deterministic across fan-out widths
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism: identical diagnostics at 1..8 worker threads =="
cargo test --release -q -p sjava-bench --test determinism

echo "== golden diagnostics (apps + violation probes, cold and cached) =="
cargo test --release -q -p sjava-bench --test golden

echo "== incremental cache correctness at 1 and 4 worker threads =="
SJAVA_THREADS=1 cargo test --release -q -p sjava-cache --test correctness
SJAVA_THREADS=4 cargo test --release -q -p sjava-cache --test correctness

echo "CI green"
